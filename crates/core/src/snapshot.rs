//! Durable tower checkpoints.
//!
//! Long round-elimination runs are the workloads that most need to be
//! restartable (cf. the hours-long round-eliminator computations behind
//! the regular-tree classifications, arXiv:2202.08544): a
//! [`TowerSnapshot`] captures everything a [`ReTower`](crate::ReTower)
//! has computed — the base problem, every derived level's interned
//! label universe and configuration bitsets, the extensional tables
//! used for fixpoint detection, and the per-level spans — in the same
//! hand-rolled JSON conventions the `lcl_obs` exporters use, so a
//! budget breach or panic mid-tower can resume bit-identically via
//! `ReTower::resume_from`.
//!
//! The snapshot deliberately excludes the node-constraint memo cache:
//! it is a pure performance artifact, rebuilt on demand, and the only
//! observable difference after a resume is future memo hit/miss
//! counters — never a structural result. [`TowerSnapshot::fingerprint`]
//! therefore hashes only the structural fields, which is the identity
//! the interrupt-resume determinism tests assert on.

use std::fmt;

use lcl::ParseError;

use crate::tower::LayerKind;

/// A serializable checkpoint of a tower's derived state.
///
/// Produced by `ReTower::snapshot`, consumed by `ReTower::resume_from`.
/// All fields are plain data so a snapshot can cross a panic boundary,
/// a process restart, or a file on disk.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TowerSnapshot {
    /// The base problem in its canonical text form
    /// (`LclProblem::to_text`).
    pub problem: String,
    /// One entry per derived level, in push order.
    pub layers: Vec<LayerSnapshot>,
    /// Extensional tables per level *including the base* (index 0), so
    /// `tables.len() == layers.len() + 1`. `None` slots are levels whose
    /// table was never computed (too large, or the lazily-computed base
    /// slot before any fixpoint check ran) and stay `None` on resume.
    pub tables: Vec<Option<TableSnapshot>>,
    /// The per-level engine spans (`spans.len() == layers.len()`),
    /// preserved so stats and traces survive a resume.
    pub spans: Vec<SpanSnapshot>,
}

/// One derived level: its operator, interned label universe, and
/// constraint bitsets (serialized as sorted member-index lists).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LayerSnapshot {
    /// Which operator produced the level.
    pub kind: LayerKind,
    /// Label `i`'s sorted parent-label member set; the position in this
    /// vector *is* the interner id, which is what makes resume
    /// bit-identical.
    pub members: Vec<Vec<u32>>,
    /// Edge compatibility row per label, as sorted label-index lists.
    pub edge_rows: Vec<Vec<usize>>,
    /// Allowed labels per input label, as sorted label-index lists.
    pub g_rows: Vec<Vec<usize>>,
}

/// A level's extensional table (the fixpoint-detection witness).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TableSnapshot {
    /// Universe size the table was computed over.
    pub labels: usize,
    /// Edge compatibility rows as sorted label-index lists.
    pub edge_rows: Vec<Vec<usize>>,
    /// `g` rows as sorted label-index lists.
    pub g_rows: Vec<Vec<usize>>,
    /// Node relation over all multisets of sizes `1..=Δ` in canonical
    /// enumeration order.
    pub node_relation: Vec<bool>,
}

/// One per-level span: name, wall clock, and named counters.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpanSnapshot {
    /// Span name (`level-{k}/{r|rbar}`).
    pub name: String,
    /// Wall-clock microseconds of the recorded step.
    pub wall_us: u64,
    /// Counter values keyed by their stable kebab-case names.
    pub counters: Vec<(String, u64)>,
}

/// The snapshot format version this build writes and accepts. Bump it
/// whenever [`TowerSnapshot::to_json`] changes shape; readers reject
/// every other version with [`SnapshotError::Version`] instead of
/// misinterpreting the document.
pub const SNAPSHOT_VERSION: u64 = 1;

/// Why a snapshot could not be decoded or resumed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SnapshotError {
    /// The JSON text itself was malformed.
    Json {
        /// Byte offset the parser stopped at.
        pos: usize,
        /// What it expected there.
        what: &'static str,
    },
    /// The embedded problem text failed to parse.
    Problem(ParseError),
    /// The JSON was well-formed but structurally inconsistent (bad
    /// lengths, out-of-range indices, duplicate label sets, ...).
    Invalid(&'static str),
    /// A span counter name no current [`lcl_obs::Counter`] matches.
    UnknownCounter(String),
    /// The document declares a format version this build does not
    /// understand (or omits the version field entirely, reported as
    /// `found: 0`).
    Version {
        /// The version the document declared (0 when absent).
        found: u64,
        /// The only version this build reads ([`SNAPSHOT_VERSION`]).
        supported: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Json { pos, what } => {
                write!(f, "snapshot JSON at byte {pos}: expected {what}")
            }
            SnapshotError::Problem(e) => write!(f, "snapshot problem text: {e}"),
            SnapshotError::Invalid(what) => write!(f, "inconsistent snapshot: {what}"),
            SnapshotError::UnknownCounter(name) => {
                write!(f, "snapshot names unknown counter `{name}`")
            }
            SnapshotError::Version { found, supported } => {
                write!(
                    f,
                    "snapshot format version {found} (this build reads only {supported})"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Problem(e) => Some(e),
            _ => None,
        }
    }
}

impl TowerSnapshot {
    /// Serializes the snapshot as a single JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"version\":1,\"problem\":");
        push_json_string(&mut out, &self.problem);
        out.push_str(",\"layers\":[");
        for (i, layer) in self.layers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"kind\":");
            out.push_str(match layer.kind {
                LayerKind::R => "\"r\"",
                LayerKind::RBar => "\"rbar\"",
            });
            out.push_str(",\"members\":");
            push_nested_u32(&mut out, &layer.members);
            out.push_str(",\"edge_rows\":");
            push_nested_usize(&mut out, &layer.edge_rows);
            out.push_str(",\"g_rows\":");
            push_nested_usize(&mut out, &layer.g_rows);
            out.push('}');
        }
        out.push_str("],\"tables\":[");
        for (i, table) in self.tables.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match table {
                None => out.push_str("null"),
                Some(t) => {
                    out.push_str("{\"labels\":");
                    out.push_str(&t.labels.to_string());
                    out.push_str(",\"edge_rows\":");
                    push_nested_usize(&mut out, &t.edge_rows);
                    out.push_str(",\"g_rows\":");
                    push_nested_usize(&mut out, &t.g_rows);
                    out.push_str(",\"node_relation\":[");
                    for (j, &b) in t.node_relation.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(if b { "true" } else { "false" });
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("],\"spans\":[");
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_json_string(&mut out, &span.name);
            out.push_str(",\"wall_us\":");
            out.push_str(&span.wall_us.to_string());
            out.push_str(",\"counters\":{");
            for (j, (name, value)) in span.counters.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_json_string(&mut out, name);
                out.push(':');
                out.push_str(&value.to_string());
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Parses a document produced by [`TowerSnapshot::to_json`].
    pub fn parse(text: &str) -> Result<Self, SnapshotError> {
        let value = JsonParser::parse_document(text)?;
        let root = value.as_obj("snapshot object")?;
        let version = match root.field("version") {
            Ok(v) => v.as_u64("format version")?,
            Err(_) => 0,
        };
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::Version {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let problem = root.field("problem")?.as_str("problem string")?.to_string();
        let mut layers = Vec::new();
        for layer in root.field("layers")?.as_arr("layers array")? {
            let layer = layer.as_obj("layer object")?;
            let kind = match layer.field("kind")?.as_str("layer kind")? {
                "r" => LayerKind::R,
                "rbar" => LayerKind::RBar,
                _ => return Err(SnapshotError::Invalid("unknown layer kind")),
            };
            layers.push(LayerSnapshot {
                kind,
                members: nested_u32(layer.field("members")?)?,
                edge_rows: nested_usize(layer.field("edge_rows")?)?,
                g_rows: nested_usize(layer.field("g_rows")?)?,
            });
        }
        let mut tables = Vec::new();
        for table in root.field("tables")?.as_arr("tables array")? {
            if matches!(table, Json::Null) {
                tables.push(None);
                continue;
            }
            let table = table.as_obj("table object")?;
            let mut node_relation = Vec::new();
            for b in table.field("node_relation")?.as_arr("node relation")? {
                node_relation.push(b.as_bool("node relation entry")?);
            }
            tables.push(Some(TableSnapshot {
                labels: usize_from(table.field("labels")?.as_u64("label count")?)?,
                edge_rows: nested_usize(table.field("edge_rows")?)?,
                g_rows: nested_usize(table.field("g_rows")?)?,
                node_relation,
            }));
        }
        let mut spans = Vec::new();
        for span in root.field("spans")?.as_arr("spans array")? {
            let span = span.as_obj("span object")?;
            let mut counters = Vec::new();
            for (name, value) in span.field("counters")?.as_obj("counter map")?.fields() {
                counters.push((name.to_string(), value.as_u64("counter value")?));
            }
            spans.push(SpanSnapshot {
                name: span.field("name")?.as_str("span name")?.to_string(),
                wall_us: span.field("wall_us")?.as_u64("span wall")?,
                counters,
            });
        }
        Ok(Self {
            problem,
            layers,
            tables,
            spans,
        })
    }

    /// An FNV-1a hash of the snapshot's *structural* content: the
    /// problem text, every layer's kind/universe/bitsets, and the
    /// extensional tables. Spans are excluded on purpose — resuming
    /// clears the memo cache, which changes future hit/miss counters
    /// but never the derived problems — so an interrupted-and-resumed
    /// tower fingerprints identically to an uninterrupted one.
    pub fn fingerprint(&self) -> String {
        let mut structural = self.clone();
        structural.spans.clear();
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in structural.to_json().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{hash:016x}")
    }
}

fn usize_from(wide: u64) -> Result<usize, SnapshotError> {
    usize::try_from(wide).map_err(|_| SnapshotError::Invalid("count exceeds usize"))
}

fn push_nested_u32(out: &mut String, rows: &[Vec<u32>]) {
    out.push('[');
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, v) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&v.to_string());
        }
        out.push(']');
    }
    out.push(']');
}

fn push_nested_usize(out: &mut String, rows: &[Vec<usize>]) {
    out.push('[');
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, v) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&v.to_string());
        }
        out.push(']');
    }
    out.push(']');
}

fn nested_u32(value: &Json) -> Result<Vec<Vec<u32>>, SnapshotError> {
    let mut rows = Vec::new();
    for row in value.as_arr("nested array")? {
        let mut out = Vec::new();
        for v in row.as_arr("inner array")? {
            let wide = v.as_u64("array number")?;
            out.push(
                u32::try_from(wide).map_err(|_| SnapshotError::Invalid("member exceeds u32"))?,
            );
        }
        rows.push(out);
    }
    Ok(rows)
}

fn nested_usize(value: &Json) -> Result<Vec<Vec<usize>>, SnapshotError> {
    let mut rows = Vec::new();
    for row in value.as_arr("nested array")? {
        let mut out = Vec::new();
        for v in row.as_arr("inner array")? {
            out.push(usize_from(v.as_u64("array number")?)?);
        }
        rows.push(out);
    }
    Ok(rows)
}

/// Writes `s` as a JSON string literal with full escaping (the same
/// conventions as the `lcl_obs` exporters).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The minimal JSON value model the snapshot format needs: objects,
/// arrays, strings, non-negative integers, booleans, and `null`.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Json {
    Null,
    Bool(bool),
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(JsonObj),
}

#[derive(Clone, PartialEq, Eq, Debug)]
struct JsonObj {
    fields: Vec<(String, Json)>,
}

impl JsonObj {
    fn field(&self, name: &'static str) -> Result<&Json, SnapshotError> {
        self.fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or(SnapshotError::Json { pos: 0, what: name })
    }

    fn fields(&self) -> impl Iterator<Item = (&str, &Json)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl Json {
    fn as_obj(&self, what: &'static str) -> Result<&JsonObj, SnapshotError> {
        match self {
            Json::Obj(o) => Ok(o),
            _ => Err(SnapshotError::Json { pos: 0, what }),
        }
    }

    fn as_arr(&self, what: &'static str) -> Result<&[Json], SnapshotError> {
        match self {
            Json::Arr(a) => Ok(a),
            _ => Err(SnapshotError::Json { pos: 0, what }),
        }
    }

    fn as_str(&self, what: &'static str) -> Result<&str, SnapshotError> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(SnapshotError::Json { pos: 0, what }),
        }
    }

    fn as_u64(&self, what: &'static str) -> Result<u64, SnapshotError> {
        match self {
            Json::Num(n) => Ok(*n),
            _ => Err(SnapshotError::Json { pos: 0, what }),
        }
    }

    fn as_bool(&self, what: &'static str) -> Result<bool, SnapshotError> {
        match self {
            Json::Bool(b) => Ok(*b),
            _ => Err(SnapshotError::Json { pos: 0, what }),
        }
    }
}

/// A recursive-descent parser for the subset of JSON the snapshot
/// writer emits. Zero-dependency by design — the workspace has no serde
/// and the format is fully under our control.
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn parse_document(text: &'a str) -> Result<Json, SnapshotError> {
        let mut p = Self {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("end of document"));
        }
        Ok(value)
    }

    fn err(&self, what: &'static str) -> SnapshotError {
        SnapshotError::Json {
            pos: self.pos,
            what,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, byte: u8, what: &'static str) -> Result<(), SnapshotError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn value(&mut self) -> Result<Json, SnapshotError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'0'..=b'9') => self.number(),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            _ => Err(self.err("a JSON value")),
        }
    }

    fn literal(&mut self, text: &'static str, value: Json) -> Result<Json, SnapshotError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("a JSON literal"))
        }
    }

    fn number(&mut self) -> Result<Json, SnapshotError> {
        let mut n: u64 = 0;
        let start = self.pos;
        while let Some(d) = self
            .bytes
            .get(self.pos)
            .and_then(|b| (*b as char).to_digit(10))
        {
            n = n
                .checked_mul(10)
                .and_then(|n| n.checked_add(u64::from(d)))
                .ok_or(SnapshotError::Json {
                    pos: start,
                    what: "a number within u64",
                })?;
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("a digit"));
        }
        if matches!(self.bytes.get(self.pos), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("an integer (no fractions)"));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, SnapshotError> {
        self.eat(b'"', "opening quote")?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("closing quote"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("escape character"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            let c = char::from_u32(code)
                                .ok_or(self.err("a non-surrogate \\u escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("a valid escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let width = utf8_width(b).ok_or(self.err("valid UTF-8"))?;
                    let end = start + width;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or(self.err("a complete UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice).map_err(|_| self.err("valid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, SnapshotError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(d) = self
                .bytes
                .get(self.pos)
                .and_then(|b| (*b as char).to_digit(16))
            else {
                return Err(self.err("four hex digits"));
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn array(&mut self) -> Result<Json, SnapshotError> {
        self.eat(b'[', "[")?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err(", or ]")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, SnapshotError> {
        self.eat(b'{', "{")?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(JsonObj { fields }));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':', ":")?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(JsonObj { fields }));
                }
                _ => return Err(self.err(", or }")),
            }
        }
    }
}

fn utf8_width(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TowerSnapshot {
        TowerSnapshot {
            problem: "max-degree: 3\nnodes:\nA*\nedges:\nA A\n".to_string(),
            layers: vec![LayerSnapshot {
                kind: LayerKind::R,
                members: vec![vec![0], vec![0, 1]],
                edge_rows: vec![vec![0, 1], vec![0]],
                g_rows: vec![vec![0, 1]],
            }],
            tables: vec![
                None,
                Some(TableSnapshot {
                    labels: 2,
                    edge_rows: vec![vec![0, 1], vec![0]],
                    g_rows: vec![vec![0, 1]],
                    node_relation: vec![true, false, true],
                }),
            ],
            spans: vec![SpanSnapshot {
                name: "level-1/r".to_string(),
                wall_us: 1234,
                counters: vec![
                    ("labels-interned".to_string(), 2),
                    ("labels-alive".to_string(), 2),
                ],
            }],
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let snap = sample();
        let text = snap.to_json();
        let back = TowerSnapshot::parse(&text).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_json(), text, "serialization is canonical");
    }

    #[test]
    fn strings_with_escapes_round_trip() {
        let mut snap = sample();
        snap.problem = "tabs\tand\nnewlines \"quoted\" back\\slash \u{1} π".to_string();
        let back = TowerSnapshot::parse(&snap.to_json()).unwrap();
        assert_eq!(back.problem, snap.problem);
    }

    #[test]
    fn fingerprint_ignores_spans_but_not_structure() {
        let snap = sample();
        let mut respanned = snap.clone();
        respanned.spans[0].counters[0].1 = 999;
        respanned.spans[0].wall_us = 1;
        assert_eq!(snap.fingerprint(), respanned.fingerprint());
        let mut restructured = snap.clone();
        restructured.layers[0].members[1] = vec![1];
        assert_ne!(snap.fingerprint(), restructured.fingerprint());
    }

    #[test]
    fn malformed_documents_are_typed_errors() {
        assert!(matches!(
            TowerSnapshot::parse("not json"),
            Err(SnapshotError::Json { .. })
        ));
        assert!(matches!(
            TowerSnapshot::parse("{\"version\":1}"),
            Err(SnapshotError::Json { .. })
        ));
        let truncated = &sample().to_json()[..40];
        assert!(TowerSnapshot::parse(truncated).is_err());
        assert!(TowerSnapshot::parse(
            "{\"problem\":\"x\",\"layers\":[],\"tables\":[],\"spans\":[],\"extra\":1.5}"
        )
        .is_err());
    }

    #[test]
    fn unsupported_format_versions_are_rejected_with_a_typed_error() {
        let future = sample()
            .to_json()
            .replacen("\"version\":1", "\"version\":2", 1);
        assert_eq!(
            TowerSnapshot::parse(&future),
            Err(SnapshotError::Version {
                found: 2,
                supported: SNAPSHOT_VERSION,
            })
        );
        // A document with no version field at all predates the format and
        // is rejected the same way, reported as version 0.
        let unversioned = sample().to_json().replacen("\"version\":1,", "", 1);
        assert_eq!(
            TowerSnapshot::parse(&unversioned),
            Err(SnapshotError::Version {
                found: 0,
                supported: SNAPSHOT_VERSION,
            })
        );
    }

    #[test]
    fn numbers_overflowing_u64_are_rejected() {
        let doc = "{\"problem\":\"x\",\"layers\":[],\"tables\":[{\"labels\":99999999999999999999,\"edge_rows\":[],\"g_rows\":[],\"node_relation\":[]}],\"spans\":[]}";
        assert!(matches!(
            TowerSnapshot::parse(doc),
            Err(SnapshotError::Json { .. })
        ));
    }
}
