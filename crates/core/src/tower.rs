//! The round-elimination problem sequence `Π, R(Π), R̄(R(Π)), ...`
//! (Definitions 3.1 and 3.2 of the paper), for LCLs **with input labels on
//! irregular graphs** — the generality that is the paper's technical
//! contribution.
//!
//! # Representation
//!
//! The label universe of `R(Π)` is the powerset `2^{Σ_out^Π}`, and of
//! `R̄(R(Π))` the powerset of that — materializing constraints
//! extensionally is hopeless beyond toy alphabets. A [`ReTower`] therefore
//! stores, per derived level, only
//!
//! * the interned label table (a [`LabelInterner`]: each label is the
//!   sorted set of parent labels it denotes, addressed by a dense id, so
//!   "which label is this set?" is one hash lookup),
//! * the *edge* compatibility as bitset rows (quadratic in the universe,
//!   cheap via bit operations),
//! * the `g` map as bitset rows,
//!
//! and evaluates *node* constraints lazily by quantifier expansion: an
//! `R`-level node configuration holds iff **some** selection of parent
//! labels is a parent-level node configuration (Definition 3.1), an
//! `R̄`-level one iff **all** selections are (Definition 3.2). Node
//! queries are memoized in a shared cache; [`LevelStats`] reports the
//! hit/miss traffic, configurations tried, and wall time per level.
//!
//! # Universe restriction
//!
//! Only labels that can appear in *some* valid solution matter. A label is
//! kept only if it (a) lies in some `g` image, (b) has a compatible edge
//! partner among kept labels, and (c) admits a node-configuration
//! completion among kept labels; the three conditions are iterated to a
//! fixpoint. Removal is sound (such labels occur in no solution) and
//! completeness-preserving for the 0-round decision of
//! [`zero_round`](crate::zero_round). Work caps make every step refuse
//! gracefully ([`ReError`]) instead of exploding — the paper itself notes
//! the doubly-exponential label growth as the obstruction to pushing the
//! gap past `log* n`, and the caps are where this implementation meets the
//! same wall.
//!
//! # Parallelism and fixpoint detection
//!
//! With [`ReOptions::parallel`] (the default), member sets, edge rows,
//! `g` rows, and the per-label node-usefulness checks of each step fan out
//! over scoped threads ([`par`]); results are identical to the
//! sequential engine because work is sharded by index and reassembled in
//! order. After each step the engine computes an *extensional table* of
//! the new level (edge rows, `g` rows, and the node relation over all
//! multisets up to `Δ`) when the universe is small enough; equal tables at
//! two levels of equal parity mean the sequence has entered a cycle — the
//! round-elimination fixpoint that certifies `Ω(log n)` hardness (e.g.
//! sinkless orientation), surfaced as [`LevelStats::fixpoint_of`].

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use lcl::{InLabel, LclProblem, OutLabel, Problem};
use lcl_faults::{Budget, BudgetExceeded, CancelToken};
use lcl_obs::{Counter, Event, EventLog, Span, SpanRecord, Trace};

use crate::arena::{BitArena, BitRow};
use crate::bits::{for_each_multiset, kernels, BitSet, Ones};
use crate::interner::LabelInterner;
use crate::par;
use crate::snapshot::{LayerSnapshot, SnapshotError, SpanSnapshot, TableSnapshot, TowerSnapshot};

/// Which operator produced a derived level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LayerKind {
    /// `R(·)` — Definition 3.1: node `∃`, edge `∀`.
    R,
    /// `R̄(·)` — Definition 3.2: node `∀`, edge `∃`.
    RBar,
}

/// Error from a round-elimination step or a derived-algorithm run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReError {
    /// A `g` image at the parent level has more labels than
    /// [`ReOptions::max_parent_labels`], so the subset universe would
    /// overflow.
    UniverseTooLarge { parent_labels: usize, limit: usize },
    /// The interned universe exceeded [`ReOptions::max_labels`].
    TooManyLabels { labels: usize, limit: usize },
    /// Restriction removed every label: the derived problem (and hence the
    /// original) is unsolvable in the corresponding number of rounds on
    /// the considered graph class.
    EmptyUniverse,
    /// `R̄` can only be applied on top of an `R` level.
    RBarNeedsR,
    /// A derived algorithm produced a label set that is not in the
    /// universe of the given tower level (typically: the tower was built
    /// with `restrict: true`, which drops labels the sloppy Monte-Carlo
    /// estimates can still emit).
    LabelOutsideUniverse { level: usize, members: Vec<u32> },
    /// A budgeted push hit a resource cap or its cancel token tripped.
    /// Every level completed before the breach stays in the tower
    /// (`partial` counts them), so callers keep the partial result.
    Budget(BudgetExceeded),
}

impl fmt::Display for ReError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReError::UniverseTooLarge {
                parent_labels,
                limit,
            } => write!(
                f,
                "g image with {parent_labels} labels exceeds subset limit {limit}"
            ),
            ReError::TooManyLabels { labels, limit } => {
                write!(f, "universe of {labels} labels exceeds limit {limit}")
            }
            ReError::EmptyUniverse => write!(f, "restriction removed every label"),
            ReError::RBarNeedsR => write!(f, "R̄ must be applied to an R level"),
            ReError::LabelOutsideUniverse { level, members } => write!(
                f,
                "label set {members:?} is outside the level-{level} universe"
            ),
            ReError::Budget(b) => write!(f, "{b}"),
        }
    }
}

impl Error for ReError {}

impl From<BudgetExceeded> for ReError {
    fn from(b: BudgetExceeded) -> Self {
        ReError::Budget(b)
    }
}

/// Caps and engine knobs for a round-elimination step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReOptions {
    /// Maximum size of a parent `g` image (the subset universe is
    /// `2^this`).
    pub max_parent_labels: usize,
    /// Maximum number of interned labels per level.
    pub max_labels: usize,
    /// Work cap (candidate completions tried) for the node-usefulness
    /// check; exceeding it keeps the label (sound).
    pub node_work_cap: u64,
    /// Whether to run the usefulness restriction at all (`false` is the
    /// E10 ablation: full universes).
    pub restrict: bool,
    /// Whether to fan the step out over scoped threads. Results are
    /// identical either way; `false` forces the sequential reference
    /// engine.
    pub parallel: bool,
    /// Worker threads when `parallel` (`0` = all available cores).
    pub threads: usize,
    /// Extensional fixpoint detection runs only when the (restricted)
    /// universe has at most this many labels; `0` disables it.
    pub fixpoint_max_labels: usize,
}

impl Default for ReOptions {
    fn default() -> Self {
        Self {
            max_parent_labels: 14,
            max_labels: 4096,
            node_work_cap: 2_000_000,
            restrict: true,
            parallel: true,
            threads: 0,
            fixpoint_max_labels: 32,
        }
    }
}

/// Per-level engine counters, recorded by each `push_r`/`push_rbar`.
///
/// Since the observability rework the tower records each step as an
/// `lcl_obs` span; this struct is a *view*, derived from the span via
/// [`LevelStats::from_span`], kept for its named fields.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LevelStats {
    /// Universe size before restriction.
    pub labels_full: usize,
    /// Universe size after restriction (equal to `labels_full` when the
    /// step ran with `restrict: false`).
    pub labels: usize,
    /// Candidate node configurations enumerated by the usefulness
    /// restriction.
    pub configurations: u64,
    /// Node-query memo hits during this step.
    pub cache_hits: u64,
    /// Node-query memo misses during this step.
    pub cache_misses: u64,
    /// Earliest level whose extensional table equals this one, if the
    /// check ran and found a repeat — the round-elimination fixpoint
    /// certificate.
    pub fixpoint_of: Option<usize>,
    /// Wall-clock time of the step.
    pub wall: Duration,
}

impl LevelStats {
    /// Reads the named counters back out of a per-level span (the
    /// inverse of the recording in `push_layer`).
    pub fn from_span(span: &SpanRecord) -> Self {
        Self {
            labels_full: span.get(Counter::LabelsInterned).unwrap_or(0) as usize,
            labels: span.get(Counter::LabelsAlive).unwrap_or(0) as usize,
            configurations: span.get(Counter::Configurations).unwrap_or(0),
            cache_hits: span.get(Counter::MemoHits).unwrap_or(0),
            cache_misses: span.get(Counter::MemoMisses).unwrap_or(0),
            fixpoint_of: span.get(Counter::FixpointOf).map(|v| v as usize),
            wall: span.wall(),
        }
    }
}

/// One derived level of the tower.
#[derive(Clone, Debug)]
struct Layer {
    kind: LayerKind,
    /// Each label is the sorted set of parent-label ids it denotes,
    /// interned: the label id *is* the interner id.
    labels: LabelInterner,
    /// Member sets as arena rows over the parent universe.
    member_sets: BitArena,
    /// Edge compatibility rows within this level.
    edge_rows: BitArena,
    /// Per input label: allowed labels of this level.
    g_rows: BitArena,
}

/// The extensional table of one level: everything the next step's
/// construction can observe. Two levels with equal tables derive equal
/// successors, so a repeat certifies a cycle of the sequence.
#[derive(Clone, PartialEq, Eq, Debug)]
struct LevelTable {
    labels: usize,
    edge_rows: Vec<BitSet>,
    g_rows: Vec<BitSet>,
    /// Node relation over all multisets of sizes `1..=Δ`, in canonical
    /// enumeration order.
    node_relation: Vec<bool>,
}

/// The shared node-query memo plus its traffic counters.
///
/// Traffic is counted so that the derived hit/miss numbers are
/// *scheduling-independent*: `queries` counts every lookup and `inserted`
/// counts first insertions of a key, both of which are pure functions of
/// the data even when parallel workers race to compute the same key (the
/// racing duplicate's insert finds the key present and is not counted).
/// Misses are reported as `inserted` — distinct queries actually computed
/// — and hits as `queries - inserted`.
#[derive(Debug, Default)]
struct NodeCache {
    map: HashMap<(usize, Vec<u32>), bool>,
    queries: u64,
    inserted: u64,
}

/// The round-elimination problem sequence over a base problem.
///
/// Level 0 is the base [`LclProblem`]; level `k ≥ 1` is obtained from
/// level `k - 1` by `R` (odd `k`) or `R̄` (even `k`), so level `2k` is
/// `f^k(Π)` for `f = R̄ ∘ R` — the sequence of Theorem 3.10.
///
/// # Examples
///
/// ```
/// use lcl::LclProblem;
/// use lcl_core::{ReOptions, ReTower};
///
/// let p = LclProblem::parse(
///     "max-degree: 3\nnodes:\nA*\nB*\nC*\nedges:\nA B\nA C\nB C\n",
/// )?;
/// let mut tower = ReTower::new(p);
/// tower.push_f(ReOptions::default())?; // one R̄(R(·)) step
/// assert_eq!(tower.level_count(), 3);
/// assert!(tower.alphabet_size(1) >= 3); // R(Π) keeps at least the singletons
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ReTower {
    base: LclProblem,
    /// Base edge compatibility rows.
    base_edge_rows: BitArena,
    /// Base `g` rows.
    base_g_rows: BitArena,
    layers: Vec<Layer>,
    /// Per derived level: the step's span (`spans[k]` is level `k + 1`),
    /// the single source of truth for the engine counters.
    spans: Vec<SpanRecord>,
    /// Per level (including the base): the extensional table, when small
    /// enough to compute.
    tables: Vec<Option<LevelTable>>,
    /// Memo table for node-constraint queries `(level, sorted labels)`.
    node_cache: Mutex<NodeCache>,
    /// Optional event sink: memo lookups and level completions are
    /// recorded here when attached (see [`ReTower::set_event_log`]).
    event_log: Option<Arc<EventLog>>,
}

impl Clone for ReTower {
    fn clone(&self) -> Self {
        let cache = self.node_cache.lock().expect("cache lock");
        Self {
            base: self.base.clone(),
            base_edge_rows: self.base_edge_rows.clone(),
            base_g_rows: self.base_g_rows.clone(),
            layers: self.layers.clone(),
            spans: self.spans.clone(),
            tables: self.tables.clone(),
            node_cache: Mutex::new(NodeCache {
                map: cache.map.clone(),
                queries: cache.queries,
                inserted: cache.inserted,
            }),
            event_log: self.event_log.clone(),
        }
    }
}

impl ReTower {
    /// Starts a tower at the given base problem.
    pub fn new(base: LclProblem) -> Self {
        let out_count = base.output_alphabet().len();
        let mut base_edge_rows = BitArena::zeroed(out_count, out_count);
        for a in 0..out_count {
            for b in 0..out_count {
                if base.edge_allows(OutLabel(a as u32), OutLabel(b as u32)) {
                    kernels::set(base_edge_rows.row_words_mut(a), b);
                }
            }
        }
        let mut base_g_rows = BitArena::new(out_count);
        for i in 0..base.input_count() {
            base_g_rows.push_members(
                (0..out_count)
                    .filter(|&o| base.input_allows(InLabel(i as u32), OutLabel(o as u32))),
            );
        }
        Self {
            base,
            base_edge_rows,
            base_g_rows,
            layers: Vec::new(),
            spans: Vec::new(),
            tables: vec![None],
            node_cache: Mutex::new(NodeCache::default()),
            event_log: None,
        }
    }

    /// Attaches an [`EventLog`]: subsequent memoized node-constraint
    /// lookups record [`Event::MemoLookup`] and each completed
    /// round-elimination step records [`Event::LevelComplete`]. Use the
    /// log's sampling knob to tame high-traffic memo events. Detached
    /// (the default) the tower emits nothing.
    pub fn set_event_log(&mut self, log: Arc<EventLog>) {
        self.event_log = Some(log);
    }

    /// Detaches the event log, restoring the zero-overhead default.
    pub fn clear_event_log(&mut self) {
        self.event_log = None;
    }

    /// The base problem (level 0).
    pub fn base(&self) -> &LclProblem {
        &self.base
    }

    /// Number of levels (base + derived).
    pub fn level_count(&self) -> usize {
        self.layers.len() + 1
    }

    /// The kind of derived level `k ≥ 1`.
    pub fn layer_kind(&self, level: usize) -> LayerKind {
        self.layers[level - 1].kind
    }

    /// Number of labels at a level.
    pub fn alphabet_size(&self, level: usize) -> usize {
        if level == 0 {
            self.base.output_alphabet().len()
        } else {
            self.layers[level - 1].labels.len()
        }
    }

    /// The set of parent labels a derived label denotes.
    ///
    /// # Panics
    ///
    /// Panics if `level == 0` or the label is out of range.
    pub fn label_members(&self, level: usize, label: OutLabel) -> &[u32] {
        assert!(level >= 1, "base labels have no members");
        self.layers[level - 1].labels.members(label.0)
    }

    /// The label of a derived level denoting exactly the given sorted set
    /// of parent labels — one interner lookup.
    ///
    /// # Panics
    ///
    /// Panics if `level == 0` (base labels are not sets).
    pub fn lookup_label(&self, level: usize, members: &[u32]) -> Option<OutLabel> {
        assert!(level >= 1, "base labels have no members");
        self.layers[level - 1].labels.lookup(members).map(OutLabel)
    }

    /// Engine counters per derived level (`stats()[k]` is level `k + 1`),
    /// derived from the per-step spans.
    pub fn stats(&self) -> Vec<LevelStats> {
        self.spans.iter().map(LevelStats::from_span).collect()
    }

    /// Engine counters of derived level `k ≥ 1`.
    pub fn level_stats(&self, level: usize) -> LevelStats {
        LevelStats::from_span(&self.spans[level - 1])
    }

    /// The recorded span of each derived level (`spans()[k]` is level
    /// `k + 1`).
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// The tower's execution trace: one child span per derived level
    /// (wall time, labels interned/alive, configurations, memo traffic,
    /// fixpoint certificates), under a root carrying the step count.
    pub fn trace(&self) -> Trace {
        let root = SpanRecord::aggregate(
            "re-tower",
            [(Counter::Steps, self.spans.len() as u64)],
            self.spans.clone(),
        );
        Trace::new(root)
    }

    /// The earliest level whose extensional table equals `level`'s — a
    /// certificate that the sequence cycles (see [`LevelStats`]).
    pub fn fixpoint_of(&self, level: usize) -> Option<usize> {
        if level == 0 {
            None
        } else {
            self.spans[level - 1]
                .get(Counter::FixpointOf)
                .map(|v| v as usize)
        }
    }

    /// Cumulative node-query memo traffic `(hits, misses)`.
    ///
    /// Both numbers are scheduling-independent (see `NodeCache`): a
    /// miss is a distinct query that was actually computed, a hit is any
    /// other lookup.
    pub fn node_cache_counters(&self) -> (u64, u64) {
        let cache = self.node_cache.lock().expect("cache lock");
        (cache.queries - cache.inserted, cache.inserted)
    }

    /// A [`Problem`] view of a level.
    pub fn level(&self, level: usize) -> TowerLevel<'_> {
        assert!(level < self.level_count(), "level out of range");
        TowerLevel { tower: self, level }
    }

    /// Captures everything this tower has derived as a serializable
    /// [`TowerSnapshot`]: the base problem text, every level's interned
    /// universe and constraint bitsets, the extensional tables, and the
    /// per-level spans. The node-constraint memo cache is deliberately
    /// excluded — it is a pure performance artifact, rebuilt on demand
    /// after [`ReTower::resume_from`].
    pub fn snapshot(&self) -> TowerSnapshot {
        TowerSnapshot {
            problem: self.base.to_text(),
            layers: self
                .layers
                .iter()
                .map(|layer| LayerSnapshot {
                    kind: layer.kind,
                    members: layer.labels.iter().map(|(_, m)| m.to_vec()).collect(),
                    edge_rows: layer.edge_rows.iter().map(|r| r.to_vec()).collect(),
                    g_rows: layer.g_rows.iter().map(|r| r.to_vec()).collect(),
                })
                .collect(),
            tables: self
                .tables
                .iter()
                .map(|slot| {
                    slot.as_ref().map(|t| TableSnapshot {
                        labels: t.labels,
                        edge_rows: t.edge_rows.iter().map(|r| r.to_vec()).collect(),
                        g_rows: t.g_rows.iter().map(|r| r.to_vec()).collect(),
                        node_relation: t.node_relation.clone(),
                    })
                })
                .collect(),
            spans: self
                .spans
                .iter()
                .map(|span| SpanSnapshot {
                    name: span.name().to_string(),
                    wall_us: u64::try_from(span.wall().as_micros()).unwrap_or(u64::MAX),
                    counters: span
                        .counters()
                        .map(|(c, v)| (c.as_str().to_string(), v))
                        .collect(),
                })
                .collect(),
        }
    }

    /// Rebuilds a tower from a snapshot so that further pushes continue
    /// bit-identically to the interrupted run (same interner ids, same
    /// bitsets, same fixpoint tables). The memo cache starts empty; that
    /// only changes *future* memo hit/miss counters, never a derived
    /// problem, which is why [`ReTower::fingerprint`] is structural.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when the embedded problem fails to parse or the
    /// snapshot is structurally inconsistent (mismatched lengths,
    /// out-of-range indices, duplicate or unsorted member sets, a
    /// non-`R` level under an `R̄`).
    pub fn resume_from(snap: &TowerSnapshot) -> Result<ReTower, SnapshotError> {
        let base = LclProblem::parse(&snap.problem).map_err(SnapshotError::Problem)?;
        let mut tower = ReTower::new(base);
        let input_count = tower.base.input_count();
        let mut parent_size = tower.base.output_alphabet().len();
        let mut prior_kind = None;
        for layer in &snap.layers {
            if layer.kind == LayerKind::RBar && prior_kind != Some(LayerKind::R) {
                return Err(SnapshotError::Invalid("an R̄ level must sit on an R level"));
            }
            prior_kind = Some(layer.kind);
            let n = layer.members.len();
            if n == 0 {
                return Err(SnapshotError::Invalid("a level with no labels"));
            }
            let mut labels = LabelInterner::new();
            let mut member_sets = BitArena::new(parent_size);
            for (i, members) in layer.members.iter().enumerate() {
                if !members.windows(2).all(|w| w[0] < w[1]) {
                    return Err(SnapshotError::Invalid("unsorted label member set"));
                }
                if members.iter().any(|&m| m as usize >= parent_size) {
                    return Err(SnapshotError::Invalid("member outside parent universe"));
                }
                let id = labels.intern(members);
                if id as usize != i {
                    return Err(SnapshotError::Invalid("duplicate label member set"));
                }
                member_sets.push_members(members.iter().map(|&m| m as usize));
            }
            let edge_rows = arena_from_snapshot(&layer.edge_rows, n, n)?;
            let g_rows = arena_from_snapshot(&layer.g_rows, input_count, n)?;
            tower.layers.push(Layer {
                kind: layer.kind,
                labels,
                member_sets,
                edge_rows,
                g_rows,
            });
            parent_size = n;
        }
        if snap.tables.len() != snap.layers.len() + 1 {
            return Err(SnapshotError::Invalid("table slot per level plus base"));
        }
        tower.tables.clear();
        for slot in &snap.tables {
            let Some(t) = slot else {
                tower.tables.push(None);
                continue;
            };
            tower.tables.push(Some(LevelTable {
                labels: t.labels,
                edge_rows: rows_from_snapshot(&t.edge_rows, t.labels, t.labels)?,
                g_rows: rows_from_snapshot(&t.g_rows, input_count, t.labels)?,
                node_relation: t.node_relation.clone(),
            }));
        }
        if snap.spans.len() != snap.layers.len() {
            return Err(SnapshotError::Invalid("one span per derived level"));
        }
        for span in &snap.spans {
            let mut counters = Vec::with_capacity(span.counters.len());
            for (name, value) in &span.counters {
                let counter = Counter::from_name(name)
                    .ok_or_else(|| SnapshotError::UnknownCounter(name.clone()))?;
                counters.push((counter, *value));
            }
            tower.spans.push(SpanRecord::with_wall(
                span.name.clone(),
                Duration::from_micros(span.wall_us),
                counters,
                Vec::new(),
            ));
        }
        Ok(tower)
    }

    /// An FNV-1a fingerprint of the tower's structural content (see
    /// [`TowerSnapshot::fingerprint`]): equal fingerprints mean equal
    /// base problems, universes, constraints, and fixpoint tables —
    /// regardless of thread counts, memo traffic, or whether the build
    /// was interrupted and resumed along the way.
    pub fn fingerprint(&self) -> String {
        self.snapshot().fingerprint()
    }

    /// Edge-compatibility row of a label at a level (arena row over that
    /// level's universe).
    fn edge_row(&self, level: usize, label: usize) -> BitRow<'_> {
        if level == 0 {
            self.base_edge_rows.row(label)
        } else {
            self.layers[level - 1].edge_rows.row(label)
        }
    }

    /// `g` row of an input at a level.
    fn g_row(&self, level: usize, input: usize) -> BitRow<'_> {
        if level == 0 {
            self.base_g_rows.row(input)
        } else {
            self.layers[level - 1].g_rows.row(input)
        }
    }

    /// Node-constraint check at a level, for a multiset of that level's
    /// labels given as indices.
    fn node_allows_ids(&self, level: usize, labels: &[u32]) -> bool {
        if level == 0 {
            let as_labels: Vec<OutLabel> = labels.iter().map(|&l| OutLabel(l)).collect();
            return self.base.node_allows(&as_labels);
        }
        let mut key_labels = labels.to_vec();
        key_labels.sort_unstable();
        let key = (level, key_labels);
        {
            let mut cache = self.node_cache.lock().expect("cache lock");
            cache.queries += 1;
            if let Some(&hit) = cache.map.get(&key) {
                drop(cache);
                if let Some(log) = &self.event_log {
                    log.record(Event::MemoLookup { hit: true });
                }
                return hit;
            }
        }
        if let Some(log) = &self.event_log {
            log.record(Event::MemoLookup { hit: false });
        }
        // The lock is NOT held while computing: the recursion below
        // re-enters this function for parent levels.
        let result = self.node_allows_ids_uncached(level, labels);
        let mut cache = self.node_cache.lock().expect("cache lock");
        if cache.map.insert(key, result).is_none() {
            cache.inserted += 1;
        }
        result
    }

    fn node_allows_ids_uncached(&self, level: usize, labels: &[u32]) -> bool {
        let layer = &self.layers[level - 1];
        let sets: Vec<&[u32]> = labels.iter().map(|&l| layer.labels.members(l)).collect();
        match layer.kind {
            // ∃ selection of parent labels forming a parent configuration.
            LayerKind::R => self.exists_selection(level - 1, &sets, true),
            // ∀ selections of parent labels form parent configurations.
            LayerKind::RBar => self.exists_selection(level - 1, &sets, false),
        }
    }

    /// If `looking_for == true`: does some selection satisfy the parent
    /// node constraint? If `false`: report `true` iff *all* selections
    /// satisfy it (implemented as "no counterexample exists").
    fn exists_selection(&self, parent_level: usize, sets: &[&[u32]], looking_for: bool) -> bool {
        let mut selection = vec![0u32; sets.len()];
        let found = self.selection_search(parent_level, sets, &mut selection, 0, looking_for);
        if looking_for {
            found
        } else {
            !found
        }
    }

    fn selection_search(
        &self,
        parent_level: usize,
        sets: &[&[u32]],
        selection: &mut Vec<u32>,
        depth: usize,
        want: bool,
    ) -> bool {
        if depth == sets.len() {
            let holds = self.node_allows_ids(parent_level, selection);
            // Searching for a witness (want=true) or a counterexample.
            return holds == want;
        }
        for &candidate in sets[depth] {
            selection[depth] = candidate;
            if self.selection_search(parent_level, sets, selection, depth + 1, want) {
                return true;
            }
        }
        false
    }

    /// Applies `R` (Definition 3.1) on top of the current top level.
    ///
    /// # Errors
    ///
    /// See [`ReError`].
    pub fn push_r(&mut self, opts: ReOptions) -> Result<(), ReError> {
        self.push_layer(LayerKind::R, opts, None)
    }

    /// Applies `R̄` (Definition 3.2) on top of the current top level.
    ///
    /// # Errors
    ///
    /// Returns [`ReError::RBarNeedsR`] unless the top level is an `R`
    /// level (the paper only ever applies `R̄` to `R(Π)`).
    pub fn push_rbar(&mut self, opts: ReOptions) -> Result<(), ReError> {
        match self.layers.last() {
            Some(layer) if layer.kind == LayerKind::R => {}
            _ => return Err(ReError::RBarNeedsR),
        }
        self.push_layer(LayerKind::RBar, opts, None)
    }

    /// Applies one full step `f = R̄ ∘ R` of the Theorem 3.10 sequence.
    ///
    /// # Errors
    ///
    /// See [`ReError`].
    pub fn push_f(&mut self, opts: ReOptions) -> Result<(), ReError> {
        self.push_r(opts)?;
        self.push_rbar(opts)
    }

    /// [`push_r`](Self::push_r) under a resource [`Budget`]: the label
    /// cap is checked during interning, the level cap before the step,
    /// the memory estimate after universe construction, and the cancel
    /// token between restriction iterations and inside the parallel
    /// fan-out. On a breach the tower is left exactly as before the
    /// failed step — every previously completed level survives, and the
    /// returned [`ReError::Budget`] carries that count as `partial`.
    ///
    /// # Errors
    ///
    /// [`ReError::Budget`] on a cap breach or tripped token, plus every
    /// failure mode of [`push_r`](Self::push_r).
    pub fn push_r_budgeted(
        &mut self,
        opts: ReOptions,
        budget: &Budget,
        token: &CancelToken,
    ) -> Result<(), ReError> {
        self.push_layer(LayerKind::R, opts, Some((budget, token)))
    }

    /// [`push_rbar`](Self::push_rbar) under a resource [`Budget`]; see
    /// [`push_r_budgeted`](Self::push_r_budgeted).
    ///
    /// # Errors
    ///
    /// As [`push_r_budgeted`](Self::push_r_budgeted), plus
    /// [`ReError::RBarNeedsR`].
    pub fn push_rbar_budgeted(
        &mut self,
        opts: ReOptions,
        budget: &Budget,
        token: &CancelToken,
    ) -> Result<(), ReError> {
        match self.layers.last() {
            Some(layer) if layer.kind == LayerKind::R => {}
            _ => return Err(ReError::RBarNeedsR),
        }
        self.push_layer(LayerKind::RBar, opts, Some((budget, token)))
    }

    /// One full budgeted `f = R̄ ∘ R` step; see
    /// [`push_r_budgeted`](Self::push_r_budgeted). If `R` completes but
    /// `R̄` breaches, the `R` level stays (a usable partial tower).
    ///
    /// # Errors
    ///
    /// As [`push_r_budgeted`](Self::push_r_budgeted).
    pub fn push_f_budgeted(
        &mut self,
        opts: ReOptions,
        budget: &Budget,
        token: &CancelToken,
    ) -> Result<(), ReError> {
        self.push_r_budgeted(opts, budget, token)?;
        self.push_rbar_budgeted(opts, budget, token)
    }

    fn push_layer(
        &mut self,
        kind: LayerKind,
        opts: ReOptions,
        guard: Option<(&Budget, &CancelToken)>,
    ) -> Result<(), ReError> {
        let kind_name = match kind {
            LayerKind::R => "r",
            LayerKind::RBar => "rbar",
        };
        let mut span = Span::start(format!("level-{}/{kind_name}", self.layers.len() + 1));
        // Budget bookkeeping: `partial` counts completed derived levels,
        // which all survive a breach of *this* step.
        let stage = format!("re-tower/level-{}", self.layers.len() + 1);
        let partial = self.layers.len() as u64;
        if let Some((budget, token)) = guard {
            token.checkpoint(&stage, partial)?;
            budget.check_rounds(&stage, self.layers.len() as u64 + 1, partial)?;
        }
        let threads = if opts.parallel {
            par::resolve_threads(opts.threads)
        } else {
            1
        };
        let (hits_before, misses_before) = self.node_cache_counters();
        let parent_level = self.layers.len();
        let parent_size = self.alphabet_size(parent_level);
        let input_count = self.base.input_count();

        // Universe: nonempty subsets of parent g images, interned. The
        // enumeration order is deterministic, so interner ids are stable
        // across engines regardless of the thread count used elsewhere.
        // Candidates are materialized per input as one batch, then
        // interned in a single dedup pass (`try_intern`: one hash probe
        // per duplicate instead of the lookup-then-intern double probe).
        let mut labels = LabelInterner::new();
        let mut batch: Vec<Vec<u32>> = Vec::new();
        for input in 0..input_count {
            let image = self.g_row(parent_level, input).to_vec();
            if image.len() > opts.max_parent_labels {
                return Err(ReError::UniverseTooLarge {
                    parent_labels: image.len(),
                    limit: opts.max_parent_labels,
                });
            }
            let subsets = 1usize << image.len();
            batch.clear();
            for mask in 1..subsets {
                batch.push(
                    image
                        .iter()
                        .enumerate()
                        .filter(|&(bit, _)| mask & (1 << bit) != 0)
                        .map(|(_, &m)| m as u32)
                        .collect(),
                );
            }
            for members in &batch {
                if labels.try_intern(members, opts.max_labels).is_none() {
                    return Err(ReError::TooManyLabels {
                        labels: labels.len() + 1,
                        limit: opts.max_labels,
                    });
                }
                if let Some((budget, _)) = guard {
                    budget.check_labels(&stage, labels.len() as u64, partial)?;
                }
            }
        }
        if labels.is_empty() {
            return Err(ReError::EmptyUniverse);
        }
        let labels_full = labels.len();

        let count = labels.len();
        if let Some((budget, token)) = guard {
            token.checkpoint(&stage, partial)?;
            // Working-set estimate before the bitset rows are allocated:
            // one parent-universe row plus two level-universe rows per
            // label, and the interner's member lists.
            let bitset_bytes = |bits: usize| (bits.div_ceil(64) * 8) as u64;
            let estimate = count as u64 * (bitset_bytes(parent_size) + 2 * bitset_bytes(count))
                + labels_full as u64 * 16;
            budget.check_memory(&stage, estimate, partial)?;
        }
        // All four row families are filled in place: each family is one
        // contiguous arena slab, and the parallel path writes disjoint
        // rows of it directly (`par_fill_rows`) instead of allocating
        // per-row bitsets and reassembling.
        let parent_width = parent_size.div_ceil(64);
        let level_width = count.div_ceil(64);
        let mut member_sets = BitArena::zeroed(parent_size, count);
        {
            let labels = &labels;
            par::par_fill_rows(member_sets.words_mut(), parent_width, threads, |l, row| {
                for &m in labels.members(l as u32) {
                    kernels::set(row, m as usize);
                }
            });
        }

        // Edge rows.
        let mut edge_rows = BitArena::zeroed(count, count);
        match kind {
            LayerKind::R => {
                // {A, B} allowed iff ∀ a ∈ A, b ∈ B: {a, b} parent-allowed
                // ⟺ B ⊆ ⋂_{a ∈ A} parent_row(a).
                let mut majorants = BitArena::zeroed(parent_size, count);
                {
                    let labels = &labels;
                    par::par_fill_rows(majorants.words_mut(), parent_width, threads, |l, row| {
                        kernels::fill(row, parent_size);
                        for &a in labels.members(l as u32) {
                            kernels::and_assign(
                                row,
                                self.edge_row(parent_level, a as usize).words(),
                            );
                        }
                    });
                }
                let (member_sets, majorants) = (&member_sets, &majorants);
                par::par_fill_rows(edge_rows.words_mut(), level_width, threads, |a, row| {
                    let maj = majorants.row_words(a);
                    for b in 0..count {
                        if kernels::subset(member_sets.row_words(b), maj) {
                            kernels::set(row, b);
                        }
                    }
                });
            }
            LayerKind::RBar => {
                // {A, B} allowed iff ∃ a ∈ A, b ∈ B: {a, b} parent-allowed
                // ⟺ B ∩ ⋃_{a ∈ A} parent_row(a) ≠ ∅.
                let mut unions = BitArena::zeroed(parent_size, count);
                {
                    let labels = &labels;
                    par::par_fill_rows(unions.words_mut(), parent_width, threads, |l, row| {
                        for &a in labels.members(l as u32) {
                            kernels::or_assign(
                                row,
                                self.edge_row(parent_level, a as usize).words(),
                            );
                        }
                    });
                }
                let (member_sets, unions) = (&member_sets, &unions);
                par::par_fill_rows(edge_rows.words_mut(), level_width, threads, |a, row| {
                    let uni = unions.row_words(a);
                    for b in 0..count {
                        if kernels::intersects(member_sets.row_words(b), uni) {
                            kernels::set(row, b);
                        }
                    }
                });
            }
        }

        // g rows: a derived label is allowed for input ℓ iff its members
        // all lie in the parent's g image (2^{g(ℓ)} in both definitions).
        let mut g_rows = BitArena::zeroed(count, input_count);
        {
            let member_sets = &member_sets;
            par::par_fill_rows(g_rows.words_mut(), level_width, threads, |input, row| {
                let image = self.g_row(parent_level, input).words();
                for l in 0..count {
                    if kernels::subset(member_sets.row_words(l), image) {
                        kernels::set(row, l);
                    }
                }
            });
        }

        let mut layer = Layer {
            kind,
            labels,
            member_sets,
            edge_rows,
            g_rows,
        };

        // Temporarily push to evaluate node constraints through `self`.
        self.layers.push(layer);
        let mut configurations = 0;
        if opts.restrict {
            let (alive, work) = match self.restrict_top(opts, threads, guard, &stage, partial) {
                Ok(v) => v,
                Err(breach) => {
                    // Undo the tentative push so the tower holds exactly
                    // the levels completed before the breach.
                    self.layers.pop();
                    self.node_cache.lock().expect("cache lock").map.clear();
                    return Err(ReError::Budget(breach));
                }
            };
            configurations = work;
            layer = self.layers.pop().expect("just pushed");
            // Compaction reindexes labels: drop memoized entries.
            self.node_cache.lock().expect("cache lock").map.clear();
            if alive.is_empty() {
                return Err(ReError::EmptyUniverse);
            }
            let layer = compact_layer(layer, &alive);
            self.layers.push(layer);
        }

        // Extensional table of the new level, for fixpoint detection.
        let level = self.layers.len();
        let table = self.level_table(level, opts);
        if table.is_some() && self.tables[0].is_none() {
            self.tables[0] = self.level_table(0, opts);
        }
        let fixpoint_of = table.as_ref().and_then(|t| {
            self.tables
                .iter()
                .position(|earlier| earlier.as_ref() == Some(t))
        });
        self.tables.push(table);

        let (hits_after, misses_after) = self.node_cache_counters();
        span.set(Counter::LabelsInterned, labels_full as u64);
        span.set(Counter::LabelsAlive, self.alphabet_size(level) as u64);
        span.set(Counter::Configurations, configurations);
        span.set(Counter::MemoHits, hits_after - hits_before);
        span.set(Counter::MemoMisses, misses_after - misses_before);
        if let Some(earlier) = fixpoint_of {
            span.set(Counter::FixpointOf, earlier as u64);
        }
        self.spans.push(span.finish());
        if let Some(log) = &self.event_log {
            log.record(Event::LevelComplete {
                level: level as u64,
                labels: self.alphabet_size(level) as u64,
                configs: configurations,
            });
        }
        Ok(())
    }

    /// Enumerates the extensional table of a level, or `None` when the
    /// universe exceeds [`ReOptions::fixpoint_max_labels`].
    fn level_table(&self, level: usize, opts: ReOptions) -> Option<LevelTable> {
        let count = self.alphabet_size(level);
        if count == 0 || count > opts.fixpoint_max_labels {
            return None;
        }
        let delta = self.base.max_degree() as usize;
        let input_count = self.base.input_count();
        let mut node_relation = Vec::new();
        for d in 1..=delta {
            let complete = for_each_multiset(count, d, opts.node_work_cap as usize, |combo| {
                let ids: Vec<u32> = combo.iter().map(|&i| i as u32).collect();
                node_relation.push(self.node_allows_ids(level, &ids));
                true
            });
            if !complete {
                return None;
            }
        }
        Some(LevelTable {
            labels: count,
            edge_rows: (0..count)
                .map(|l| self.edge_row(level, l).to_bitset())
                .collect(),
            g_rows: (0..input_count)
                .map(|i| self.g_row(level, i).to_bitset())
                .collect(),
            node_relation,
        })
    }

    /// Computes the alive-label fixpoint of the top layer, returning the
    /// surviving labels and the number of candidate configurations tried.
    ///
    /// With a `guard`, the cancel token is observed once per fixpoint
    /// iteration and cooperatively inside the node-useful fan-out, so a
    /// deadline or external cancel stops the (potentially expensive)
    /// restriction mid-flight with a typed breach.
    fn restrict_top(
        &self,
        opts: ReOptions,
        threads: usize,
        guard: Option<(&Budget, &CancelToken)>,
        stage: &str,
        partial: u64,
    ) -> Result<(BitSet, u64), BudgetExceeded> {
        let level = self.layers.len();
        let layer = &self.layers[level - 1];
        let count = layer.labels.len();
        let delta = self.base.max_degree() as usize;

        // In some g image?
        let mut union_words = vec![0u64; count.div_ceil(64)];
        for row in layer.g_rows.iter() {
            kernels::or_assign(&mut union_words, row.words());
        }
        let mut alive = BitSet::from_members(count, Ones::new(&union_words));
        let mut configurations = 0u64;
        loop {
            if let Some((_, token)) = guard {
                token.checkpoint(stage, partial)?;
            }
            let mut changed = false;
            // Edge-useful: some alive partner.
            for l in 0..count {
                if alive.contains(l) && !layer.edge_rows.row(l).intersects_set(&alive) {
                    alive.remove(l);
                    changed = true;
                }
            }
            // Node-useful: some completion among alive labels. Each label
            // is independent given the snapshot, so the checks fan out;
            // workers share the node-query memo (hit-or-compute, never
            // blocking on another worker's computation), and the verdicts
            // do not depend on scheduling.
            let snapshot = alive.clone();
            let snapshot_ids: Vec<usize> = snapshot.iter().collect();
            let verdicts = match guard {
                Some((_, token)) => par::par_map_indexed_cancellable(
                    snapshot_ids.len(),
                    threads,
                    token,
                    stage,
                    partial,
                    |i| {
                        self.node_useful(
                            level,
                            snapshot_ids[i],
                            &snapshot,
                            delta,
                            opts.node_work_cap,
                        )
                    },
                )?,
                None => par::par_map(&snapshot_ids, threads, |&l| {
                    self.node_useful(level, l, &snapshot, delta, opts.node_work_cap)
                }),
            };
            for (&l, &(useful, work)) in snapshot_ids.iter().zip(&verdicts) {
                configurations += work;
                if !useful {
                    alive.remove(l);
                    changed = true;
                }
            }
            if !changed {
                return Ok((alive, configurations));
            }
        }
    }

    /// Whether label `l` of `level` admits a node-configuration completion
    /// among `alive` labels for some degree `1..=Δ`, plus the number of
    /// candidate completions tried. Conservative on work cap: returns
    /// `true` (keep) when the budget runs out.
    fn node_useful(
        &self,
        level: usize,
        l: usize,
        alive: &BitSet,
        delta: usize,
        work_cap: u64,
    ) -> (bool, u64) {
        let alive_ids: Vec<u32> = alive.iter().map(|i| i as u32).collect();
        let mut work = 0u64;
        for d in 1..=delta {
            let mut config = vec![l as u32; d];
            if self.node_completion_search(level, &alive_ids, &mut config, 1, &mut work, work_cap) {
                return (true, work);
            }
            if work >= work_cap {
                return (true, work); // budget exhausted: keep (sound)
            }
        }
        (false, work)
    }

    fn node_completion_search(
        &self,
        level: usize,
        alive_ids: &[u32],
        config: &mut Vec<u32>,
        depth: usize,
        work: &mut u64,
        cap: u64,
    ) -> bool {
        if depth == config.len() {
            *work += 1;
            return self.node_allows_ids(level, config);
        }
        // Completions are multisets: enforce ascending order from index 1.
        for &candidate in alive_ids {
            if depth > 1 && candidate < config[depth - 1] {
                continue;
            }
            if *work >= cap {
                return true; // keep on budget exhaustion
            }
            config[depth] = candidate;
            if self.node_completion_search(level, alive_ids, config, depth + 1, work, cap) {
                return true;
            }
        }
        false
    }
}

/// Rebuilds bitset rows from a snapshot's index lists, validating the
/// row count and that every index is inside the level's universe.
fn rows_from_snapshot(
    rows: &[Vec<usize>],
    expected_rows: usize,
    universe: usize,
) -> Result<Vec<BitSet>, SnapshotError> {
    if rows.len() != expected_rows {
        return Err(SnapshotError::Invalid("row count mismatch"));
    }
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        if row.iter().any(|&i| i >= universe) {
            return Err(SnapshotError::Invalid("row index outside the universe"));
        }
        out.push(BitSet::from_members(universe, row.iter().copied()));
    }
    Ok(out)
}

/// As [`rows_from_snapshot`], but packing the rows into one arena slab
/// (the layer storage format).
fn arena_from_snapshot(
    rows: &[Vec<usize>],
    expected_rows: usize,
    universe: usize,
) -> Result<BitArena, SnapshotError> {
    if rows.len() != expected_rows {
        return Err(SnapshotError::Invalid("row count mismatch"));
    }
    let mut arena = BitArena::new(universe);
    for row in rows {
        if row.iter().any(|&i| i >= universe) {
            return Err(SnapshotError::Invalid("row index outside the universe"));
        }
        arena.push_members(row.iter().copied());
    }
    Ok(arena)
}

fn compact_layer(layer: Layer, alive: &BitSet) -> Layer {
    let keep: Vec<usize> = alive.iter().collect();
    let labels = layer.labels.retain_ids(&keep);
    let mut member_sets = BitArena::new(layer.member_sets.universe());
    for &l in &keep {
        member_sets.push_members(layer.member_sets.row(l).iter());
    }
    let mut edge_rows = BitArena::new(keep.len());
    for &l in &keep {
        let old = layer.edge_rows.row(l);
        edge_rows.push_members(
            keep.iter()
                .enumerate()
                .filter(|&(_, &m)| old.contains(m))
                .map(|(new, _)| new),
        );
    }
    let mut g_rows = BitArena::new(keep.len());
    for old in layer.g_rows.iter() {
        g_rows.push_members(
            keep.iter()
                .enumerate()
                .filter(|&(_, &m)| old.contains(m))
                .map(|(new, _)| new),
        );
    }
    Layer {
        kind: layer.kind,
        labels,
        member_sets,
        edge_rows,
        g_rows,
    }
}

/// A [`Problem`] view of one tower level; level `2k` is `f^k(Π)`.
#[derive(Clone, Copy, Debug)]
pub struct TowerLevel<'a> {
    tower: &'a ReTower,
    level: usize,
}

impl TowerLevel<'_> {
    /// Which level of the tower this is.
    pub fn level_index(&self) -> usize {
        self.level
    }

    /// The tower the view borrows from.
    pub fn tower(&self) -> &ReTower {
        self.tower
    }
}

impl Problem for TowerLevel<'_> {
    fn max_degree(&self) -> u8 {
        self.tower.base.max_degree()
    }

    fn input_count(&self) -> usize {
        self.tower.base.input_count()
    }

    fn output_count(&self) -> Option<usize> {
        Some(self.tower.alphabet_size(self.level))
    }

    fn node_allows(&self, outputs: &[OutLabel]) -> bool {
        if outputs.is_empty() {
            return true;
        }
        let ids: Vec<u32> = outputs.iter().map(|l| l.0).collect();
        self.tower.node_allows_ids(self.level, &ids)
    }

    fn edge_allows(&self, a: OutLabel, b: OutLabel) -> bool {
        self.tower
            .edge_row(self.level, a.index())
            .contains(b.index())
    }

    fn input_allows(&self, input: InLabel, out: OutLabel) -> bool {
        self.tower
            .g_row(self.level, input.index())
            .contains(out.index())
    }

    fn name(&self) -> &str {
        self.tower.base.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_coloring() -> LclProblem {
        LclProblem::parse("name: 3col\nmax-degree: 3\nnodes:\nA*\nB*\nC*\nedges:\nA B\nA C\nB C\n")
            .unwrap()
    }

    fn sinkless_orientation() -> LclProblem {
        LclProblem::parse("name: sinkless\nmax-degree: 3\nnodes:\nO I* O*\nedges:\nI O\n").unwrap()
    }

    #[test]
    fn r_of_three_coloring_has_seven_subsets() {
        let mut tower = ReTower::new(three_coloring());
        tower
            .push_r(ReOptions {
                restrict: false,
                ..ReOptions::default()
            })
            .unwrap();
        // All nonempty subsets of {A, B, C}.
        assert_eq!(tower.alphabet_size(1), 7);
    }

    #[test]
    fn event_log_records_memo_traffic_and_level_completions() {
        let mut tower = ReTower::new(three_coloring());
        let log = Arc::new(EventLog::new(4096));
        tower.set_event_log(Arc::clone(&log));
        tower.push_f(ReOptions::default()).unwrap();
        let events = log.events();
        let completions: Vec<&Event> = events
            .iter()
            .filter(|e| matches!(e, Event::LevelComplete { .. }))
            .collect();
        assert_eq!(completions.len(), 2, "one per pushed level");
        assert!(matches!(
            completions[0],
            Event::LevelComplete { level: 1, .. }
        ));
        assert!(matches!(
            completions[1],
            Event::LevelComplete { level: 2, .. }
        ));
        // Memo lookups mirror the scheduling-independent counters when
        // nothing was sampled away or evicted.
        let (hits, misses) = tower.node_cache_counters();
        let logged_hits = events
            .iter()
            .filter(|e| matches!(e, Event::MemoLookup { hit: true }))
            .count() as u64;
        let logged_lookups = events
            .iter()
            .filter(|e| matches!(e, Event::MemoLookup { .. }))
            .count() as u64;
        assert_eq!(log.dropped(), 0, "capacity was large enough");
        assert_eq!(logged_lookups, hits + misses);
        assert!(logged_hits <= hits, "a racing miss may later hit");
        // A clone carries the same sink; detaching restores silence.
        let mut fresh = ReTower::new(three_coloring());
        fresh.set_event_log(Arc::clone(&log));
        let mut clone = fresh.clone();
        clone.clear_event_log();
        let before = log.seen();
        clone.push_r(ReOptions::default()).unwrap();
        assert_eq!(log.seen(), before);
    }

    #[test]
    fn r_edge_constraint_is_forall() {
        let mut tower = ReTower::new(three_coloring());
        tower
            .push_r(ReOptions {
                restrict: false,
                ..ReOptions::default()
            })
            .unwrap();
        let level = tower.level(1);
        // Find labels by member sets.
        let find =
            |members: &[u32]| -> OutLabel { tower.lookup_label(1, members).expect("label exists") };
        let a = find(&[0]);
        let b = find(&[1]);
        let ab = find(&[0, 1]);
        let c = find(&[2]);
        // {A} vs {B}: only pair (A,B) ∈ E ✓.
        assert!(level.edge_allows(a, b));
        // {A} vs {A}: pair (A,A) ∉ E ✗.
        assert!(!level.edge_allows(a, a));
        // {A,B} vs {C}: pairs (A,C), (B,C) ✓.
        assert!(level.edge_allows(ab, c));
        // {A,B} vs {B}: pair (B,B) ✗.
        assert!(!level.edge_allows(ab, b));
    }

    #[test]
    fn r_node_constraint_is_exists() {
        let mut tower = ReTower::new(three_coloring());
        tower
            .push_r(ReOptions {
                restrict: false,
                ..ReOptions::default()
            })
            .unwrap();
        let level = tower.level(1);
        let find =
            |members: &[u32]| -> OutLabel { tower.lookup_label(1, members).expect("label exists") };
        let a = find(&[0]);
        let b = find(&[1]);
        let ab = find(&[0, 1]);
        // {A}, {A}: selection (A, A) ∈ N ✓ (coloring node configs are
        // monochromatic).
        assert!(level.node_allows(&[a, a]));
        // {A}, {B}: selections (A,B) ∉ N ✗.
        assert!(!level.node_allows(&[a, b]));
        // {A,B}, {B}: selection (B,B) ✓.
        assert!(level.node_allows(&[ab, b]));
    }

    #[test]
    fn rbar_node_constraint_is_forall() {
        let mut tower = ReTower::new(three_coloring());
        let opts = ReOptions {
            restrict: false,
            ..ReOptions::default()
        };
        tower.push_r(opts).unwrap();
        tower.push_rbar(opts).unwrap();
        let level2 = tower.level(2);
        // R-labels: find the singleton-set labels.
        let ra = tower.lookup_label(1, &[0]).expect("{A} exists").0;
        let rb = tower.lookup_label(1, &[1]).expect("{B} exists").0;
        // Level-2 label {{A}, {B}}.
        let baa = tower
            .lookup_label(2, &[ra.min(rb), ra.max(rb)])
            .expect("{{A},{B}} exists");
        // {{A},{B}} at degree 1: selections ({A}) ✓ and ({B}) ✓ — fine.
        assert!(level2.node_allows(&[baa]));
        // {{A},{B}}, {{A},{B}} at degree 2: selection ({A},{B}) is not an
        // R-node-config (no base selection in N) ✗.
        assert!(!level2.node_allows(&[baa, baa]));
    }

    #[test]
    fn sinkless_orientation_survives_f() {
        // Sinkless orientation is a round-elimination fixed point
        // (Brandt 2019): the universe must stay small and nonempty.
        let mut tower = ReTower::new(sinkless_orientation());
        tower.push_f(ReOptions::default()).unwrap();
        assert!(tower.alphabet_size(2) >= 1);
        assert!(tower.alphabet_size(2) <= 7);
    }

    #[test]
    fn restricted_towers_reach_extensional_fixpoints() {
        // A problem whose restriction collapses to a stable universe: only
        // X-X edges are valid, so every derived level prunes down to the
        // single label {X} and the extensional tables repeat. The stats
        // must record the certificate with nonzero memo traffic. (Sinkless
        // orientation also cycles in principle, but only up to label
        // isomorphism — literal table equality never fires before the caps
        // do, because this engine does not canonicalize label names.)
        let p = LclProblem::parse("max-degree: 2\nnodes:\nX*\nY*\nedges:\nX X\n").unwrap();
        let mut tower = ReTower::new(p);
        let mut found = None;
        for step in 1..=3 {
            tower.push_f(ReOptions::default()).unwrap();
            if let Some(earlier) = tower.fixpoint_of(2 * step) {
                found = Some((2 * step, earlier));
                break;
            }
        }
        let (level, earlier) = found.expect("the collapsed tower must cycle");
        assert!(earlier < level);
        let stats = tower.level_stats(level);
        assert_eq!(stats.fixpoint_of, Some(earlier));
        assert!(
            stats.cache_hits > 0,
            "fixpoint level must hit the node-query memo: {stats:?}"
        );
    }

    #[test]
    fn stats_track_restriction_and_work() {
        let mut tower = ReTower::new(three_coloring());
        tower.push_r(ReOptions::default()).unwrap();
        let stats = tower.level_stats(1);
        assert_eq!(stats.labels_full, 7);
        assert_eq!(stats.labels, tower.alphabet_size(1));
        assert!(stats.labels <= stats.labels_full);
        assert!(stats.configurations > 0);
        assert!(stats.cache_misses > 0);
    }

    #[test]
    fn parallel_and_sequential_towers_agree() {
        for problem in [three_coloring(), sinkless_orientation()] {
            let mut seq = ReTower::new(problem.clone());
            seq.push_f(ReOptions {
                parallel: false,
                ..ReOptions::default()
            })
            .unwrap();
            let mut par4 = ReTower::new(problem);
            par4.push_f(ReOptions {
                parallel: true,
                threads: 4,
                ..ReOptions::default()
            })
            .unwrap();
            for level in 1..=2 {
                assert_eq!(seq.alphabet_size(level), par4.alphabet_size(level));
                for l in 0..seq.alphabet_size(level) {
                    assert_eq!(
                        seq.label_members(level, OutLabel(l as u32)),
                        par4.label_members(level, OutLabel(l as u32))
                    );
                }
            }
        }
    }

    #[test]
    fn restriction_shrinks_three_coloring_r() {
        let mut full = ReTower::new(three_coloring());
        full.push_r(ReOptions {
            restrict: false,
            ..ReOptions::default()
        })
        .unwrap();
        let mut restricted = ReTower::new(three_coloring());
        restricted.push_r(ReOptions::default()).unwrap();
        assert!(restricted.alphabet_size(1) <= full.alphabet_size(1));
        assert!(restricted.alphabet_size(1) >= 3);
    }

    #[test]
    fn rbar_requires_r_on_top() {
        let mut tower = ReTower::new(three_coloring());
        assert_eq!(
            tower.push_rbar(ReOptions::default()),
            Err(ReError::RBarNeedsR)
        );
    }

    #[test]
    fn universe_cap_is_enforced() {
        let p = LclProblem::parse("max-degree: 2\nnodes:\nA*\nB*\nC*\nedges:\nA B\nA C\nB C\n")
            .unwrap();
        let mut tower = ReTower::new(p);
        let err = tower
            .push_r(ReOptions {
                max_parent_labels: 2,
                ..ReOptions::default()
            })
            .unwrap_err();
        assert!(matches!(err, ReError::UniverseTooLarge { .. }));
    }

    #[test]
    fn g_rows_respect_inputs() {
        // An input that forces a subset of outputs restricts the derived
        // universe's g rows accordingly.
        let p = LclProblem::parse(
            "max-degree: 2\ninputs: free forced\noutputs: A B\nnodes:\nA* B*\nedges:\nA B\nA A\nB B\ng:\nfree -> A B\nforced -> B\n",
        )
        .unwrap();
        let mut tower = ReTower::new(p);
        tower
            .push_r(ReOptions {
                restrict: false,
                ..ReOptions::default()
            })
            .unwrap();
        let level = tower.level(1);
        // The label {A, B} is allowed under input `free` but not `forced`.
        let ab = tower.lookup_label(1, &[0, 1]).expect("label exists");
        assert!(level.input_allows(InLabel(0), ab));
        assert!(!level.input_allows(InLabel(1), ab));
        // {B} is allowed under both.
        let b = tower.lookup_label(1, &[1]).expect("label exists");
        assert!(level.input_allows(InLabel(0), b));
        assert!(level.input_allows(InLabel(1), b));
    }

    #[test]
    fn generous_budget_matches_the_plain_push() {
        let mut plain = ReTower::new(three_coloring());
        plain.push_f(ReOptions::default()).unwrap();
        let mut budgeted = ReTower::new(three_coloring());
        let budget = lcl_faults::Budget::unlimited().with_max_labels(1 << 20);
        let token = budget.token();
        budgeted
            .push_f_budgeted(ReOptions::default(), &budget, &token)
            .unwrap();
        assert_eq!(plain.level_count(), budgeted.level_count());
        for level in 0..plain.level_count() {
            assert_eq!(plain.alphabet_size(level), budgeted.alphabet_size(level));
        }
    }

    #[test]
    fn tight_label_budget_breaches_and_keeps_prior_levels() {
        let mut tower = ReTower::new(three_coloring());
        let budget = lcl_faults::Budget::unlimited().with_max_labels(3);
        let token = budget.token();
        let err = tower
            .push_r_budgeted(ReOptions::default(), &budget, &token)
            .unwrap_err();
        let ReError::Budget(breach) = err else {
            panic!("expected a budget breach, got {err}");
        };
        assert!(matches!(breach.breach, lcl_faults::Breach::Labels(3, _)));
        assert_eq!(breach.stage, "re-tower/level-1");
        assert_eq!(breach.partial, 0);
        assert_eq!(tower.level_count(), 1, "failed step leaves only the base");

        // A roomier cap lets R through; R̄ then breaches but the R level
        // stays — the partial tower is usable.
        let mut tower = ReTower::new(three_coloring());
        let budget = lcl_faults::Budget::unlimited().with_max_labels(7);
        let token = budget.token();
        tower
            .push_r_budgeted(ReOptions::default(), &budget, &token)
            .unwrap();
        assert_eq!(tower.level_count(), 2);
        let err = tower
            .push_rbar_budgeted(ReOptions::default(), &budget, &token)
            .unwrap_err();
        let ReError::Budget(breach) = err else {
            panic!("expected a budget breach, got {err}");
        };
        assert_eq!(breach.partial, 1, "one completed derived level survives");
        assert_eq!(tower.level_count(), 2, "R level kept after R̄ breach");
        assert!(tower.alphabet_size(1) > 0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut tower = ReTower::new(three_coloring());
        tower.push_f(ReOptions::default()).unwrap();
        let snap = tower.snapshot();
        let back = TowerSnapshot::parse(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        let resumed = ReTower::resume_from(&back).unwrap();
        assert_eq!(resumed.level_count(), tower.level_count());
        for level in 0..tower.level_count() {
            assert_eq!(resumed.alphabet_size(level), tower.alphabet_size(level));
            if level > 0 {
                assert_eq!(resumed.layer_kind(level), tower.layer_kind(level));
            }
        }
        assert_eq!(resumed.fingerprint(), tower.fingerprint());
        // Spans (and hence stats) survive the round trip; wall clocks
        // are stored at microsecond granularity.
        let granular: Vec<LevelStats> = tower
            .stats()
            .into_iter()
            .map(|s| LevelStats {
                wall: Duration::from_micros(s.wall.as_micros() as u64),
                ..s
            })
            .collect();
        assert_eq!(resumed.stats(), granular);
        // The memo cache starts cold but that is invisible structurally.
        assert_eq!(resumed.node_cache_counters(), (0, 0));
    }

    #[test]
    fn resume_rejects_inconsistent_snapshots() {
        let mut tower = ReTower::new(three_coloring());
        tower.push_r(ReOptions::default()).unwrap();
        let snap = tower.snapshot();

        let mut bad = snap.clone();
        bad.layers[0].members[0] = vec![99];
        assert!(matches!(
            ReTower::resume_from(&bad),
            Err(SnapshotError::Invalid(_))
        ));

        let mut bad = snap.clone();
        bad.tables.clear();
        assert!(matches!(
            ReTower::resume_from(&bad),
            Err(SnapshotError::Invalid(_))
        ));

        let mut bad = snap.clone();
        bad.spans[0]
            .counters
            .push(("no-such-counter".to_string(), 1));
        assert!(matches!(
            ReTower::resume_from(&bad),
            Err(SnapshotError::UnknownCounter(_))
        ));

        let mut bad = snap;
        bad.problem = "not a problem".to_string();
        assert!(matches!(
            ReTower::resume_from(&bad),
            Err(SnapshotError::Problem(_))
        ));
    }

    #[test]
    fn budget_interrupted_resume_matches_uninterrupted_fingerprint() {
        for threads in [1usize, 2, 8] {
            let opts = ReOptions {
                parallel: threads > 1,
                threads,
                ..ReOptions::default()
            };

            let mut plain = ReTower::new(sinkless_orientation());
            plain.push_f(opts).unwrap();
            plain.push_f(opts).unwrap();

            // Interrupted build: the round cap stops the tower after two
            // derived levels; we checkpoint through JSON, resume, and
            // finish under a roomier budget.
            let mut interrupted = ReTower::new(sinkless_orientation());
            let tight = lcl_faults::Budget::unlimited().with_max_rounds(2);
            let token = tight.token();
            interrupted.push_f_budgeted(opts, &tight, &token).unwrap();
            let err = interrupted
                .push_f_budgeted(opts, &tight, &token)
                .unwrap_err();
            assert!(matches!(err, ReError::Budget(_)));
            let wire = interrupted.snapshot().to_json();
            let mut resumed = ReTower::resume_from(&TowerSnapshot::parse(&wire).unwrap()).unwrap();
            let roomy = tight.escalate(2);
            let token = roomy.token();
            resumed.push_f_budgeted(opts, &roomy, &token).unwrap();

            assert_eq!(resumed.level_count(), plain.level_count());
            assert_eq!(
                resumed.fingerprint(),
                plain.fingerprint(),
                "resume must be bit-identical at {threads} threads"
            );
        }
    }

    #[test]
    fn cancelled_token_stops_a_budgeted_push() {
        let mut tower = ReTower::new(three_coloring());
        let budget = lcl_faults::Budget::unlimited();
        let token = budget.token();
        token.cancel();
        let err = tower
            .push_r_budgeted(ReOptions::default(), &budget, &token)
            .unwrap_err();
        assert!(matches!(
            err,
            ReError::Budget(lcl_faults::BudgetExceeded {
                breach: lcl_faults::Breach::Cancelled,
                ..
            })
        ));
        assert_eq!(tower.level_count(), 1);
    }

    #[test]
    fn round_cap_limits_tower_height() {
        let mut tower = ReTower::new(sinkless_orientation());
        let budget = lcl_faults::Budget::unlimited().with_max_rounds(2);
        let token = budget.token();
        tower
            .push_f_budgeted(ReOptions::default(), &budget, &token)
            .unwrap();
        assert_eq!(tower.level_count(), 3);
        let err = tower
            .push_r_budgeted(ReOptions::default(), &budget, &token)
            .unwrap_err();
        let ReError::Budget(breach) = err else {
            panic!("expected a budget breach, got {err}");
        };
        assert!(matches!(breach.breach, lcl_faults::Breach::Rounds(2, 3)));
        assert_eq!(breach.partial, 2);
        assert_eq!(tower.level_count(), 3);
    }
}
