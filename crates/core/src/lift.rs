//! Lemma 3.9, executable: a 0-round algorithm for `f^k(Π)` lifts to a
//! `k`-round LOCAL algorithm for `Π`.
//!
//! Each lift step undoes one application of `f = R̄ ∘ R` and costs one
//! communication round:
//!
//! 1. **Edge step** (`R̄(R(Π)) → R(Π)`, needs the neighbor's label): for
//!    every edge `e = {v, w}`, both endpoints deterministically pick the
//!    lexicographically smallest pair
//!    `(L_{(v,e)}, L_{(w,e)}) ∈ A_{(v,e)} × A_{(w,e)}` that is an allowed
//!    `R(Π)` edge configuration — it exists because `{A_v, A_w}` is an
//!    allowed `R̄(R(Π))` edge configuration (an `∃` constraint).
//!    Identifier order orients the pair so both endpoints agree.
//! 2. **Node step** (`R(Π) → Π`, local): each node picks, from the sets
//!    `L_{(v,e)}` on its ports, a selection that is an allowed `Π` node
//!    configuration — it exists because `{L_{(v,e')}}` is an allowed
//!    `R(Π)` node configuration (an `∃` constraint).
//!
//! The implementation is a [`SyncAlgorithm`], so the executor's round
//! counter certifies that exactly `k` rounds are used.

use lcl::{InLabel, OutLabel, Problem};
use lcl_local::{NodeInit, SyncAlgorithm};

use crate::tower::ReTower;
use crate::zero_round::ZeroRoundAlgorithm;

/// The lifted constant-round algorithm produced by the Theorem 3.10/3.11
/// pipeline: `A_det` for `f^k(Π)` plus `k` rounds of Lemma 3.9 decoding.
#[derive(Debug)]
pub struct LiftedAlgorithm<'t> {
    tower: &'t ReTower,
    adet: ZeroRoundAlgorithm,
    steps: usize,
}

/// Per-node state of the lifted algorithm.
#[derive(Clone, Debug)]
pub struct LiftState {
    id: u64,
    inputs: Vec<InLabel>,
    /// Current labels per port, at tower level `level`.
    labels: Vec<u32>,
    /// The tower level the labels currently live at (`2 * remaining`).
    level: usize,
}

impl<'t> LiftedAlgorithm<'t> {
    /// Assembles the lifted algorithm.
    ///
    /// # Panics
    ///
    /// Panics if the tower does not have (at least) `2 * steps` derived
    /// levels.
    pub fn new(tower: &'t ReTower, adet: ZeroRoundAlgorithm, steps: usize) -> Self {
        assert!(
            tower.level_count() > 2 * steps,
            "tower must contain f^steps(Π)"
        );
        Self { tower, adet, steps }
    }

    /// The number of communication rounds the algorithm uses.
    pub fn rounds(&self) -> u32 {
        self.steps as u32
    }

    /// The `A_det` table driving level `2·steps`.
    pub fn adet(&self) -> &ZeroRoundAlgorithm {
        &self.adet
    }

    /// Edge step: given both endpoint labels at an `R̄` level, returns this
    /// endpoint's decoded `R`-level label.
    fn edge_decode(&self, level: usize, mine: u32, theirs: u32, i_am_first: bool) -> u32 {
        let my_members = self.tower.label_members(level, OutLabel(mine));
        let their_members = self.tower.label_members(level, OutLabel(theirs));
        let r_level = self.tower.level(level - 1);
        // Both endpoints compute the lexicographically smallest pair
        // (first, second) with the *first* endpoint determined by id order.
        let (first_set, second_set) = if i_am_first {
            (my_members, their_members)
        } else {
            (their_members, my_members)
        };
        let (x, y) = first_set
            .iter()
            .find_map(|&x| {
                second_set
                    .iter()
                    .find(|&&y| r_level.edge_allows(OutLabel(x), OutLabel(y)))
                    .map(|&y| (x, y))
            })
            .expect(
                "why: {A_v, A_w} is an allowed R̄(R(Π)) edge configuration, so Lemma 3.9 \
                 guarantees an allowed R-pair exists in A_v × A_w",
            );
        if i_am_first {
            x
        } else {
            y
        }
    }

    /// Node step: given the node's `R`-level labels per port, selects
    /// `Π`-level labels per port forming an allowed node configuration.
    fn node_decode(&self, level: usize, r_labels: &[u32], inputs: &[InLabel]) -> Vec<u32> {
        let below = self.tower.level(level - 2);
        let sets: Vec<&[u32]> = r_labels
            .iter()
            .map(|&l| self.tower.label_members(level - 1, OutLabel(l)))
            .collect();
        let mut chosen: Vec<u32> = Vec::with_capacity(sets.len());
        let found = select(&below, &sets, inputs, &mut chosen);
        assert!(
            found,
            "why: the port sets form an allowed R(Π) node configuration at level {level}, so \
             Lemma 3.9 guarantees a Π-completion"
        );
        chosen
    }
}

/// Lexicographically smallest selection (one label per set) that is an
/// allowed node configuration and satisfies `g` per position.
fn select(
    below: &(impl Problem + ?Sized),
    sets: &[&[u32]],
    inputs: &[InLabel],
    chosen: &mut Vec<u32>,
) -> bool {
    if chosen.len() == sets.len() {
        let labels: Vec<OutLabel> = chosen.iter().map(|&l| OutLabel(l)).collect();
        return below.node_allows(&labels);
    }
    let pos = chosen.len();
    for &candidate in sets[pos] {
        if !below.input_allows(inputs[pos], OutLabel(candidate)) {
            continue;
        }
        chosen.push(candidate);
        if select(below, sets, inputs, chosen) {
            return true;
        }
        chosen.pop();
    }
    false
}

impl SyncAlgorithm for LiftedAlgorithm<'_> {
    type State = LiftState;
    /// `(identifier, current top-level label on this edge)`.
    type Msg = (u64, u32);

    fn init(&self, init: &NodeInit) -> LiftState {
        let labels = self
            .adet
            .outputs_for(&init.inputs)
            .into_iter()
            .map(|l| l.0)
            .collect();
        LiftState {
            id: init.id,
            inputs: init.inputs.clone(),
            labels,
            level: 2 * self.steps,
        }
    }

    fn send(&self, state: &LiftState, _round: u32) -> Vec<(u64, u32)> {
        state.labels.iter().map(|&l| (state.id, l)).collect()
    }

    fn receive(&self, state: &mut LiftState, inbox: &[(u64, u32)], _round: u32) {
        if state.level == 0 {
            return;
        }
        let level = state.level;
        // Edge step per port.
        let r_labels: Vec<u32> = state
            .labels
            .iter()
            .zip(inbox)
            .map(|(&mine, &(their_id, theirs))| {
                // Orientation must be symmetric and deterministic: order
                // endpoints by identifier (unique), so both sides agree.
                let first = state.id < their_id;
                self.edge_decode(level, mine, theirs, first)
            })
            .collect();
        // Node step.
        state.labels = self.node_decode(level, &r_labels, &state.inputs);
        state.level -= 2;
    }

    fn is_done(&self, state: &LiftState) -> bool {
        state.level == 0
    }

    fn output(&self, state: &LiftState) -> Vec<OutLabel> {
        assert_eq!(state.level, 0, "output requested before decoding finished");
        state.labels.iter().map(|&l| OutLabel(l)).collect()
    }

    fn name(&self) -> &str {
        "lemma-3.9-lift"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tower::ReOptions;
    use crate::zero_round::{decide_zero_round, ZeroRoundOptions, ZeroRoundResult};
    use lcl::LclProblem;
    use lcl_graph::gen;
    use lcl_local::run_sync;

    /// Edge constraint {X, Y} only (every edge bi-chromatic); node
    /// constraints free. Not 0-round solvable, but 1-round solvable — the
    /// canonical k = 1 pipeline example.
    fn anti_matching() -> LclProblem {
        LclProblem::parse("name: anti\nmax-degree: 3\nnodes:\nX* Y*\nedges:\nX Y\n").unwrap()
    }

    #[test]
    fn one_step_lift_solves_anti_matching() {
        let problem = anti_matching();
        let mut tower = ReTower::new(problem.clone());
        tower.push_f(ReOptions::default()).unwrap();
        let top = tower.level(2);
        let result = decide_zero_round(&top, ZeroRoundOptions::default());
        let ZeroRoundResult::Solvable(adet) = result else {
            panic!("f(anti-matching) must be 0-round solvable, got {result:?}");
        };
        let lifted = LiftedAlgorithm::new(&tower, adet, 1);
        assert_eq!(lifted.rounds(), 1);

        for (name, g) in [
            ("path", gen::path(7)),
            ("tree", gen::random_tree(24, 3, 3)),
            ("star", gen::star(3)),
        ] {
            let input = lcl::uniform_input(&g);
            let ids: Vec<u64> = (0..g.node_count() as u64).map(|i| i * 7 + 3).collect();
            let run = run_sync(&lifted, &g, &input, &ids, None, 10);
            assert_eq!(run.rounds, 1, "{name}");
            let violations = lcl::verify(&problem, &g, &input, &run.output);
            assert!(violations.is_empty(), "{name}: {violations:?}");
        }
    }

    #[test]
    fn zero_step_lift_is_adet() {
        let p = LclProblem::parse("max-degree: 3\nnodes:\nX*\nedges:\nX X\n").unwrap();
        let tower = ReTower::new(p.clone());
        let ZeroRoundResult::Solvable(adet) =
            decide_zero_round(&tower.level(0), ZeroRoundOptions::default())
        else {
            panic!("trivial problem is 0-round solvable");
        };
        let lifted = LiftedAlgorithm::new(&tower, adet, 0);
        let g = gen::random_tree(10, 3, 1);
        let input = lcl::uniform_input(&g);
        let ids: Vec<u64> = (0..10).collect();
        let run = run_sync(&lifted, &g, &input, &ids, None, 5);
        assert_eq!(run.rounds, 0);
        assert!(lcl::verify(&p, &g, &input, &run.output).is_empty());
    }
}
