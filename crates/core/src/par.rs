//! A dependency-free parallel fan-out on [`std::thread::scope`].
//!
//! The build environment is offline, so rayon is not available; this is
//! the minimal work-stealing map the round-elimination engine needs:
//! deterministic output order, dynamic load balancing via an atomic chunk
//! counter, and a sequential fast path when only one thread is requested
//! (or only one item exists).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use lcl_faults::{BudgetExceeded, CancelToken};

/// Chunk size claimed per atomic fetch; small enough to balance skewed
/// workloads, large enough to keep counter traffic negligible.
const CHUNK: usize = 8;

/// Resolves a thread-count request: `0` means "all available cores".
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Maps `f` over `0..n` on up to `threads` scoped threads, returning the
/// results in index order. Falls back to a plain sequential loop when
/// `threads <= 1` or `n` is tiny, so callers need no separate code path.
pub fn par_map_indexed<U, F>(n: usize, threads: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let threads = threads.min(n.div_ceil(CHUNK)).max(1);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let chunks: Mutex<Vec<(usize, Vec<U>)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let start = next.fetch_add(CHUNK, Ordering::Relaxed);
                if start >= n {
                    return;
                }
                let end = (start + CHUNK).min(n);
                let block: Vec<U> = (start..end).map(&f).collect();
                chunks
                    .lock()
                    .expect("no panics while locked")
                    .push((start, block));
            });
        }
    });

    let mut chunks = chunks.into_inner().expect("workers joined");
    chunks.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(n);
    for (_, block) in chunks {
        out.extend(block);
    }
    out
}

/// Maps `f` over a slice on up to `threads` scoped threads, preserving
/// order.
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items.len(), threads, |i| f(&items[i]))
}

/// [`par_map_indexed`] with cooperative cancellation: workers observe
/// `token` between chunk claims and stop early once it trips, and the
/// call returns a typed [`BudgetExceeded`] (with the caller's `stage`
/// and `partial` progress) instead of the — then incomplete — results.
///
/// When the token never trips the output is bit-identical to
/// [`par_map_indexed`] at any thread count.
///
/// # Errors
///
/// [`BudgetExceeded`] with [`Breach::Cancelled`](lcl_faults::Breach) if
/// the token tripped (deadline or external cancel) before completion.
pub fn par_map_indexed_cancellable<U, F>(
    n: usize,
    threads: usize,
    token: &CancelToken,
    stage: &str,
    partial: u64,
    f: F,
) -> Result<Vec<U>, BudgetExceeded>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let threads = threads.min(n.div_ceil(CHUNK)).max(1);
    if threads <= 1 {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            if i % CHUNK == 0 {
                token.checkpoint(stage, partial)?;
            }
            out.push(f(i));
        }
        return Ok(out);
    }

    let next = AtomicUsize::new(0);
    let chunks: Mutex<Vec<(usize, Vec<U>)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if token.is_cancelled() {
                    return;
                }
                let start = next.fetch_add(CHUNK, Ordering::Relaxed);
                if start >= n {
                    return;
                }
                let end = (start + CHUNK).min(n);
                let block: Vec<U> = (start..end).map(&f).collect();
                chunks
                    .lock()
                    .expect("no panics while locked")
                    .push((start, block));
            });
        }
    });
    token.checkpoint(stage, partial)?;

    let mut chunks = chunks.into_inner().expect("workers joined");
    chunks.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(n);
    for (_, block) in chunks {
        out.extend(block);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 4, 7] {
            let out = par_map_indexed(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_item_is_visited_exactly_once() {
        let visits = AtomicU64::new(0);
        let out = par_map_indexed(1000, 4, |i| {
            visits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(visits.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn slice_map_matches_sequential() {
        let items: Vec<u32> = (0..37).collect();
        assert_eq!(
            par_map(&items, 3, |x| x + 1),
            items.iter().map(|x| x + 1).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_and_singleton_inputs_work() {
        assert_eq!(par_map_indexed(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, 8, |i| i + 5), vec![5]);
    }

    #[test]
    fn zero_thread_request_resolves_to_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn cancellable_map_matches_plain_map_when_untripped() {
        let token = CancelToken::new();
        for threads in [1, 2, 4] {
            let out = par_map_indexed_cancellable(100, threads, &token, "test", 0, |i| i * 3)
                .expect("token never trips");
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn tripped_token_yields_a_typed_breach() {
        let token = CancelToken::new();
        token.cancel();
        for threads in [1, 4] {
            let err =
                par_map_indexed_cancellable(100, threads, &token, "stage-x", 5, |i| i).unwrap_err();
            assert_eq!(err.stage, "stage-x");
            assert_eq!(err.partial, 5);
            assert_eq!(err.breach, lcl_faults::Breach::Cancelled);
        }
    }

    #[test]
    fn mid_run_cancel_stops_claiming_chunks() {
        let token = CancelToken::new();
        let visits = AtomicU64::new(0);
        let result = par_map_indexed_cancellable(10_000, 4, &token, "stage", 0, |i| {
            visits.fetch_add(1, Ordering::Relaxed);
            if i == 0 {
                token.cancel();
            }
            i
        });
        assert!(result.is_err());
        assert!(
            visits.load(Ordering::Relaxed) < 10_000,
            "workers stopped early"
        );
    }
}
