//! A dependency-free parallel fan-out on [`std::thread::scope`].
//!
//! The build environment is offline, so rayon is not available; this is
//! the minimal work-stealing map the round-elimination engine needs:
//! deterministic output order, dynamic load balancing via an atomic chunk
//! counter, and a sequential fast path when only one thread is requested
//! (or only one item exists).
//!
//! # Why this shape (issue 6)
//!
//! The original fan-out claimed fixed chunks of 8 and pushed each
//! completed block into a `Mutex<Vec<(start, block)>>`, then sorted and
//! reassembled — for the tower's many small fan-outs the lock traffic,
//! the per-block allocations, and the final reshuffle routinely cost
//! more than the work being parallelized (`par_speedup` 0.33–1.07 across
//! the catalog). Now:
//!
//! * **Chunks adapt to the input**: `≈ n / (threads · 4)` per claim —
//!   large enough that counter traffic is negligible, small enough that
//!   a skewed tail still balances (four claims per thread on average).
//! * **Results are written in place**: the output vector is preallocated
//!   and each worker writes its claimed indices directly into their final
//!   slots — no mutex, no sort, no reassembly copy.
//! * **Workers observe cancellation per item**, not per chunk claim, so
//!   a tripped deadline stops a long block mid-flight
//!   ([`par_map_indexed_cancellable`]).
//! * **Row slabs fill in place**: [`par_fill_rows`] writes disjoint
//!   fixed-width rows of one contiguous word slab (the
//!   [`BitArena`](crate::arena::BitArena) layout), falling back to a
//!   plain loop when the slab is too small for the fan-out to pay.

use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

use lcl_faults::{BudgetExceeded, CancelToken};

/// Upper bound on an adaptive chunk, keeping the tail balanced even for
/// huge inputs.
const MAX_CHUNK: usize = 1024;

/// Average chunk claims per worker the adaptive size aims for.
const CLAIMS_PER_THREAD: usize = 4;

/// Minimum items per worker before a fan-out is worth a thread spawn.
const MIN_ITEMS_PER_THREAD: usize = 8;

/// [`par_fill_rows`] stays sequential below this slab size (in words) —
/// writing a slab this small costs less than spawning the workers.
const PAR_FILL_MIN_WORDS: usize = 1 << 14;

/// [`par_fill_rows`] stays sequential below this row count regardless of
/// slab size: too few rows cannot amortize claim traffic.
const PAR_FILL_MIN_ROWS: usize = 64;

/// Resolves a thread-count request: `0` means "all available cores".
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Effective worker count and adaptive chunk size for `n` items.
fn plan(n: usize, threads: usize) -> (usize, usize) {
    let threads = threads.min(n.div_ceil(MIN_ITEMS_PER_THREAD)).max(1);
    let chunk = (n / (threads * CLAIMS_PER_THREAD)).clamp(1, MAX_CHUNK);
    (threads, chunk)
}

/// A raw pointer to preallocated output slots, shareable across scoped
/// workers. Writes are safe because the atomic chunk counter hands every
/// index to exactly one worker.
struct SharedSlots<U>(*mut MaybeUninit<U>);

// SAFETY: workers write disjoint indices (see `SharedSlots`); `U: Send`
// lets the written values cross back to the caller at join.
unsafe impl<U: Send> Sync for SharedSlots<U> {}

impl<U> SharedSlots<U> {
    /// Writes `value` into slot `i`.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds and claimed by exactly one worker.
    #[inline]
    unsafe fn write(&self, i: usize, value: U) {
        unsafe { (*self.0.add(i)).write(value) };
    }
}

/// Converts a fully initialized `Vec<MaybeUninit<U>>` into `Vec<U>`.
///
/// # Safety
///
/// Every element must have been initialized.
unsafe fn assume_init_vec<U>(mut v: Vec<MaybeUninit<U>>) -> Vec<U> {
    let (ptr, len, cap) = (v.as_mut_ptr(), v.len(), v.capacity());
    std::mem::forget(v);
    // SAFETY: MaybeUninit<U> has U's layout and the caller guarantees
    // initialization; ptr/len/cap come from the forgotten Vec.
    unsafe { Vec::from_raw_parts(ptr.cast::<U>(), len, cap) }
}

/// Maps `f` over `0..n` on up to `threads` scoped threads, returning the
/// results in index order. Falls back to a plain sequential loop when
/// `threads <= 1` or `n` is tiny, so callers need no separate code path.
pub fn par_map_indexed<U, F>(n: usize, threads: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let (threads, chunk) = plan(n, threads);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }

    let mut out: Vec<MaybeUninit<U>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit slots need no initialization.
    unsafe { out.set_len(n) };
    let slots = SharedSlots(out.as_mut_ptr());
    let slots = &slots;
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    return;
                }
                let end = (start + chunk).min(n);
                for i in start..end {
                    // SAFETY: the atomic counter hands [start, end) to
                    // this worker exclusively and i < n.
                    unsafe { slots.write(i, f(i)) };
                }
            });
        }
    });
    // SAFETY: the claims partition 0..n and the scope joined every
    // worker, so all n slots are initialized. (If `f` panicked the scope
    // already propagated the panic; the MaybeUninit vector drops without
    // touching its slots, leaking at most the written elements.)
    unsafe { assume_init_vec(out) }
}

/// Maps `f` over a slice on up to `threads` scoped threads, preserving
/// order.
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items.len(), threads, |i| f(&items[i]))
}

/// [`par_map_indexed`] with cooperative cancellation: workers observe
/// `token` before *every item* — not just between chunk claims — so a
/// long chunk cannot run arbitrarily far past a deadline breach. The
/// call returns a typed [`BudgetExceeded`] (with the caller's `stage`
/// and `partial` progress) instead of the — then incomplete — results.
///
/// When the token never trips the output is bit-identical to
/// [`par_map_indexed`] at any thread count.
///
/// # Errors
///
/// [`BudgetExceeded`] with [`Breach::Cancelled`](lcl_faults::Breach) if
/// the token tripped (deadline or external cancel) before completion.
pub fn par_map_indexed_cancellable<U, F>(
    n: usize,
    threads: usize,
    token: &CancelToken,
    stage: &str,
    partial: u64,
    f: F,
) -> Result<Vec<U>, BudgetExceeded>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let (threads, chunk) = plan(n, threads);
    if threads <= 1 {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            token.checkpoint(stage, partial)?;
            out.push(f(i));
        }
        return Ok(out);
    }

    let next = AtomicUsize::new(0);
    // Per-thread output buffers: each worker keeps its completed blocks
    // locally and hands them back through its join handle, so a cancelled
    // run drops every produced value without assembling a result.
    let blocks: Vec<Vec<(usize, Vec<U>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, Vec<U>)> = Vec::new();
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            return local;
                        }
                        let end = (start + chunk).min(n);
                        let mut block = Vec::with_capacity(end - start);
                        for i in start..end {
                            if token.is_cancelled() {
                                return local; // drop the partial block
                            }
                            block.push(f(i));
                        }
                        local.push((start, block));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .expect("why: a worker panic would already have aborted the scope")
            })
            .collect()
    });
    token.checkpoint(stage, partial)?;

    let mut blocks: Vec<(usize, Vec<U>)> = blocks.into_iter().flatten().collect();
    blocks.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(n);
    for (_, block) in blocks {
        out.extend(block);
    }
    Ok(out)
}

/// A raw pointer to a word slab, shareable across scoped workers filling
/// disjoint rows.
struct SharedWords(*mut u64);

// SAFETY: workers write disjoint row ranges handed out by the atomic
// chunk counter.
unsafe impl Sync for SharedWords {}

/// Fills the fixed-`width` rows of a preallocated word slab in place:
/// `f(i, row)` populates row `i` (the slab arrives zeroed from the
/// caller, typically a [`BitArena`](crate::arena::BitArena) slab).
///
/// Small slabs fill sequentially — below `PAR_FILL_MIN_WORDS` words or
/// `PAR_FILL_MIN_ROWS` rows the spawn cost exceeds the fill, which is
/// precisely the regime where the old per-row `Vec<BitSet>` fan-out
/// *lost* to sequential. The parallel path writes rows directly into
/// their final slab positions; output is bit-identical at any thread
/// count because row `i` is a pure function of `i`.
///
/// # Panics
///
/// Panics if `words.len()` is not a multiple of `width`.
pub fn par_fill_rows<F>(words: &mut [u64], width: usize, threads: usize, f: F)
where
    F: Fn(usize, &mut [u64]) + Sync,
{
    if width == 0 || words.is_empty() {
        return;
    }
    assert_eq!(
        words.len() % width,
        0,
        "slab of {} words is not whole {width}-word rows",
        words.len()
    );
    let rows = words.len() / width;
    let threads = threads.min(rows.div_ceil(PAR_FILL_MIN_ROWS)).max(1);
    if threads <= 1 || words.len() < PAR_FILL_MIN_WORDS {
        for (i, row) in words.chunks_mut(width).enumerate() {
            f(i, row);
        }
        return;
    }

    let chunk = (rows / (threads * CLAIMS_PER_THREAD)).clamp(1, MAX_CHUNK);
    let next = AtomicUsize::new(0);
    let slab = SharedWords(words.as_mut_ptr());
    let slab = &slab;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= rows {
                    return;
                }
                let end = (start + chunk).min(rows);
                for i in start..end {
                    // SAFETY: row i belongs exclusively to this worker
                    // (disjoint chunk claims) and lies inside the slab.
                    let row =
                        unsafe { std::slice::from_raw_parts_mut(slab.0.add(i * width), width) };
                    f(i, row);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 4, 7] {
            let out = par_map_indexed(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_item_is_visited_exactly_once() {
        let visits = AtomicU64::new(0);
        let out = par_map_indexed(1000, 4, |i| {
            visits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(visits.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn large_inputs_map_correctly_with_adaptive_chunks() {
        // Crosses the MAX_CHUNK clamp: 100k items over 2 threads asks
        // for 12.5k-item chunks, clamped to 1024.
        let out = par_map_indexed(100_000, 2, |i| i + 1);
        assert_eq!(out.len(), 100_000);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i + 1));
    }

    #[test]
    fn non_copy_results_survive_the_preallocated_path() {
        let out = par_map_indexed(257, 4, |i| vec![i; 3]);
        assert_eq!(out.len(), 257);
        assert!(out.iter().enumerate().all(|(i, v)| *v == vec![i; 3]));
    }

    #[test]
    fn slice_map_matches_sequential() {
        let items: Vec<u32> = (0..37).collect();
        assert_eq!(
            par_map(&items, 3, |x| x + 1),
            items.iter().map(|x| x + 1).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_and_singleton_inputs_work() {
        assert_eq!(par_map_indexed(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, 8, |i| i + 5), vec![5]);
    }

    #[test]
    fn zero_thread_request_resolves_to_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn cancellable_map_matches_plain_map_when_untripped() {
        let token = CancelToken::new();
        for threads in [1, 2, 4] {
            let out = par_map_indexed_cancellable(100, threads, &token, "test", 0, |i| i * 3)
                .expect("token never trips");
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn tripped_token_yields_a_typed_breach() {
        let token = CancelToken::new();
        token.cancel();
        for threads in [1, 4] {
            let err =
                par_map_indexed_cancellable(100, threads, &token, "stage-x", 5, |i| i).unwrap_err();
            assert_eq!(err.stage, "stage-x");
            assert_eq!(err.partial, 5);
            assert_eq!(err.breach, lcl_faults::Breach::Cancelled);
        }
    }

    #[test]
    fn mid_run_cancel_stops_claiming_chunks() {
        let token = CancelToken::new();
        let visits = AtomicU64::new(0);
        let result = par_map_indexed_cancellable(10_000, 4, &token, "stage", 0, |i| {
            visits.fetch_add(1, Ordering::Relaxed);
            if i == 0 {
                token.cancel();
            }
            i
        });
        assert!(result.is_err());
        assert!(
            visits.load(Ordering::Relaxed) < 10_000,
            "workers stopped early"
        );
    }

    /// Regression (issue 6): workers used to observe the token only
    /// between chunk claims, so a long chunk ran arbitrarily far past a
    /// breach. With per-item checks, each worker performs at most one
    /// in-flight item after the trip.
    #[test]
    fn post_cancel_visits_are_bounded_by_the_worker_count() {
        let threads = 4;
        let post_cancel = AtomicU64::new(0);
        let token = CancelToken::new();
        let result = par_map_indexed_cancellable(100_000, threads, &token, "stage", 0, |i| {
            if token.is_cancelled() {
                post_cancel.fetch_add(1, Ordering::Relaxed);
            }
            if i == 0 {
                token.cancel();
            }
        });
        assert!(result.is_err());
        // Each worker may have one item mid-flight whose pre-item check
        // passed before the cancel landed; everything beyond that is the
        // old between-claims laxity. (The old code admitted up to a full
        // chunk — here ≥ 1000 items — per worker.)
        assert!(
            post_cancel.load(Ordering::Relaxed) <= threads as u64,
            "at most one post-cancel item per worker, saw {}",
            post_cancel.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn sequential_cancellable_path_stops_immediately() {
        let token = CancelToken::new();
        let visits = AtomicU64::new(0);
        let result = par_map_indexed_cancellable(1000, 1, &token, "stage", 0, |i| {
            visits.fetch_add(1, Ordering::Relaxed);
            if i == 2 {
                token.cancel();
            }
        });
        assert!(result.is_err());
        assert_eq!(
            visits.load(Ordering::Relaxed),
            3,
            "the item after the cancel must not run"
        );
    }

    #[test]
    fn fill_rows_matches_sequential_reference() {
        let width = 3;
        for rows in [0usize, 1, 7, 64, 6000] {
            for threads in [1usize, 2, 8] {
                let mut slab = vec![0u64; rows * width];
                par_fill_rows(&mut slab, width, threads, |i, row| {
                    for (k, w) in row.iter_mut().enumerate() {
                        *w = (i as u64) << 8 | k as u64;
                    }
                });
                for i in 0..rows {
                    for k in 0..width {
                        assert_eq!(slab[i * width + k], (i as u64) << 8 | k as u64);
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "whole")]
    fn fill_rows_rejects_ragged_slabs() {
        let mut slab = vec![0u64; 7];
        par_fill_rows(&mut slab, 3, 2, |_, _| {});
    }
}
