//! Lemma 3.3, executable: an algorithm for trees becomes an algorithm for
//! forests at the cost of a constant-factor radius increase.
//!
//! The construction, exactly as in the paper: every node `u` collects its
//! `(2T(n²) + 2)`-hop neighborhood and checks whether some node `v` of its
//! component `C_u` sees all of `C_u` within `T(n²) + 1` hops.
//!
//! * **Small component** ("such a `v` exists"): all of `C_u` is known to
//!   every member, so they agree on a canonical deterministic solution
//!   (here: the lexicographically smallest valid labeling by sorted
//!   identifiers) and output their part.
//! * **Large component**: run the tree algorithm with the announced node
//!   count `n²` — every `(T(n²)+1)`-hop view inside the component is then
//!   realizable in some `n²`-node tree, so the tree algorithm's guarantee
//!   applies locally.

use lcl::{HalfEdgeLabeling, InLabel, LclProblem, OutLabel, Problem};
use lcl_graph::{Graph, NodeId, PortView};
use lcl_local::{IdAssignment, LocalAlgorithm, View};

/// Which case of the Lemma 3.3 construction a node took.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Lemma33Case {
    /// The component fits in someone's `(T(n²)+1)`-ball: canonical local
    /// solve.
    SmallComponent,
    /// Component too large: delegated to the tree algorithm with `n²`.
    Delegated,
}

/// The result of running the Lemma 3.3 construction.
#[derive(Clone, Debug)]
pub struct Lemma33Run {
    /// The produced labeling.
    pub output: HalfEdgeLabeling<OutLabel>,
    /// Per node: which case applied.
    pub cases: Vec<Lemma33Case>,
    /// The radius collected (`2T(n²) + 2`).
    pub radius: u32,
}

/// Runs the Lemma 3.3 forest construction for `problem`, delegating large
/// components to `tree_algorithm`.
///
/// # Panics
///
/// Panics if a small component admits no solution at all (the lemma
/// presumes solvability: "the existence of `A` implies that a correct
/// global solution exists") or if the canonical search exceeds
/// `search_cap` candidate labelings.
pub fn run_lemma33(
    problem: &LclProblem,
    tree_algorithm: &(impl LocalAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
    search_cap: u64,
) -> Lemma33Run {
    let n = graph.node_count();
    let n_squared = n.saturating_mul(n);
    let t = tree_algorithm.radius(n_squared);
    let radius = 2 * t + 2;

    let mut cases = vec![Lemma33Case::Delegated; n];
    let output = HalfEdgeLabeling::from_node_fn(graph, |u| {
        let ball = graph.ball(u, radius);
        // Component fully visible (no Outside port anywhere)?
        let component_visible = ball
            .nodes
            .iter()
            .all(|b| b.ports.iter().all(|p| matches!(p, PortView::Inside { .. })));
        let small = component_visible && {
            // Some member's (t+1)-ball covers the component.
            let (sub, _) = ball.visible_subgraph();
            let node_ids: Vec<NodeId> = sub.nodes().collect();
            node_ids.into_iter().any(|v| sub.eccentricity(v) <= t + 1)
        };
        if small {
            cases[u.index()] = Lemma33Case::SmallComponent;
            canonical_component_output(problem, graph, input, ids, u, &ball, search_cap)
        } else {
            // Delegate: evaluate the tree algorithm on the t-ball with
            // announced n².
            let small_ball = graph.ball(u, t);
            let view_ids = small_ball
                .nodes
                .iter()
                .map(|b| ids.id(b.original))
                .collect();
            let inputs = small_ball
                .nodes
                .iter()
                .flat_map(|b| b.half_edges.iter().map(|&h| input.get(h)))
                .collect();
            let view = View {
                ball: &small_ball,
                n: n_squared,
                ids: view_ids,
                bits: Vec::new(),
                inputs,
            };
            tree_algorithm.label(&view)
        }
    });
    Lemma33Run {
        output,
        cases,
        radius,
    }
}

/// The canonical deterministic solution of a fully visible component:
/// order the component's half-edges by (owner id, port) and take the
/// lexicographically smallest valid labeling; return the center's part.
fn canonical_component_output(
    problem: &LclProblem,
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
    center: NodeId,
    ball: &lcl_graph::Ball,
    search_cap: u64,
) -> Vec<OutLabel> {
    // Component nodes sorted by identifier — every member computes the
    // same order, hence the same canonical solution.
    let mut members: Vec<NodeId> = ball.nodes.iter().map(|b| b.original).collect();
    members.sort_by_key(|&v| ids.id(v));
    // Half-edges in canonical order, with the inverse map so twin/owner
    // lookups during the search are O(1) instead of scans.
    let slots: Vec<lcl_graph::HalfEdgeId> = members
        .iter()
        .flat_map(|&v| graph.half_edges_of(v))
        .collect();
    let slot_of: std::collections::HashMap<lcl_graph::HalfEdgeId, usize> =
        slots.iter().enumerate().map(|(i, &h)| (h, i)).collect();
    let universe = problem
        .output_count()
        .expect("explicit problems have finite universes") as u32;

    let mut assignment: Vec<Option<OutLabel>> = vec![None; slots.len()];
    let mut work = 0u64;
    let solved = canonical_search(
        problem,
        graph,
        input,
        &slots,
        &slot_of,
        &mut assignment,
        0,
        universe,
        &mut work,
        search_cap,
    );
    assert!(
        solved,
        "why: Lemma 3.3 presumes {} is solvable on every component, yet this one admits no \
         valid labeling",
        problem.problem_name()
    );
    let solution: std::collections::HashMap<lcl_graph::HalfEdgeId, OutLabel> = slots
        .iter()
        .zip(&assignment)
        .map(|(&h, l)| (h, l.expect("complete")))
        .collect();
    graph.half_edges_of(center).map(|h| solution[&h]).collect()
}

#[allow(clippy::too_many_arguments)]
fn canonical_search(
    problem: &LclProblem,
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    slots: &[lcl_graph::HalfEdgeId],
    slot_of: &std::collections::HashMap<lcl_graph::HalfEdgeId, usize>,
    assignment: &mut Vec<Option<OutLabel>>,
    pos: usize,
    universe: u32,
    work: &mut u64,
    cap: u64,
) -> bool {
    if pos == slots.len() {
        return true;
    }
    let h = slots[pos];
    'candidate: for l in 0..universe {
        *work += 1;
        assert!(*work <= cap, "canonical component search exceeded its cap");
        let label = OutLabel(l);
        if !problem.input_allows(input.get(h), label) {
            continue;
        }
        assignment[pos] = Some(label);
        // Prune: edge constraint if the twin is already assigned; node
        // constraint if this completes a node.
        let twin = graph.twin(h);
        if let Some(&tpos) = slot_of.get(&twin) {
            if let Some(Some(tl)) = assignment.get(tpos).filter(|_| tpos < pos) {
                if !problem.edge_allows(label, *tl) {
                    assignment[pos] = None;
                    continue 'candidate;
                }
            }
        }
        let owner = graph.node_of(h);
        let owner_slots: Vec<usize> = graph.half_edges_of(owner).map(|oh| slot_of[&oh]).collect();
        if owner_slots.iter().all(|&s| s <= pos) {
            let around: Vec<OutLabel> = owner_slots
                .iter()
                .map(|&s| assignment[s].expect("assigned"))
                .collect();
            if !problem.node_allows(&around) {
                assignment[pos] = None;
                continue 'candidate;
            }
        }
        if canonical_search(
            problem,
            graph,
            input,
            slots,
            slot_of,
            assignment,
            pos + 1,
            universe,
            work,
            cap,
        ) {
            return true;
        }
        assignment[pos] = None;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::gen;
    use lcl_local::FnAlgorithm;

    fn anti_matching() -> LclProblem {
        LclProblem::parse("name: anti\nmax-degree: 3\nnodes:\nX* Y*\nedges:\nX Y\n").unwrap()
    }

    /// A 1-round "tree algorithm": orient each edge toward the larger id.
    fn orienter() -> impl LocalAlgorithm {
        FnAlgorithm::new(
            "orient",
            |_| 1,
            |view| {
                let me = view.ids[0];
                view.ball
                    .center()
                    .ports
                    .iter()
                    .map(|p| match *p {
                        PortView::Inside { node, .. } => {
                            OutLabel(u32::from(me < view.ids[node as usize]))
                        }
                        PortView::Outside => OutLabel(0),
                    })
                    .collect()
            },
        )
    }

    #[test]
    fn small_components_are_solved_canonically() {
        // Tiny components: every node takes the small-component case.
        let g = gen::random_forest(12, 6, 3, 3);
        let p = anti_matching();
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::random_polynomial(12, 3, 1);
        let run = run_lemma33(&p, &orienter(), &g, &input, &ids, 1 << 20);
        assert!(run.cases.iter().all(|&c| c == Lemma33Case::SmallComponent));
        assert!(lcl::verify(&p, &g, &input, &run.output).is_empty());
    }

    #[test]
    fn large_components_are_delegated() {
        // One long path: the component exceeds every (t+1)-ball.
        let g = gen::path(40);
        let p = anti_matching();
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::random_polynomial(40, 3, 2);
        let run = run_lemma33(&p, &orienter(), &g, &input, &ids, 1 << 20);
        assert!(run.cases.iter().all(|&c| c == Lemma33Case::Delegated));
        assert!(lcl::verify(&p, &g, &input, &run.output).is_empty());
        assert_eq!(run.radius, 4); // 2·T(n²) + 2 with T ≡ 1
    }

    #[test]
    fn mixed_forests_mix_cases() {
        // A forest with one big tree and several tiny ones.
        let mut b = lcl_graph::GraphBuilder::new(30);
        for i in 1..24 {
            b.add_edge(i - 1, i).unwrap(); // path of 24
        }
        b.add_edge(24, 25).unwrap(); // an edge
        b.add_edge(26, 27).unwrap(); // another edge
        b.add_edge(28, 29).unwrap();
        let g = b.build().unwrap();
        let p = anti_matching();
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::random_polynomial(30, 3, 5);
        let run = run_lemma33(&p, &orienter(), &g, &input, &ids, 1 << 20);
        assert!(run.cases[0] == Lemma33Case::Delegated);
        assert!(run.cases[25] == Lemma33Case::SmallComponent);
        assert!(lcl::verify(&p, &g, &input, &run.output).is_empty());
    }

    #[test]
    fn canonical_solutions_agree_within_components() {
        // Agreement is implied by verification succeeding (each node
        // outputs only its own part); this checks a 2-coloring where
        // coordination is essential.
        let two_col = LclProblem::parse("max-degree: 2\nnodes:\nA*\nB*\nedges:\nA B\n").unwrap();
        let g = gen::random_forest(10, 5, 2, 7);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::random_polynomial(10, 3, 9);
        // The delegate is never used (components are tiny).
        let run = run_lemma33(&two_col, &orienter(), &g, &input, &ids, 1 << 20);
        assert!(lcl::verify(&two_col, &g, &input, &run.output).is_empty());
    }
}
