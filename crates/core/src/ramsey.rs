//! The Ramsey-theoretic quantities of Theorem 4.1 and Proposition 5.4.
//!
//! Both proofs color the `p`-subsets of a large identifier space by the
//! behavior of the algorithm on them and invoke the hypergraph Ramsey
//! bound `log* R(p, m, c) = p + log* m + log* c + O(1)` to find a large
//! set of identifiers on which the algorithm is order-invariant. This
//! module provides:
//!
//! * [`log_star_ramsey_bound`] — the `log*`-scale upper bound used to
//!   check that `T(n) = o(log* n)` suffices (the inequality
//!   `log* n ≥ p + log* m + log* c + O(1)` of the proofs);
//! * [`ramsey_number_exact`] — brute-force exact Ramsey numbers for tiny
//!   parameters, used to validate the machinery's plumbing;
//! * [`volume_color_count`] — the count `c` of behavior colors from the
//!   Theorem 4.1 proof.

use lcl_graph::math::log_star;

/// The `log*`-scale Ramsey bound: an (over)estimate of
/// `log* R(p, m, c) ≈ p + log* m + log* c + O(1)`, with the `O(1)` set to
/// the constant `3` (any fixed constant works for the asymptotic
/// argument).
pub fn log_star_ramsey_bound(p: u64, m: u64, c: u64) -> u64 {
    p + u64::from(log_star(m)) + u64::from(log_star(c)) + 3
}

/// Whether an identifier space of size `ids` is large enough for the
/// Ramsey step, i.e. `log* ids ≥ log_star_ramsey_bound(p, m, c)`.
pub fn ramsey_step_applies(ids: u64, p: u64, m: u64, c: u64) -> bool {
    u64::from(log_star(ids)) >= log_star_ramsey_bound(p, m, c)
}

/// The number of behavior colors in the Theorem 4.1 proof:
/// `c ≤ (outputs)^(inputs)` where `inputs ≤ ((T+1) · Δ · |Σ_in|^Δ)^(T+1)`
/// transcripts and `outputs ≤ (T·Δ)^T · |Σ_out|^Δ` answers. Saturates.
pub fn volume_color_count(t: u64, delta: u64, sigma_in: u64, sigma_out: u64) -> u64 {
    let inputs = ((t + 1)
        .saturating_mul(delta)
        .saturating_mul(sigma_in.saturating_pow(delta.min(63) as u32)))
    .saturating_pow((t + 1).min(63) as u32);
    let outputs = (t.saturating_mul(delta))
        .max(1)
        .saturating_pow(t.min(63) as u32)
        .saturating_mul(sigma_out.saturating_pow(delta.min(63) as u32));
    outputs.saturating_pow(inputs.min(63) as u32)
}

/// Exact Ramsey number `R(2, m, c)` (graph case) for tiny parameters, by
/// exhaustive search over edge colorings: the smallest `n` such that every
/// `c`-coloring of `K_n`'s edges contains a monochromatic clique of size
/// `m`.
///
/// # Panics
///
/// Panics if the search space `c^(n choose 2)` exceeds `2^24` before an
/// answer is found (keep `m ≤ 3`, `c ≤ 2`).
pub fn ramsey_number_exact(m: usize, colors: usize) -> usize {
    for n in m.. {
        let edges = n * (n - 1) / 2;
        let space = (colors as u128).pow(edges as u32);
        assert!(space <= 1 << 24, "search space too large at n = {n}");
        if every_coloring_has_mono_clique(n, m, colors) {
            return n;
        }
    }
    unreachable!()
}

fn every_coloring_has_mono_clique(n: usize, m: usize, colors: usize) -> bool {
    let edges: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .collect();
    let total = (colors as u64).pow(edges.len() as u32);
    'coloring: for code in 0..total {
        // Decode the coloring.
        let mut color = vec![vec![0usize; n]; n];
        let mut rest = code;
        for &(i, j) in &edges {
            let c = (rest % colors as u64) as usize;
            rest /= colors as u64;
            color[i][j] = c;
            color[j][i] = c;
        }
        // Any monochromatic m-clique?
        let mut clique = Vec::new();
        if has_mono_clique(&color, n, m, colors, 0, &mut clique) {
            continue 'coloring;
        }
        return false; // a coloring avoiding monochromatic cliques exists
    }
    true
}

fn has_mono_clique(
    color: &[Vec<usize>],
    n: usize,
    m: usize,
    colors: usize,
    _start: usize,
    _clique: &mut Vec<usize>,
) -> bool {
    // Try each color class separately with simple recursion.
    for c in 0..colors {
        let mut members: Vec<usize> = Vec::new();
        if grow(color, n, m, c, 0, &mut members) {
            return true;
        }
    }
    false
}

fn grow(
    color: &[Vec<usize>],
    n: usize,
    m: usize,
    c: usize,
    start: usize,
    members: &mut Vec<usize>,
) -> bool {
    if members.len() == m {
        return true;
    }
    for v in start..n {
        if members.iter().all(|&u| color[u][v] == c) {
            members.push(v);
            if grow(color, n, m, c, v + 1, members) {
                return true;
            }
            members.pop();
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_ramsey_numbers() {
        // R(3; 1 color) = 3, R(3, 3) = 6 — the classic party theorem.
        assert_eq!(ramsey_number_exact(3, 1), 3);
        assert_eq!(ramsey_number_exact(3, 2), 6);
        assert_eq!(ramsey_number_exact(2, 2), 2);
    }

    #[test]
    fn log_star_bound_is_monotone() {
        assert!(log_star_ramsey_bound(2, 10, 10) <= log_star_ramsey_bound(3, 10, 10));
        assert!(log_star_ramsey_bound(2, 10, 10) <= log_star_ramsey_bound(2, 1 << 20, 10));
    }

    #[test]
    fn ramsey_step_needs_huge_id_spaces() {
        // Even tiny (p, m, c) need log* ids ≥ ~6: id spaces beyond 2^65536.
        assert!(!ramsey_step_applies(u64::MAX, 2, 4, 4));
        // But the bound function itself is small.
        assert_eq!(log_star_ramsey_bound(2, 4, 4), 2 + 2 + 2 + 3);
    }

    #[test]
    fn volume_color_count_saturates() {
        // Large parameters saturate instead of overflowing.
        assert_eq!(volume_color_count(10, 3, 2, 3), u64::MAX);
        // Small parameters stay finite.
        assert!(volume_color_count(0, 1, 1, 1) >= 1);
    }
}
