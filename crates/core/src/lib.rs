//! The paper's contribution, executable: round elimination for LCLs with
//! inputs on irregular graphs, and the `o(log* n) → O(1)` speed-up
//! pipelines for trees (Theorem 3.11), the VOLUME/LCA models
//! (Theorems 4.1/4.3), and oriented grids (Theorem 5.1).
//!
//! # Module map
//!
//! * [`bits`] — small fixed-universe bitsets used throughout, plus the
//!   word-level set-op kernels shared with the arena layout.
//! * [`arena`] — flat arena-backed bitset families (one contiguous
//!   `Vec<u64>` of fixed-width rows per tower level) behind the hot
//!   path.
//! * [`interner`] — deduplicating id store for label sets; derived-level
//!   labels are addressed by dense `u32` ids, so set equality and
//!   universe membership are integer operations.
//! * [`par`] — a dependency-free scoped-thread fan-out (`std::thread`
//!   only; the build environment is offline) used by the tower engine and
//!   the derived-algorithm runs.
//! * [`tower`] — the round-elimination problem sequence
//!   `Π, R(Π), R̄(R(Π)), ...` (Definitions 3.1/3.2) with label universes
//!   interned as sets-of-parent-labels and constraints evaluated lazily,
//!   plus per-level engine counters and extensional fixpoint detection.
//! * [`zero_round`] — deciding deterministic 0-round solvability and
//!   extracting the paper's `A_det` (proof of Theorem 3.10).
//! * [`lift`] — Lemma 3.9: turning a 0-round algorithm for
//!   `f^k(Π) = (R̄∘R)^k(Π)` into a `k`-round LOCAL algorithm for `Π`.
//! * [`speedup_trees`] — the full Theorem 3.10/3.11 pipeline: iterate
//!   round elimination, detect 0-round solvability, synthesize a
//!   constant-round algorithm, plus the Lemma 3.3 forest↔tree transfer.
//! * [`bounds`] — the quantitative side of Theorem 3.4: the blow-up factor
//!   `S`, the failure-probability recurrence `p ↦ S·p^{1/(3Δ+3)}`, and the
//!   `n₀` feasibility conditions (3.2)–(3.4).
//! * [`derived`] — the executable constructions of Section 3.2: deriving
//!   the faster-but-sloppier algorithms `A_½` (for `R(Π)`) and `A'` (for
//!   `R̄(R(Π))`) from a randomized algorithm `A` for `Π`.
//! * [`ramsey`] — the Ramsey-theoretic quantities used by Theorem 4.1 and
//!   Proposition 5.4.
//! * [`speedup_volume`] — Theorems 2.11 and 4.1 for the VOLUME model:
//!   order-invariant algorithms fooled at a fixed `n₀` run in `O(1)`
//!   probes on every `n`.
//! * [`speedup_grids`] — Propositions 5.3–5.5: the PROD-LOCAL pipeline on
//!   oriented grids, ending in an identifier-free constant-round
//!   algorithm.

pub mod arena;
pub mod bits;
pub mod bounds;
pub mod derived;
pub mod interner;
pub mod lemma33;
pub mod lift;
pub mod par;
pub mod ramsey;
pub mod snapshot;
pub mod speedup_grids;
pub mod speedup_local;
pub mod speedup_trees;
pub mod speedup_volume;
pub mod tower;
pub mod zero_round;

pub use arena::{BitArena, BitRow};
pub use bounds::{
    blowup_factor, failure_after_steps, find_n0_log2, n0_conditions_hold, step_bound,
};
pub use interner::LabelInterner;
pub use lemma33::{run_lemma33, Lemma33Case, Lemma33Run};
pub use lift::LiftedAlgorithm;
pub use snapshot::{
    LayerSnapshot, SnapshotError, SpanSnapshot, TableSnapshot, TowerSnapshot, SNAPSHOT_VERSION,
};
pub use speedup_local::{run_fooled_local, FooledOrderInvariant};
pub use speedup_trees::{
    tree_speedup, tree_speedup_logged, tree_speedup_traced, SpeedupOptions, SpeedupOutcome,
};
pub use tower::{LayerKind, LevelStats, ReError, ReOptions, ReTower, TowerLevel};
pub use zero_round::{decide_zero_round, ZeroRoundAlgorithm, ZeroRoundResult};
