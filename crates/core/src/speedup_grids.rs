//! Propositions 5.3–5.5 and Theorem 5.1: the speedup pipeline on oriented
//! grids, executable.
//!
//! * **Proposition 5.3** — a LOCAL algorithm follows from a PROD-LOCAL
//!   one by packing the `d` per-dimension identifiers into one (provided
//!   by `ProdIds::pack` in `lcl-grid`).
//! * **Proposition 5.4** — the Ramsey step turns an `o(log* n)`-round
//!   PROD-LOCAL algorithm into an order-invariant one (empirically
//!   certified here via order-preserving resampling).
//! * **Proposition 5.5** — an order-invariant PROD-LOCAL algorithm is
//!   "fooled" at a fixed `n₀` *and* fed the canonical identifier order
//!   that the grid's orientation provides for free: identifiers ordered
//!   by `(dimension, position along the dimension)`. The result,
//!   [`OrientationCanonical`], is an identifier-free constant-radius
//!   LOCAL algorithm — Theorem 5.1's conclusion.

use lcl::OutLabel;
use lcl_grid::{GridView, OrderInvariantProdAlgorithm, ProdLocalAlgorithm, RankGridView};

/// The canonical rank view Proposition 5.5 derives from the orientation:
/// within the window, slice identifiers are ordered by dimension first and
/// by position along the (oriented) dimension second — no actual
/// identifiers involved.
pub fn orientation_canonical_ranks(d: usize, radius: u32, n: usize) -> RankGridView {
    let side = 2 * radius as usize + 1;
    let ranks = (0..d)
        .map(|k| (0..side).map(|t| (k * side + t) as u32).collect())
        .collect();
    RankGridView {
        d,
        radius,
        n,
        ranks,
        inputs: Vec::new(), // filled by the caller per view
    }
}

/// The Proposition 5.5 pipeline object: an order-invariant PROD-LOCAL
/// algorithm, fooled at `n₀` and driven by the orientation-canonical
/// ranks. Implements the plain [`ProdLocalAlgorithm`] interface but
/// ignores the supplied identifiers entirely — it is an identifier-free
/// LOCAL algorithm on the oriented grid.
#[derive(Clone, Debug)]
pub struct OrientationCanonical<A> {
    inner: A,
    n0: usize,
}

impl<A> OrientationCanonical<A> {
    /// Wraps `inner` with fooling constant `n0`.
    pub fn new(inner: A, n0: usize) -> Self {
        Self { inner, n0 }
    }

    /// The fooling constant.
    pub fn n0(&self) -> usize {
        self.n0
    }
}

impl<A: OrderInvariantProdAlgorithm> ProdLocalAlgorithm for OrientationCanonical<A> {
    fn radius(&self, n: usize) -> u32 {
        self.inner.radius(n.min(self.n0))
    }

    fn label(&self, view: &GridView) -> Vec<OutLabel> {
        let fooled_n = view.n.min(self.n0);
        let mut ranks = orientation_canonical_ranks(view.d, view.radius, fooled_n);
        ranks.inputs = view.inputs.clone();
        self.inner.label(&ranks)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_grid::{run_prod_local, OrientedGrid, ProdIds};

    /// Output, on every port, whether the center's dim-0 slice has the
    /// smallest visible rank in dimension 0 — under the canonical order
    /// this is "am I the upstream end of my visible window", a fixed
    /// pattern.
    #[derive(Clone, Debug)]
    struct UpstreamEnd;

    impl OrderInvariantProdAlgorithm for UpstreamEnd {
        fn radius(&self, _n: usize) -> u32 {
            1
        }
        fn label(&self, view: &RankGridView) -> Vec<OutLabel> {
            let is_min = (-1..=1).all(|o| view.rank(0, 0) <= view.rank(0, o));
            vec![OutLabel(u32::from(is_min)); 2 * view.d]
        }
    }

    #[test]
    fn canonical_ranks_are_ordered_by_dimension_then_position() {
        let r = orientation_canonical_ranks(2, 1, 100);
        assert_eq!(r.rank(0, -1), 0);
        assert_eq!(r.rank(0, 0), 1);
        assert_eq!(r.rank(0, 1), 2);
        assert_eq!(r.rank(1, -1), 3);
        assert_eq!(r.rank(1, 1), 5);
    }

    #[test]
    fn orientation_canonical_ignores_identifiers() {
        let grid = OrientedGrid::new(&[5, 4]);
        let input = lcl::uniform_input(grid.graph());
        let alg = OrientationCanonical::new(UpstreamEnd, 16);
        let ids_a = ProdIds::random_polynomial(&grid, 3, 1);
        let ids_b = ProdIds::random_polynomial(&grid, 3, 2);
        let run_a = run_prod_local(&alg, &grid, &input, &ids_a, None);
        let run_b = run_prod_local(&alg, &grid, &input, &ids_b, None);
        assert_eq!(run_a.output, run_b.output);
    }

    #[test]
    fn fooling_caps_the_radius() {
        #[derive(Clone, Debug)]
        struct GrowingRadius;
        impl OrderInvariantProdAlgorithm for GrowingRadius {
            fn radius(&self, n: usize) -> u32 {
                (n as f64).log2() as u32
            }
            fn label(&self, view: &RankGridView) -> Vec<OutLabel> {
                vec![OutLabel(0); 2 * view.d]
            }
        }
        let alg = OrientationCanonical::new(GrowingRadius, 16);
        // Radius is log2(min(n, 16)) = 4 for every n ≥ 16.
        assert_eq!(alg.radius(16), 4);
        assert_eq!(alg.radius(1 << 20), 4);
    }

    #[test]
    fn canonical_output_is_translation_invariant() {
        // With canonical ranks, the rank pattern is the same at every
        // node, so outputs must be uniform across the grid.
        let grid = OrientedGrid::new(&[4, 4]);
        let input = lcl::uniform_input(grid.graph());
        let alg = OrientationCanonical::new(UpstreamEnd, 8);
        let ids = ProdIds::sequential(&grid);
        let run = run_prod_local(&alg, &grid, &input, &ids, None);
        let first = run.output.get(lcl_graph::HalfEdgeId(0));
        assert!(run.output.as_slice().iter().all(|&l| l == first));
    }
}
