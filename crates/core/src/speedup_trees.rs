//! The Theorem 3.10/3.11 pipeline: any LCL with complexity `o(log* n)` on
//! trees/forests can be solved in `O(1)` rounds — and here the constant
//! round algorithm is *synthesized*.
//!
//! The executable pipeline mirrors the proof:
//!
//! 1. iterate `f = R̄ ∘ R` ([`ReTower`]) starting from `Π`,
//! 2. after each step, decide deterministic 0-round solvability of
//!    `f^k(Π)` and extract `A_det` ([`decide_zero_round`]),
//! 3. lift `A_det` back through the sequence with Lemma 3.9
//!    ([`LiftedAlgorithm`]), obtaining a `k`-round algorithm for `Π`.
//!
//! The proof guarantees success for some `k = T(n₀) = O(1)` whenever `Π`
//! has complexity `o(log* n)`; the synthesizer tries `k = 0, 1, ...` up to
//! a budget. Problems of complexity `Θ(log* n)` or higher (3-coloring,
//! sinkless orientation) never reach a 0-round-solvable level — their
//! label universes are reported instead.
//!
//! This module also contains the Lemma 3.3 transfer: an algorithm that
//! works on trees, run component-wise on forests.

use std::sync::Arc;

use lcl::{LclProblem, Problem};
use lcl_obs::{Counter, EventLog, RunReport, Span, Trace};

use crate::lift::LiftedAlgorithm;
use crate::tower::{ReError, ReOptions, ReTower};
use crate::zero_round::{decide_zero_round, ZeroRoundAlgorithm, ZeroRoundOptions, ZeroRoundResult};

/// Budgets for [`tree_speedup`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpeedupOptions {
    /// Maximum number of `f`-steps to try.
    pub max_steps: usize,
    /// Caps for each round-elimination step.
    pub re: ReOptions,
    /// Caps for each 0-round decision.
    pub zero_round: ZeroRoundOptions,
}

impl Default for SpeedupOptions {
    fn default() -> Self {
        Self {
            max_steps: 2,
            re: ReOptions::default(),
            zero_round: ZeroRoundOptions::default(),
        }
    }
}

/// The outcome of the pipeline.
#[derive(Debug)]
pub enum SpeedupOutcome {
    /// A constant-round algorithm was synthesized: `f^steps(Π)` is 0-round
    /// solvable, so `Π` is solvable in `steps` rounds.
    ConstantRound {
        /// The tower holding the problem sequence (the lifted algorithm
        /// borrows from it).
        tower: Box<ReTower>,
        /// Number of `f`-steps (= rounds of the synthesized algorithm).
        steps: usize,
        /// The extracted 0-round table for `f^steps(Π)`.
        adet: ZeroRoundAlgorithm,
    },
    /// No level within the budget was 0-round solvable.
    Exhausted {
        /// Steps fully explored (0-round decision ran at each).
        steps_tried: usize,
        /// Alphabet sizes per tower level, for diagnostics.
        alphabet_sizes: Vec<usize>,
        /// Whether the exploration stopped early due to a cap.
        capped: Option<ReError>,
        /// When the tower detected a cycle — level `2·steps` extensionally
        /// equal to this earlier level of the same parity — the sequence
        /// can never become 0-round solvable and the search stopped early
        /// (the fixpoint certificate of e.g. sinkless orientation).
        fixpoint: Option<usize>,
    },
}

impl SpeedupOutcome {
    /// Whether a constant-round algorithm was found.
    pub fn is_constant(&self) -> bool {
        matches!(self, SpeedupOutcome::ConstantRound { .. })
    }

    /// Builds the synthesized algorithm (borrows the tower), or `None`
    /// if the pipeline exhausted its budget without synthesizing one.
    pub fn try_algorithm(&self) -> Option<LiftedAlgorithm<'_>> {
        match self {
            SpeedupOutcome::ConstantRound { tower, steps, adet } => {
                Some(LiftedAlgorithm::new(tower, adet.clone(), *steps))
            }
            SpeedupOutcome::Exhausted { .. } => None,
        }
    }

    /// Builds the synthesized algorithm (borrows the tower).
    ///
    /// # Panics
    ///
    /// Panics if the outcome is not [`SpeedupOutcome::ConstantRound`];
    /// callers that have not already checked [`is_constant`](Self::is_constant)
    /// should prefer [`try_algorithm`](Self::try_algorithm).
    pub fn algorithm(&self) -> LiftedAlgorithm<'_> {
        self.try_algorithm()
            .expect("why: caller checked is_constant(), so the outcome holds a synthesized table")
    }
}

/// Runs the Theorem 3.10/3.11 synthesis pipeline on `problem` and
/// reports the execution trace: one child span per round-elimination
/// level (labels interned/alive, configurations, memo traffic, fixpoint
/// certificates — the tower's own spans), under a root recording the
/// `f`-steps explored and, on success, the synthesized round count.
///
/// This is the instrumented entrypoint behind the facade's `Simulation`
/// trait; [`tree_speedup`] forwards here and discards the trace.
pub fn tree_speedup_traced(
    problem: &LclProblem,
    opts: SpeedupOptions,
) -> RunReport<SpeedupOutcome> {
    tree_speedup_logged(problem, opts, None)
}

/// Like [`tree_speedup_traced`], with the tower's event stream — memo
/// lookups, level completions ([`lcl_obs::Event`]) — recorded into `log`
/// and carried on the returned report ([`RunReport::events`]).
pub fn tree_speedup_logged(
    problem: &LclProblem,
    opts: SpeedupOptions,
    log: Option<Arc<EventLog>>,
) -> RunReport<SpeedupOutcome> {
    let mut span = Span::start(format!("tree-speedup/{}", problem.name()));
    let mut tower = ReTower::new(problem.clone());
    if let Some(log) = &log {
        tower.set_event_log(Arc::clone(log));
    }
    let mut capped = None;
    let mut steps_tried = 0;
    let mut fixpoint = None;
    let mut solved = None;
    for step in 0..=opts.max_steps {
        if step > 0 {
            match tower.push_f(opts.re) {
                Ok(()) => {}
                Err(e) => {
                    capped = Some(e);
                    break;
                }
            }
        }
        let level = tower.level(2 * step);
        match decide_zero_round(&level, opts.zero_round) {
            ZeroRoundResult::Solvable(adet) => {
                solved = Some((step, adet));
                break;
            }
            ZeroRoundResult::Unsolvable => {
                steps_tried = step + 1;
            }
            ZeroRoundResult::Unknown => {
                steps_tried = step + 1;
                // Caps prevented a definite answer; keep going — deeper
                // levels sometimes restrict to smaller universes.
            }
        }
        // Cycle detection: if f^step(Π) is extensionally equal to an
        // earlier level of the same parity, every future level repeats an
        // already-rejected one — stop instead of burning the budget.
        if step > 0 {
            if let Some(earlier) = tower.fixpoint_of(2 * step) {
                if (2 * step - earlier) % 2 == 0 {
                    fixpoint = Some(earlier);
                    break;
                }
            }
        }
    }
    for level_span in tower.spans() {
        span.record(level_span.clone());
    }
    let outcome = if let Some((steps, adet)) = solved {
        span.set(Counter::Steps, steps as u64);
        span.set(Counter::Rounds, steps as u64);
        SpeedupOutcome::ConstantRound {
            tower: Box::new(tower),
            steps,
            adet,
        }
    } else {
        span.set(Counter::Steps, steps_tried as u64);
        if let Some(earlier) = fixpoint {
            span.set(Counter::FixpointOf, earlier as u64);
        }
        let alphabet_sizes = (0..tower.level_count())
            .map(|l| tower.alphabet_size(l))
            .collect();
        SpeedupOutcome::Exhausted {
            steps_tried,
            alphabet_sizes,
            capped,
            fixpoint,
        }
    };
    let trace = Trace::new(span.finish());
    match log {
        Some(log) => RunReport::with_events(outcome, trace, log),
        None => RunReport::new(outcome, trace),
    }
}

/// Runs the Theorem 3.10/3.11 synthesis pipeline on `problem`.
///
/// Note: superseded by [`tree_speedup_traced`], which additionally
/// reports the execution trace; this thin wrapper remains for source
/// compatibility.
pub fn tree_speedup(problem: &LclProblem, opts: SpeedupOptions) -> SpeedupOutcome {
    tree_speedup_traced(problem, opts).outcome
}

/// The Lemma 3.3 transfer, executable: runs a tree algorithm on a forest
/// by handling each component with the paper's two cases (small components
/// are solved by full collection; large components run the tree algorithm
/// with the announced node count `n²`).
///
/// This demonstrates the *construction*; the synthesized
/// [`LiftedAlgorithm`] does not need it (it is correct on forests
/// directly), so the function takes any [`lcl_local::SyncAlgorithm`]-style
/// runner via a closure that solves one component.
pub fn solve_forest_componentwise<F>(
    graph: &lcl_graph::Graph,
    mut solve_component: F,
) -> Vec<Vec<lcl_graph::NodeId>>
where
    F: FnMut(&[lcl_graph::NodeId]),
{
    let (comp, count) = graph.components();
    let mut groups: Vec<Vec<lcl_graph::NodeId>> = vec![Vec::new(); count];
    for v in graph.nodes() {
        groups[comp[v.index()] as usize].push(v);
    }
    for group in &groups {
        solve_component(group);
    }
    groups
}

/// Convenience: does the problem admit *some* correct solution at all on
/// the given graph (brute force over labelings)? Exponential; test-sized
/// graphs only. Used to distinguish "pipeline exhausted" from "problem
/// unsolvable".
pub fn brute_force_solvable(
    problem: &(impl Problem + ?Sized),
    graph: &lcl_graph::Graph,
    input: &lcl::HalfEdgeLabeling<lcl::InLabel>,
) -> bool {
    let universe = problem.output_count().expect("finite universe");
    let half_edges = graph.half_edge_count();
    assert!(
        (universe as f64).powi(half_edges as i32) <= 1e9,
        "brute force only for tiny instances"
    );
    let mut assignment = vec![0u32; half_edges];
    loop {
        let labeling: lcl::HalfEdgeLabeling<lcl::OutLabel> =
            assignment.iter().map(|&l| lcl::OutLabel(l)).collect();
        if lcl::verify(problem, graph, input, &labeling).is_empty() {
            return true;
        }
        // Increment the mixed-radix counter.
        let mut pos = 0;
        loop {
            if pos == half_edges {
                return false;
            }
            assignment[pos] += 1;
            if (assignment[pos] as usize) < universe {
                break;
            }
            assignment[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::gen;
    use lcl_local::run_sync;

    #[test]
    fn trivial_problem_synthesizes_at_zero_steps() {
        let p = LclProblem::parse("max-degree: 3\nnodes:\nX*\nedges:\nX X\n").unwrap();
        let outcome = tree_speedup(&p, SpeedupOptions::default());
        match &outcome {
            SpeedupOutcome::ConstantRound { steps, .. } => assert_eq!(*steps, 0),
            other => panic!("expected constant round, got {other:?}"),
        }
    }

    #[test]
    fn anti_matching_synthesizes_at_one_step() {
        let p = LclProblem::parse("max-degree: 3\nnodes:\nX* Y*\nedges:\nX Y\n").unwrap();
        let outcome = tree_speedup(&p, SpeedupOptions::default());
        match &outcome {
            SpeedupOutcome::ConstantRound { steps, .. } => assert_eq!(*steps, 1),
            other => panic!("expected constant round, got {other:?}"),
        }
        // The synthesized algorithm solves the problem on forests.
        let alg = outcome.algorithm();
        let g = gen::random_forest(30, 3, 3, 11);
        let input = lcl::uniform_input(&g);
        let ids: Vec<u64> = (0..30u64).map(|i| 997 - i * 13).collect();
        let run = run_sync(&alg, &g, &input, &ids, None, 5);
        assert_eq!(run.rounds, 1);
        assert!(lcl::verify(&p, &g, &input, &run.output).is_empty());
    }

    #[test]
    fn traced_pipeline_records_level_spans() {
        let p = LclProblem::parse("max-degree: 3\nnodes:\nX* Y*\nedges:\nX Y\n").unwrap();
        let report = tree_speedup_traced(&p, SpeedupOptions::default());
        assert!(report.outcome.is_constant());
        let trace = &report.trace;
        assert_eq!(trace.total(Counter::Rounds), 1);
        // One f-step = two derived levels, each with its own span.
        let r = trace.find("level-1/r").expect("R level span");
        assert!(r.get(Counter::LabelsInterned).unwrap_or(0) > 0);
        assert!(trace.find("level-2/rbar").is_some());
        assert!(!trace.is_empty());
    }

    #[test]
    fn three_coloring_exhausts_the_budget() {
        // 3-coloring has complexity Θ(log* n): no f^k(Π) is 0-round
        // solvable; the pipeline must report exhaustion, never a
        // constant-round algorithm.
        let p = LclProblem::parse("max-degree: 3\nnodes:\nA*\nB*\nC*\nedges:\nA B\nA C\nB C\n")
            .unwrap();
        let outcome = tree_speedup(
            &p,
            SpeedupOptions {
                max_steps: 1,
                ..SpeedupOptions::default()
            },
        );
        match outcome {
            SpeedupOutcome::Exhausted { steps_tried, .. } => {
                assert!(steps_tried >= 1)
            }
            SpeedupOutcome::ConstantRound { steps, .. } => {
                panic!("3-coloring cannot be solved in {steps} rounds")
            }
        }
    }

    #[test]
    fn componentwise_grouping_partitions_nodes() {
        let g = gen::random_forest(20, 4, 3, 2);
        let mut seen = 0;
        let groups = solve_forest_componentwise(&g, |group| {
            seen += group.len();
        });
        assert_eq!(seen, 20);
        assert_eq!(groups.len(), 4);
    }

    #[test]
    fn brute_force_agrees_on_toy_cases() {
        let two_col = LclProblem::parse("max-degree: 2\nnodes:\nA*\nB*\nedges:\nA B\n").unwrap();
        let path = gen::path(3);
        let input = lcl::uniform_input(&path);
        assert!(brute_force_solvable(&two_col, &path, &input));
        let triangle = {
            let mut b = lcl_graph::GraphBuilder::new(3);
            b.add_edge(0, 1).unwrap();
            b.add_edge(1, 2).unwrap();
            b.add_edge(2, 0).unwrap();
            b.build().unwrap()
        };
        let input = lcl::uniform_input(&triangle);
        assert!(!brute_force_solvable(&two_col, &triangle, &input));
    }
}
