//! Fixed-universe bitsets for label sets and compatibility rows.
//!
//! Round elimination manipulates sets of labels constantly (labels of
//! `R(Π)` *are* sets of `Π`-labels); this module provides the compact
//! representation used by the [`tower`](crate::tower).

/// A bitset over a fixed universe `0..len`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over a universe of `len` elements.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The full set over a universe of `len` elements.
    pub fn full(len: usize) -> Self {
        let mut s = Self::new(len);
        for i in 0..len {
            s.insert(i);
        }
        s
    }

    /// A set from the given members.
    pub fn from_members(len: usize, members: impl IntoIterator<Item = usize>) -> Self {
        let mut s = Self::new(len);
        for m in members {
            s.insert(m);
        }
        s
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Inserts an element.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the universe.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "element {i} outside universe {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Removes an element.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        if i < self.len {
            self.words[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of elements.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset_of(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(&a, &b)| a & !b == 0)
    }

    /// Whether the sets intersect.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .any(|(&a, &b)| a & b != 0)
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &BitSet) {
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &BitSet) {
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Iterator over members, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.contains(i))
    }

    /// Members as a vector.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

/// All sorted multisets of size `size` over `0..universe`, visited through
/// a callback. Returns `true` iff the traversal ran to completion: both a
/// callback returning `false` (caller stop) and exceeding `cap` visits end
/// the traversal early and return `false`.
pub fn for_each_multiset(
    universe: usize,
    size: usize,
    cap: usize,
    mut f: impl FnMut(&[usize]) -> bool,
) -> bool {
    let mut current = Vec::with_capacity(size);
    fn recurse(
        universe: usize,
        size: usize,
        start: usize,
        current: &mut Vec<usize>,
        visited: &mut usize,
        cap: usize,
        f: &mut impl FnMut(&[usize]) -> bool,
    ) -> Option<bool> {
        if current.len() == size {
            *visited += 1;
            if *visited > cap {
                return Some(false); // cap exceeded
            }
            return if f(current) { None } else { Some(true) };
        }
        for i in start..universe {
            current.push(i);
            let stop = recurse(universe, size, i, current, visited, cap, f);
            current.pop();
            if let Some(caller_stop) = stop {
                return Some(caller_stop);
            }
        }
        None
    }
    recurse(universe, size, 0, &mut current, &mut 0, cap, &mut f).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(100);
        s.insert(0);
        s.insert(70);
        assert!(s.contains(0));
        assert!(s.contains(70));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 2);
        s.remove(70);
        assert!(!s.contains(70));
    }

    #[test]
    fn subset_and_intersection() {
        let a = BitSet::from_members(10, [1, 3, 5]);
        let b = BitSet::from_members(10, [1, 3, 5, 7]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.intersects(&b));
        let c = BitSet::from_members(10, [0, 2]);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn set_algebra() {
        let mut a = BitSet::from_members(10, [1, 2, 3]);
        let b = BitSet::from_members(10, [2, 3, 4]);
        a.intersect_with(&b);
        assert_eq!(a.to_vec(), vec![2, 3]);
        a.union_with(&b);
        assert_eq!(a.to_vec(), vec![2, 3, 4]);
    }

    #[test]
    fn full_and_empty() {
        let f = BitSet::full(65);
        assert_eq!(f.count(), 65);
        assert!(!f.is_empty());
        assert!(BitSet::new(65).is_empty());
    }

    #[test]
    fn multiset_enumeration_counts() {
        let mut count = 0;
        assert!(for_each_multiset(3, 2, 100, |_| {
            count += 1;
            true
        }));
        assert_eq!(count, 6);
    }

    #[test]
    fn multiset_enumeration_respects_cap() {
        let mut count = 0;
        let complete = for_each_multiset(10, 3, 5, |_| {
            count += 1;
            true
        });
        assert!(!complete);
        assert_eq!(count, 5);
    }

    #[test]
    fn multiset_enumeration_early_stop() {
        let mut count = 0;
        let complete = for_each_multiset(10, 2, 1000, |_| {
            count += 1;
            count < 3
        });
        assert!(!complete, "caller stop is an incomplete traversal");
        assert_eq!(count, 3);
    }
}
