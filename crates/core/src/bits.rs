//! Fixed-universe bitsets for label sets and compatibility rows.
//!
//! Round elimination manipulates sets of labels constantly (labels of
//! `R(Π)` *are* sets of `Π`-labels); this module provides the compact
//! representation used by the [`tower`](crate::tower).
//!
//! The set algebra bottoms out in the word-level kernels of [`kernels`]:
//! branch-free loops over `&[u64]` slices that LLVM auto-vectorizes. The
//! same kernels back both [`BitSet`] and the flat
//! [`BitArena`](crate::arena::BitArena) rows of the tower hot path, so
//! the two storage layouts cannot drift in semantics.
//!
//! # Universe discipline
//!
//! Every binary set operation requires both operands to live over the
//! *same* universe and panics otherwise, mirroring the panic contract of
//! [`BitSet::insert`]. The previous implementation zipped word vectors
//! and silently ignored trailing words when universes differed, so e.g.
//! `is_subset_of` could answer `true` for a non-subset — a silent wrong
//! answer in the middle of the round-elimination set algebra.

/// Word-level set-operation kernels over `&[u64]` slices.
///
/// Each kernel demands equal slice lengths (the caller aligns universes)
/// and is written as a single branch-free pass so the optimizer can
/// vectorize it. Bits past the universe are maintained zero by every
/// producer in this crate, which the kernels rely on for `count`/`any`.
pub mod kernels {
    /// `a ⊆ b` over aligned word slices.
    #[inline]
    pub fn subset(a: &[u64], b: &[u64]) -> bool {
        debug_assert_eq!(a.len(), b.len(), "kernel operands must be aligned");
        let mut stray = 0u64;
        for (&x, &y) in a.iter().zip(b) {
            stray |= x & !y;
        }
        stray == 0
    }

    /// `a ∩ b ≠ ∅` over aligned word slices.
    #[inline]
    pub fn intersects(a: &[u64], b: &[u64]) -> bool {
        debug_assert_eq!(a.len(), b.len(), "kernel operands must be aligned");
        let mut common = 0u64;
        for (&x, &y) in a.iter().zip(b) {
            common |= x & y;
        }
        common != 0
    }

    /// `a &= b` over aligned word slices.
    #[inline]
    pub fn and_assign(a: &mut [u64], b: &[u64]) {
        debug_assert_eq!(a.len(), b.len(), "kernel operands must be aligned");
        for (x, &y) in a.iter_mut().zip(b) {
            *x &= y;
        }
    }

    /// `a |= b` over aligned word slices.
    #[inline]
    pub fn or_assign(a: &mut [u64], b: &[u64]) {
        debug_assert_eq!(a.len(), b.len(), "kernel operands must be aligned");
        for (x, &y) in a.iter_mut().zip(b) {
            *x |= y;
        }
    }

    /// Population count over a word slice.
    #[inline]
    pub fn count(a: &[u64]) -> usize {
        a.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bit is set.
    #[inline]
    pub fn is_empty(a: &[u64]) -> bool {
        a.iter().all(|&w| w == 0)
    }

    /// Fills `words` with the full set over `universe` elements: every
    /// word all-ones except the trailing partial word, which is masked so
    /// no stray bits land past the universe.
    #[inline]
    pub fn fill(words: &mut [u64], universe: usize) {
        debug_assert_eq!(words.len(), universe.div_ceil(64), "aligned slab");
        for w in words.iter_mut() {
            *w = !0u64;
        }
        let tail = universe % 64;
        if tail != 0 {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << tail) - 1;
            }
        }
    }

    /// Sets bit `i` in `words`.
    #[inline]
    pub fn set(words: &mut [u64], i: usize) {
        words[i / 64] |= 1u64 << (i % 64);
    }

    /// Tests bit `i` in `words`.
    #[inline]
    pub fn test(words: &[u64], i: usize) -> bool {
        words[i / 64] & (1u64 << (i % 64)) != 0
    }
}

/// Iterator over the set bits of a word slice, ascending, via a word walk
/// (`trailing_zeros` per member instead of a probe per universe index).
#[derive(Clone, Debug)]
pub struct Ones<'a> {
    words: &'a [u64],
    /// Index of the word `current` was taken from.
    word_index: usize,
    /// Remaining bits of the current word.
    current: u64,
}

impl<'a> Ones<'a> {
    /// Walks the set bits of `words` (which must carry no bits past the
    /// producing set's universe).
    pub fn new(words: &'a [u64]) -> Self {
        Self {
            words,
            word_index: 0,
            current: words.first().copied().unwrap_or(0),
        }
    }
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_index += 1;
            if self.word_index >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_index];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_index * 64 + bit)
    }
}

/// A bitset over a fixed universe `0..len`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over a universe of `len` elements.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The full set over a universe of `len` elements.
    pub fn full(len: usize) -> Self {
        let mut s = Self::new(len);
        kernels::fill(&mut s.words, len);
        s
    }

    /// A set from the given members.
    pub fn from_members(len: usize, members: impl IntoIterator<Item = usize>) -> Self {
        let mut s = Self::new(len);
        for m in members {
            s.insert(m);
        }
        s
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.len
    }

    /// The backing words (no bits set past the universe).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Inserts an element.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the universe.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "element {i} outside universe {}", self.len);
        kernels::set(&mut self.words, i);
    }

    /// Removes an element.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        if i < self.len {
            self.words[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && kernels::test(&self.words, i)
    }

    /// Number of elements.
    pub fn count(&self) -> usize {
        kernels::count(&self.words)
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        kernels::is_empty(&self.words)
    }

    /// Panics unless `other` shares this set's universe: set algebra
    /// between different universes has no meaning, and the zip-and-ignore
    /// behavior this replaces silently returned wrong answers.
    #[inline]
    fn assert_same_universe(&self, other: &BitSet) {
        assert_eq!(
            self.len, other.len,
            "set operation across universes ({} vs {})",
            self.len, other.len
        );
    }

    /// Whether `self ⊆ other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ (see [`BitSet::insert`]).
    pub fn is_subset_of(&self, other: &BitSet) -> bool {
        self.assert_same_universe(other);
        kernels::subset(&self.words, &other.words)
    }

    /// Whether the sets intersect.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.assert_same_universe(other);
        kernels::intersects(&self.words, &other.words)
    }

    /// In-place intersection.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        self.assert_same_universe(other);
        kernels::and_assign(&mut self.words, &other.words);
    }

    /// In-place union.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union_with(&mut self, other: &BitSet) {
        self.assert_same_universe(other);
        kernels::or_assign(&mut self.words, &other.words);
    }

    /// Iterator over members, ascending (a word walk, not a probe per
    /// universe index).
    pub fn iter(&self) -> Ones<'_> {
        Ones::new(&self.words)
    }

    /// Members as a vector.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

/// All sorted multisets of size `size` over `0..universe`, visited through
/// a callback. Returns `true` iff the traversal ran to completion: both a
/// callback returning `false` (caller stop) and exceeding `cap` visits end
/// the traversal early and return `false`.
pub fn for_each_multiset(
    universe: usize,
    size: usize,
    cap: usize,
    mut f: impl FnMut(&[usize]) -> bool,
) -> bool {
    let mut current = Vec::with_capacity(size);
    fn recurse(
        universe: usize,
        size: usize,
        start: usize,
        current: &mut Vec<usize>,
        visited: &mut usize,
        cap: usize,
        f: &mut impl FnMut(&[usize]) -> bool,
    ) -> Option<bool> {
        if current.len() == size {
            *visited += 1;
            if *visited > cap {
                return Some(false); // cap exceeded
            }
            return if f(current) { None } else { Some(true) };
        }
        for i in start..universe {
            current.push(i);
            let stop = recurse(universe, size, i, current, visited, cap, f);
            current.pop();
            if let Some(caller_stop) = stop {
                return Some(caller_stop);
            }
        }
        None
    }
    recurse(universe, size, 0, &mut current, &mut 0, cap, &mut f).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(100);
        s.insert(0);
        s.insert(70);
        assert!(s.contains(0));
        assert!(s.contains(70));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 2);
        s.remove(70);
        assert!(!s.contains(70));
    }

    #[test]
    fn subset_and_intersection() {
        let a = BitSet::from_members(10, [1, 3, 5]);
        let b = BitSet::from_members(10, [1, 3, 5, 7]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.intersects(&b));
        let c = BitSet::from_members(10, [0, 2]);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn set_algebra() {
        let mut a = BitSet::from_members(10, [1, 2, 3]);
        let b = BitSet::from_members(10, [2, 3, 4]);
        a.intersect_with(&b);
        assert_eq!(a.to_vec(), vec![2, 3]);
        a.union_with(&b);
        assert_eq!(a.to_vec(), vec![2, 3, 4]);
    }

    #[test]
    fn full_and_empty() {
        let f = BitSet::full(65);
        assert_eq!(f.count(), 65);
        assert!(!f.is_empty());
        assert!(BitSet::new(65).is_empty());
    }

    #[test]
    fn full_leaves_no_stray_bits_in_the_tail_word() {
        for universe in [1usize, 63, 64, 65, 127, 128, 130] {
            let f = BitSet::full(universe);
            assert_eq!(f.count(), universe, "universe {universe}");
            assert_eq!(f.to_vec(), (0..universe).collect::<Vec<_>>());
            // The complement check would silently break if fill() left
            // bits past the universe.
            assert!(f.is_subset_of(&BitSet::full(universe)));
        }
    }

    /// Regression (issue 6): with universes straddling a word boundary,
    /// the old zip-based `is_subset_of` ignored the trailing word — a set
    /// with a member at index ≥ 64 was reported as a subset of a 64-bit
    /// set. Mismatched universes must refuse loudly instead.
    #[test]
    #[should_panic(expected = "set operation across universes")]
    fn subset_across_word_boundary_universes_panics() {
        // 70 > 64: b has one word, a has two; the zip dropped a's second
        // word and answered `true` even though 69 ∉ b.
        let a = BitSet::from_members(70, [1, 69]);
        let b = BitSet::from_members(64, [1]);
        let _ = a.is_subset_of(&b);
    }

    #[test]
    #[should_panic(expected = "set operation across universes")]
    fn intersects_across_universes_panics() {
        let a = BitSet::from_members(130, [128]);
        let b = BitSet::from_members(64, [1]);
        let _ = a.intersects(&b);
    }

    #[test]
    #[should_panic(expected = "set operation across universes")]
    fn intersect_with_across_universes_panics() {
        let mut a = BitSet::from_members(65, [64]);
        let b = BitSet::from_members(64, [1]);
        a.intersect_with(&b);
    }

    #[test]
    #[should_panic(expected = "set operation across universes")]
    fn union_with_across_universes_panics() {
        let mut a = BitSet::from_members(64, [1]);
        let b = BitSet::from_members(65, [64]);
        a.union_with(&b);
    }

    #[test]
    fn same_word_count_different_universe_still_panics() {
        // 65 and 70 both need two words; the old zip silently "worked".
        let a = BitSet::from_members(65, [64]);
        let b = BitSet::from_members(70, [64, 69]);
        let err = std::panic::catch_unwind(|| a.is_subset_of(&b));
        assert!(err.is_err(), "universe 65 vs 70 must refuse");
    }

    /// The word-walk iterator must produce exactly the member sequence of
    /// the probe-every-index implementation it replaced.
    #[test]
    fn word_walk_iter_matches_probe_reference() {
        let patterns: Vec<(usize, Vec<usize>)> = vec![
            (0, vec![]),
            (1, vec![0]),
            (64, vec![0, 63]),
            (65, vec![63, 64]),
            (70, vec![0, 1, 63, 64, 69]),
            (128, vec![127]),
            (130, vec![64, 127, 128, 129]),
            (200, (0..200).step_by(7).collect()),
        ];
        for (universe, members) in patterns {
            let s = BitSet::from_members(universe, members.iter().copied());
            // Probe reference: the old O(universe · words) iteration.
            let probed: Vec<usize> = (0..universe).filter(|&i| s.contains(i)).collect();
            let walked: Vec<usize> = s.iter().collect();
            assert_eq!(walked, probed, "universe {universe}");
            assert_eq!(walked, members, "universe {universe}");
            assert_eq!(s.to_vec(), members, "universe {universe}");
        }
    }

    #[test]
    fn kernels_agree_with_set_algebra() {
        let a = BitSet::from_members(130, [0, 64, 65, 129]);
        let b = BitSet::from_members(130, [0, 64, 65, 100, 129]);
        assert!(kernels::subset(a.words(), b.words()));
        assert!(!kernels::subset(b.words(), a.words()));
        assert!(kernels::intersects(a.words(), b.words()));
        assert_eq!(kernels::count(a.words()), 4);
        assert!(!kernels::is_empty(a.words()));

        let mut acc = b.words().to_vec();
        kernels::and_assign(&mut acc, a.words());
        assert_eq!(Ones::new(&acc).collect::<Vec<_>>(), a.to_vec());
        kernels::or_assign(&mut acc, b.words());
        assert_eq!(Ones::new(&acc).collect::<Vec<_>>(), b.to_vec());

        let mut full = vec![0u64; 3];
        kernels::fill(&mut full, 130);
        assert_eq!(kernels::count(&full), 130);
    }

    #[test]
    fn multiset_enumeration_counts() {
        let mut count = 0;
        assert!(for_each_multiset(3, 2, 100, |_| {
            count += 1;
            true
        }));
        assert_eq!(count, 6);
    }

    #[test]
    fn multiset_enumeration_respects_cap() {
        let mut count = 0;
        let complete = for_each_multiset(10, 3, 5, |_| {
            count += 1;
            true
        });
        assert!(!complete);
        assert_eq!(count, 5);
    }

    #[test]
    fn multiset_enumeration_early_stop() {
        let mut count = 0;
        let complete = for_each_multiset(10, 2, 1000, |_| {
            count += 1;
            count < 3
        });
        assert!(!complete, "caller stop is an incomplete traversal");
        assert_eq!(count, 3);
    }
}
