//! Theorems 2.11 and 4.1/4.3 for the VOLUME model, executable.
//!
//! The paper's pipeline: an `o(log* n)`-probe algorithm is (by the
//! Ramsey argument) order-invariant on a large identifier set; replacing
//! identifiers by their *ranks in the transcript* canonicalizes it
//! ([`Canonicalized`]); and an order-invariant algorithm can be "fooled"
//! with a fixed `n₀` (Theorem 2.11) to run in `O(1)` probes on graphs of
//! every size ([`fool`] / [`run_fooled_volume`]).
//!
//! To express canonicalization faithfully we also provide the paper's
//! *functional* form of a VOLUME algorithm (Definition 2.9): a family of
//! probe functions `f_{n,i}` from transcripts to decisions
//! ([`TranscriptAlgorithm`]), which adapts to the imperative
//! [`VolumeAlgorithm`] interface via [`TranscriptAsVolume`].

use lcl::{HalfEdgeLabeling, InLabel, OutLabel};
use lcl_graph::Graph;
use lcl_local::IdAssignment;
use lcl_volume::{run_volume, NodeInfo, ProbeError, ProbeSession, VolumeAlgorithm, VolumeRun};

/// One step of a transcript-functional VOLUME algorithm: either the next
/// adaptive probe `(j, port)` or the final answer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProbeDecision {
    /// Probe port `port` of the `j`-th discovered node.
    Probe {
        /// Index into the transcript (0 = queried node).
        j: usize,
        /// Port to probe.
        port: u8,
    },
    /// Output the labels for the queried node's half-edges.
    Output(Vec<OutLabel>),
}

/// A VOLUME algorithm in the paper's functional form (Definition 2.9):
/// `decide(n, t^{(i)})` plays the role of `f_{n,i+1}`.
pub trait TranscriptAlgorithm {
    /// The probe budget `T(n)`.
    fn probe_budget(&self, n: usize) -> usize;

    /// The next decision given the transcript so far.
    fn decide(&self, n: usize, transcript: &[NodeInfo]) -> ProbeDecision;

    /// A short name for diagnostics.
    fn name(&self) -> &str {
        "anonymous"
    }
}

/// Adapter: runs a [`TranscriptAlgorithm`] as an imperative
/// [`VolumeAlgorithm`].
#[derive(Clone, Debug)]
pub struct TranscriptAsVolume<A>(pub A);

impl<A: TranscriptAlgorithm> VolumeAlgorithm for TranscriptAsVolume<A> {
    fn probe_budget(&self, n: usize) -> usize {
        self.0.probe_budget(n)
    }

    fn answer(&self, session: &mut ProbeSession<'_>) -> Result<Vec<OutLabel>, ProbeError> {
        let mut transcript = vec![session.queried().clone()];
        loop {
            match self.0.decide(session.n(), &transcript) {
                ProbeDecision::Probe { j, port } => {
                    let info = session.probe(j, port)?;
                    transcript.push(info);
                }
                ProbeDecision::Output(labels) => return Ok(labels),
            }
        }
    }

    fn name(&self) -> &str {
        self.0.name()
    }
}

/// The canonicalization `A'` of the Theorem 4.1 proof: before every
/// decision, identifiers in the transcript are replaced by canonical
/// representatives preserving their relative order (dense ranks). If the
/// wrapped algorithm is order-invariant (Definition 2.10), `A'` computes
/// the same outputs; and `A'` is order-invariant *by construction*.
#[derive(Clone, Debug)]
pub struct Canonicalized<A>(pub A);

/// Dense order-preserving re-identification: equal ids stay equal, order
/// is preserved, values become `0..k`.
pub fn canonical_transcript(transcript: &[NodeInfo]) -> Vec<NodeInfo> {
    let mut ids: Vec<u64> = transcript.iter().map(|t| t.id).collect();
    ids.sort_unstable();
    ids.dedup();
    transcript
        .iter()
        .map(|t| NodeInfo {
            id: ids.binary_search(&t.id).expect("id present") as u64,
            degree: t.degree,
            inputs: t.inputs.clone(),
        })
        .collect()
}

impl<A: TranscriptAlgorithm> TranscriptAlgorithm for Canonicalized<A> {
    fn probe_budget(&self, n: usize) -> usize {
        self.0.probe_budget(n)
    }

    fn decide(&self, n: usize, transcript: &[NodeInfo]) -> ProbeDecision {
        self.0.decide(n, &canonical_transcript(transcript))
    }

    fn name(&self) -> &str {
        self.0.name()
    }
}

/// The Theorem 2.11 construction: the fooled algorithm
/// `f^{A'}_{n,i} := f^{A}_{min(n,n₀),i}` — every query behaves as if the
/// graph had `min(n, n₀)` nodes, so the probe complexity is the constant
/// `T(n₀)` for all `n ≥ n₀`.
#[derive(Clone, Debug)]
pub struct Fooled<A> {
    inner: A,
    n0: usize,
}

/// Wraps an algorithm with the Theorem 2.11 fooling at `n₀`.
pub fn fool<A>(inner: A, n0: usize) -> Fooled<A> {
    Fooled { inner, n0 }
}

impl<A: TranscriptAlgorithm> TranscriptAlgorithm for Fooled<A> {
    fn probe_budget(&self, n: usize) -> usize {
        self.inner.probe_budget(n.min(self.n0))
    }

    fn decide(&self, n: usize, transcript: &[NodeInfo]) -> ProbeDecision {
        self.inner.decide(n.min(self.n0), transcript)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// Runs the full Theorem 4.1 pipeline object
/// `fool(Canonicalized(A), n₀)` over a graph.
///
/// # Errors
///
/// Propagates the first [`ProbeError`] of any query — a fooled algorithm
/// that probes past its capped budget surfaces here instead of panicking.
pub fn run_fooled_volume<A>(
    alg: &A,
    n0: usize,
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
) -> Result<VolumeRun, ProbeError>
where
    A: TranscriptAlgorithm + Clone,
{
    let pipeline = TranscriptAsVolume(fool(Canonicalized(alg.clone()), n0));
    run_volume(&pipeline, graph, input, ids, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::gen;

    /// Probe both cycle neighbors; output 1 iff the queried node's id is a
    /// local minimum. Order-invariant and 2 probes.
    #[derive(Clone)]
    struct LocalMin;

    impl TranscriptAlgorithm for LocalMin {
        fn probe_budget(&self, _n: usize) -> usize {
            2
        }

        fn decide(&self, _n: usize, t: &[NodeInfo]) -> ProbeDecision {
            match t.len() {
                1 => ProbeDecision::Probe { j: 0, port: 0 },
                2 => ProbeDecision::Probe { j: 0, port: 1 },
                _ => {
                    let me = t[0].id;
                    let is_min = me < t[1].id && me < t[2].id;
                    ProbeDecision::Output(vec![OutLabel(u32::from(is_min)); t[0].degree as usize])
                }
            }
        }
    }

    #[test]
    fn transcript_adapter_matches_semantics() {
        let g = gen::cycle(8);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::from_vec(vec![5, 3, 9, 1, 7, 2, 8, 6]);
        let run =
            run_volume(&TranscriptAsVolume(LocalMin), &g, &input, &ids, None).expect("in budget");
        assert_eq!(run.max_probes, 2);
        // Node 3 (id 1) is a local min; node 0 (id 5) is not.
        let h = g.half_edge(lcl_graph::NodeId(3), 0);
        assert_eq!(run.output.get(h), OutLabel(1));
        let h = g.half_edge(lcl_graph::NodeId(0), 0);
        assert_eq!(run.output.get(h), OutLabel(0));
    }

    #[test]
    fn canonicalization_preserves_order_invariant_outputs() {
        let g = gen::cycle(8);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::random_polynomial(8, 3, 4);
        let raw =
            run_volume(&TranscriptAsVolume(LocalMin), &g, &input, &ids, None).expect("in budget");
        let canon = run_volume(
            &TranscriptAsVolume(Canonicalized(LocalMin)),
            &g,
            &input,
            &ids,
            None,
        )
        .expect("in budget");
        assert_eq!(raw.output, canon.output);
    }

    #[test]
    fn canonical_transcript_is_dense_and_order_preserving() {
        let t = vec![
            NodeInfo {
                id: 50,
                degree: 2,
                inputs: vec![],
            },
            NodeInfo {
                id: 10,
                degree: 2,
                inputs: vec![],
            },
            NodeInfo {
                id: 50,
                degree: 2,
                inputs: vec![],
            },
        ];
        let c = canonical_transcript(&t);
        assert_eq!(c[0].id, 1);
        assert_eq!(c[1].id, 0);
        assert_eq!(c[2].id, 1);
    }

    #[test]
    fn fooled_algorithm_has_constant_probes() {
        // A budget that grows with n...
        #[derive(Clone)]
        struct Growing;
        impl TranscriptAlgorithm for Growing {
            fn probe_budget(&self, n: usize) -> usize {
                n / 2
            }
            fn decide(&self, n: usize, t: &[NodeInfo]) -> ProbeDecision {
                // Walk along port 0 for budget steps.
                if t.len() <= self.probe_budget(n) {
                    ProbeDecision::Probe {
                        j: t.len() - 1,
                        port: 0,
                    }
                } else {
                    ProbeDecision::Output(vec![OutLabel(0); t[0].degree as usize])
                }
            }
        }
        let g = gen::cycle(64);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(64);
        // ...is capped at T(n₀) by fooling.
        let run = run_fooled_volume(&Growing, 8, &g, &input, &ids).expect("in budget");
        assert_eq!(run.max_probes, 4);
        let raw =
            run_volume(&TranscriptAsVolume(Growing), &g, &input, &ids, None).expect("in budget");
        assert_eq!(raw.max_probes, 32);
    }

    #[test]
    fn fooled_local_min_is_still_correct() {
        // LocalMin's semantics do not depend on n, so fooling preserves
        // outputs exactly — the situation of Theorem 2.11's conclusion.
        let g = gen::cycle(16);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::random_polynomial(16, 3, 9);
        let plain =
            run_volume(&TranscriptAsVolume(LocalMin), &g, &input, &ids, None).expect("in budget");
        let fooled = run_fooled_volume(&LocalMin, 4, &g, &input, &ids).expect("in budget");
        assert_eq!(plain.output, fooled.output);
        assert_eq!(fooled.max_probes, 2);
    }
}
