//! Interning of label sets: every distinct sorted sequence of parent-label
//! ids is stored once and addressed by a dense `u32` id.
//!
//! Derived levels of the round-elimination tower have labels that *are*
//! sets (of parent labels), and both the tower construction and the
//! [`derived`](crate::derived) algorithms repeatedly ask "which label is
//! this set?". With an interner that query is one hash lookup, and
//! set-equality between interned sets is an integer comparison — instead
//! of the linear scans with deep `Vec`/`BTreeSet` compares the engine
//! previously did per half-edge.

use std::collections::HashMap;

/// A deduplicating store of sorted `u32` sequences with dense ids.
///
/// Ids are assigned in insertion order, so an interner rebuilt from the
/// same insertion sequence assigns identical ids — the property the
/// parallel engine relies on for determinism.
///
/// # Examples
///
/// ```
/// use lcl_core::interner::LabelInterner;
///
/// let mut interner = LabelInterner::new();
/// let ab = interner.intern(&[0, 1]);
/// assert_eq!(interner.intern(&[0, 1]), ab); // deduplicated
/// assert_eq!(interner.lookup(&[0, 1]), Some(ab));
/// assert_eq!(interner.lookup(&[2]), None);
/// assert_eq!(interner.members(ab), &[0, 1]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct LabelInterner {
    sets: Vec<Vec<u32>>,
    index: HashMap<Vec<u32>, u32>,
}

impl LabelInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of interned sets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The id of `members` if it has been interned.
    pub fn lookup(&self, members: &[u32]) -> Option<u32> {
        self.index.get(members).copied()
    }

    /// Interns `members` (which must be sorted and duplicate-free),
    /// returning its id — existing on a repeat, fresh otherwise.
    pub fn intern(&mut self, members: &[u32]) -> u32 {
        debug_assert!(members.windows(2).all(|w| w[0] < w[1]), "sorted sets only");
        if let Some(&id) = self.index.get(members) {
            return id;
        }
        let id = self.sets.len() as u32;
        self.index.insert(members.to_vec(), id);
        self.sets.push(members.to_vec());
        id
    }

    /// Interns `members` like [`intern`](Self::intern), but refuses to
    /// grow past `cap` sets: returns `None` when `members` is fresh and
    /// the interner is already at the cap. One hash probe for duplicates
    /// — the common case when the tower interns per-input candidate
    /// batches — instead of the lookup-then-intern double probe.
    pub fn try_intern(&mut self, members: &[u32], cap: usize) -> Option<u32> {
        debug_assert!(members.windows(2).all(|w| w[0] < w[1]), "sorted sets only");
        if let Some(&id) = self.index.get(members) {
            return Some(id);
        }
        if self.sets.len() >= cap {
            return None;
        }
        let id = self.sets.len() as u32;
        self.index.insert(members.to_vec(), id);
        self.sets.push(members.to_vec());
        Some(id)
    }

    /// The member sequence of an interned id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by this interner.
    pub fn members(&self, id: u32) -> &[u32] {
        &self.sets[id as usize]
    }

    /// Iterates `(id, members)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[u32])> {
        self.sets
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.as_slice()))
    }

    /// Rebuilds the interner keeping only the sets whose current ids are
    /// listed in `keep` (ascending), reassigning dense ids in that order.
    pub fn retain_ids(&self, keep: &[usize]) -> LabelInterner {
        let mut out = LabelInterner::new();
        for &old in keep {
            out.intern(&self.sets[old]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates_and_preserves_order() {
        let mut interner = LabelInterner::new();
        assert!(interner.is_empty());
        let a = interner.intern(&[3]);
        let b = interner.intern(&[1, 2]);
        assert_eq!(interner.intern(&[3]), a);
        assert_eq!((a, b), (0, 1));
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.members(b), &[1, 2]);
        let pairs: Vec<(u32, Vec<u32>)> = interner.iter().map(|(i, s)| (i, s.to_vec())).collect();
        assert_eq!(pairs, vec![(0, vec![3]), (1, vec![1, 2])]);
    }

    #[test]
    fn lookup_distinguishes_missing_sets() {
        let mut interner = LabelInterner::new();
        interner.intern(&[0, 2]);
        assert_eq!(interner.lookup(&[0, 2]), Some(0));
        assert_eq!(interner.lookup(&[0]), None);
        assert_eq!(interner.lookup(&[0, 1, 2]), None);
    }

    #[test]
    fn retain_reassigns_dense_ids() {
        let mut interner = LabelInterner::new();
        for set in [&[0u32][..], &[1], &[0, 1], &[2]] {
            interner.intern(set);
        }
        let kept = interner.retain_ids(&[1, 3]);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept.members(0), &[1]);
        assert_eq!(kept.members(1), &[2]);
        assert_eq!(kept.lookup(&[0, 1]), None);
    }

    #[test]
    fn try_intern_respects_the_cap_but_always_finds_duplicates() {
        let mut interner = LabelInterner::new();
        assert_eq!(interner.try_intern(&[0], 2), Some(0));
        assert_eq!(interner.try_intern(&[1], 2), Some(1));
        // At the cap: fresh sets are refused, duplicates still resolve.
        assert_eq!(interner.try_intern(&[2], 2), None);
        assert_eq!(interner.try_intern(&[0], 2), Some(0));
        assert_eq!(interner.len(), 2);
        // Ids match a plain-intern replay of the accepted sequence.
        let mut replay = LabelInterner::new();
        assert_eq!(replay.intern(&[0]), 0);
        assert_eq!(replay.intern(&[1]), 1);
    }

    #[test]
    fn rebuilding_from_same_sequence_gives_same_ids() {
        let sets: Vec<Vec<u32>> = (0..50u32).map(|i| vec![i, i + 1, i + 50]).collect();
        let mut a = LabelInterner::new();
        let mut b = LabelInterner::new();
        let ids_a: Vec<u32> = sets.iter().map(|s| a.intern(s)).collect();
        let ids_b: Vec<u32> = sets.iter().map(|s| b.intern(s)).collect();
        assert_eq!(ids_a, ids_b);
    }
}
