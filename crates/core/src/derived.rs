//! The executable heart of Section 3.2: deriving the algorithms `A_½`
//! (for `R(Π)`) and `A'` (for `R̄(R(Π))`) from a randomized algorithm `A`
//! for `Π`, exactly as in the proof of Theorem 3.4 — including the
//! *simulation step* over all possible topology/input extensions beyond a
//! view, which is the paper's technical extension of round elimination to
//! irregular graphs with inputs.
//!
//! Implemented for one-round algorithms (`T = 1`), the first interesting
//! case: `A_½` runs at radius "one half" (an edge sees its two endpoints)
//! and `A'` at radius 0. The constructions follow the definitions
//! literally:
//!
//! * `A_½` on half-edge `(u, e)` outputs the **set** of labels `ℓ` such
//!   that *some* extension of the topology and inputs beyond `B(e, ½)`
//!   gives `P[A outputs ℓ | bits of u, v] ≥ K`;
//! * `A'` on `(u, e)` outputs the set of `R(Π)`-labels `ℓ'` such that
//!   some extension beyond `B(u, 0)` gives `P[A_½ outputs ℓ' | bits of
//!   u] ≥ L`.
//!
//! Probabilities are estimated by (deterministically seeded) Monte Carlo;
//! the derived labelings are verified against the predicate constraints
//! of [`ReTower`] levels 1 and 2, and the measured local failure
//! probabilities are compared against the Theorem 3.4 bound in the
//! `re_failure_prob` experiment (E6).

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

use lcl::{HalfEdgeLabeling, InLabel, OutLabel};
use lcl_graph::Graph;
use lcl_rng::SmallRng;

use crate::par;
use crate::tower::{ReError, ReTower};

/// The locally visible data of one node: degree and per-port inputs (the
/// paper's `Tuples` entry, minus the identifier — `A` is randomized).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LocalInfo {
    /// Node degree.
    pub degree: u8,
    /// Input labels in port order.
    pub inputs: Vec<InLabel>,
}

/// A neighbor as seen across one edge: its local data plus the port at
/// which the shared edge arrives there.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct NeighborInfo {
    /// The neighbor's local data.
    pub info: LocalInfo,
    /// The neighbor's port of the shared edge.
    pub rev_port: u8,
}

/// A randomized one-round LOCAL algorithm in explicit form: the output is
/// a function of the center's data, its random bits, and each neighbor's
/// data and bits. (`Sync` because derived runs fan nodes out over
/// threads.)
pub trait OneRoundAlgorithm: Sync {
    /// Output labels for the center's ports.
    fn label(
        &self,
        me: &LocalInfo,
        my_bits: u64,
        neighbors: &[(NeighborInfo, u64)],
    ) -> Vec<OutLabel>;

    /// A short name for diagnostics.
    fn name(&self) -> &str {
        "anonymous"
    }
}

/// Tuning knobs for the derivation.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DerivedOptions {
    /// The threshold `K` of the `A_½` definition.
    pub k_threshold: f64,
    /// The threshold `L` of the `A'` definition.
    pub l_threshold: f64,
    /// Monte-Carlo samples for each conditional probability.
    pub samples: u32,
    /// Worker threads for whole-graph runs (`0` = all available cores;
    /// the outputs do not depend on the thread count).
    pub threads: usize,
}

impl DerivedOptions {
    /// The proof's choices `K = p^{1/3}` and `L = (p*)^{1/(Δ+1)}` where
    /// `p* = 2Δ(s + |Σ_out|) p^{1/3}` (Lemmas 3.7/3.8).
    pub fn from_target_failure(p: f64, delta: u8, s: f64, sigma_out: usize) -> Self {
        let k = p.powf(1.0 / 3.0);
        let p_star = (2.0 * f64::from(delta) * (s + sigma_out as f64) * k).min(1.0);
        let l = p_star.powf(1.0 / (f64::from(delta) + 1.0));
        Self {
            k_threshold: k,
            l_threshold: l,
            samples: 256,
            threads: 0,
        }
    }
}

/// All possible one-hop extensions: the values a neighbor behind an
/// unseen port can take (degree, arrival port, inputs) — the finite
/// enumeration the paper bounds by `(3 |Σ_in|)^{2Δ^{T+1}}`.
pub fn enumerate_neighbor_infos(delta: u8, sigma_in: usize) -> Vec<NeighborInfo> {
    // Shard by degree: each degree's block is independent, and
    // concatenating in degree order reproduces the sequential output.
    let threads = par::resolve_threads(0);
    let blocks = par::par_map_indexed(delta as usize, threads, |d| {
        let degree = (d + 1) as u8;
        let mut block = Vec::new();
        let mut inputs = vec![0usize; degree as usize];
        loop {
            for rev_port in 0..degree {
                block.push(NeighborInfo {
                    info: LocalInfo {
                        degree,
                        inputs: inputs.iter().map(|&i| InLabel(i as u32)).collect(),
                    },
                    rev_port,
                });
            }
            // Mixed-radix increment over the inputs.
            let mut pos = 0;
            loop {
                if pos == degree as usize {
                    break;
                }
                inputs[pos] += 1;
                if inputs[pos] < sigma_in {
                    break;
                }
                inputs[pos] = 0;
                pos += 1;
            }
            if pos == degree as usize {
                break;
            }
        }
        block
    });
    blocks.into_iter().flatten().collect()
}

fn stable_seed<T: Hash>(value: &T, salt: u64) -> u64 {
    let mut h = DefaultHasher::new();
    salt.hash(&mut h);
    value.hash(&mut h);
    h.finish()
}

/// The derivation context: the base algorithm plus the problem's
/// structural parameters.
pub struct Derivation<'a, A> {
    base: &'a A,
    delta: u8,
    sigma_in: usize,
    sigma_out: usize,
    opts: DerivedOptions,
    extensions: Vec<NeighborInfo>,
}

impl<'a, A: OneRoundAlgorithm> Derivation<'a, A> {
    /// Sets up a derivation for an algorithm over the given alphabet
    /// sizes.
    pub fn new(
        base: &'a A,
        delta: u8,
        sigma_in: usize,
        sigma_out: usize,
        opts: DerivedOptions,
    ) -> Self {
        let extensions = enumerate_neighbor_infos(delta, sigma_in);
        Self {
            base,
            delta,
            sigma_in,
            sigma_out,
            opts,
            extensions,
        }
    }

    /// The number of one-hop extensions per unseen port.
    pub fn extension_count(&self) -> usize {
        self.extensions.len()
    }

    /// `A_½` on half-edge `(u, e)`: the set of labels some extension
    /// makes likely (`≥ K`), conditioned on the bits of `u` and `v`.
    ///
    /// Deterministic: the Monte-Carlo seeds derive from the arguments.
    pub fn a_half(
        &self,
        u: &LocalInfo,
        bits_u: u64,
        port: u8,
        v: &NeighborInfo,
        bits_v: u64,
    ) -> BTreeSet<OutLabel> {
        let mut result = BTreeSet::new();
        // Extensions assign a NeighborInfo to each port of u other than
        // `port`. Extensions are sampled exhaustively if few ports,
        // independently per port otherwise (the per-port product is the
        // paper's enumeration; independence across ports holds on
        // forests).
        let other_ports: Vec<u8> = (0..u.degree).filter(|&p| p != port).collect();
        let mut extension_ids = vec![0usize; other_ports.len()];
        loop {
            // Monte Carlo over the bits of the extension neighbors.
            let mut counts: BTreeMap<OutLabel, u32> = BTreeMap::new();
            let seed = stable_seed(&(u, bits_u, port, v, bits_v, &extension_ids), 0x5eed);
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..self.opts.samples {
                let neighbors: Vec<(NeighborInfo, u64)> = (0..u.degree)
                    .map(|p| {
                        if p == port {
                            (v.clone(), bits_v)
                        } else {
                            let slot = other_ports
                                .iter()
                                .position(|&q| q == p)
                                .expect("other port");
                            (self.extensions[extension_ids[slot]].clone(), rng.gen())
                        }
                    })
                    .collect();
                let out = self.base.label(u, bits_u, &neighbors);
                *counts.entry(out[port as usize]).or_insert(0) += 1;
            }
            for (label, count) in counts {
                if f64::from(count) >= self.opts.k_threshold * f64::from(self.opts.samples) {
                    result.insert(label);
                }
            }
            // Next extension assignment (mixed radix).
            let mut pos = 0;
            loop {
                if pos == extension_ids.len() {
                    break;
                }
                extension_ids[pos] += 1;
                if extension_ids[pos] < self.extensions.len() {
                    break;
                }
                extension_ids[pos] = 0;
                pos += 1;
            }
            if pos == extension_ids.len() {
                break;
            }
        }
        result
    }

    /// `A'` on half-edge `(u, e)` at port `port`: the set of
    /// `R(Π)`-labels (sets of base labels) some extension of the edge's
    /// other endpoint makes likely (`≥ L`), conditioned on the bits of
    /// `u` alone.
    pub fn a_prime(&self, u: &LocalInfo, bits_u: u64, port: u8) -> BTreeSet<Vec<OutLabel>> {
        let mut result = BTreeSet::new();
        for v in &self.extensions {
            let mut counts: BTreeMap<Vec<OutLabel>, u32> = BTreeMap::new();
            let seed = stable_seed(&(u, bits_u, port, v), 0x9a17);
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..self.opts.samples {
                let bits_v: u64 = rng.gen();
                let set = self.a_half(u, bits_u, port, v, bits_v);
                counts
                    .entry(set.into_iter().collect::<Vec<_>>())
                    .and_modify(|c| *c += 1)
                    .or_insert(1);
            }
            for (set, count) in counts {
                if f64::from(count) >= self.opts.l_threshold * f64::from(self.opts.samples) {
                    result.insert(set);
                }
            }
        }
        result
    }

    /// Runs `A` on a concrete forest (bits drawn from `seed`).
    pub fn run_base(
        &self,
        graph: &Graph,
        input: &HalfEdgeLabeling<InLabel>,
        seed: u64,
    ) -> HalfEdgeLabeling<OutLabel> {
        let bits = node_bits(graph, seed);
        self.run_per_node(graph, |node| {
            let me = local_info(graph, input, node);
            let neighbors: Vec<(NeighborInfo, u64)> = graph
                .half_edges_of(node)
                .map(|h| {
                    let w = graph.neighbor(h);
                    (
                        NeighborInfo {
                            info: local_info(graph, input, w),
                            rev_port: graph.port_of(graph.twin(h)),
                        },
                        bits[w.index()],
                    )
                })
                .collect();
            Ok(self.base.label(&me, bits[node.index()], &neighbors))
        })
        .expect("base runs cannot fail")
    }

    /// Runs `A_½` on a concrete forest, producing level-1 tower labels.
    /// Nodes are independent, so the run fans out over threads
    /// ([`DerivedOptions::threads`]); the result is thread-count
    /// invariant.
    ///
    /// # Errors
    ///
    /// [`ReError::LabelOutsideUniverse`] if a produced set is not a
    /// level-1 label of `tower` (build the tower with `restrict: false`
    /// to make every producible set a label).
    pub fn run_a_half(
        &self,
        tower: &ReTower,
        graph: &Graph,
        input: &HalfEdgeLabeling<InLabel>,
        seed: u64,
    ) -> Result<HalfEdgeLabeling<OutLabel>, ReError> {
        let bits = node_bits(graph, seed);
        self.run_per_node(graph, |node| {
            let me = local_info(graph, input, node);
            graph
                .half_edges_of(node)
                .map(|h| {
                    let w = graph.neighbor(h);
                    let v = NeighborInfo {
                        info: local_info(graph, input, w),
                        rev_port: graph.port_of(graph.twin(h)),
                    };
                    let set = self.a_half(
                        &me,
                        bits[node.index()],
                        graph.port_of(h),
                        &v,
                        bits[w.index()],
                    );
                    intern_level1(tower, &set)
                })
                .collect()
        })
    }

    /// Runs `A'` on a concrete forest, producing level-2 tower labels.
    ///
    /// # Errors
    ///
    /// As [`run_a_half`](Self::run_a_half), at level 2.
    pub fn run_a_prime(
        &self,
        tower: &ReTower,
        graph: &Graph,
        input: &HalfEdgeLabeling<InLabel>,
        seed: u64,
    ) -> Result<HalfEdgeLabeling<OutLabel>, ReError> {
        let bits = node_bits(graph, seed);
        self.run_per_node(graph, |node| {
            let me = local_info(graph, input, node);
            (0..graph.degree(node))
                .map(|port| {
                    let family = self.a_prime(&me, bits[node.index()], port);
                    intern_level2(tower, &family)
                })
                .collect()
        })
    }

    /// Fans a per-node labeling function out over threads and assembles
    /// the half-edge labeling, short-circuiting on the first error (in
    /// node order, so the reported failure is deterministic too).
    fn run_per_node(
        &self,
        graph: &Graph,
        label_node: impl Fn(lcl_graph::NodeId) -> Result<Vec<OutLabel>, ReError> + Sync,
    ) -> Result<HalfEdgeLabeling<OutLabel>, ReError> {
        let threads = par::resolve_threads(self.opts.threads);
        let per_node = par::par_map_indexed(graph.node_count(), threads, |i| {
            label_node(lcl_graph::NodeId(i as u32))
        });
        let mut rows = Vec::with_capacity(per_node.len());
        for row in per_node {
            rows.push(row?);
        }
        Ok(HalfEdgeLabeling::from_node_fn(graph, |node| {
            std::mem::take(&mut rows[node.index()])
        }))
    }

    /// The structural parameters, for bound computations.
    pub fn parameters(&self) -> (u8, usize, usize) {
        (self.delta, self.sigma_in, self.sigma_out)
    }
}

fn node_bits(graph: &Graph, seed: u64) -> Vec<u64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..graph.node_count()).map(|_| rng.gen()).collect()
}

fn local_info(
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    node: lcl_graph::NodeId,
) -> LocalInfo {
    LocalInfo {
        degree: graph.degree(node),
        inputs: graph.half_edges_of(node).map(|h| input.get(h)).collect(),
    }
}

/// Finds the level-1 (that is, `R(Π)`) tower label whose member set is
/// `set` — one interner lookup; empty sets map to an arbitrary label
/// (they are failures anyway).
fn intern_level1(tower: &ReTower, set: &BTreeSet<OutLabel>) -> Result<OutLabel, ReError> {
    if set.is_empty() {
        return Ok(OutLabel(0));
    }
    let members: Vec<u32> = set.iter().map(|l| l.0).collect();
    tower
        .lookup_label(1, &members)
        .ok_or(ReError::LabelOutsideUniverse { level: 1, members })
}

/// Finds the level-2 (that is, `R̄(R(Π))`) tower label whose members are
/// the level-1 labels of the given family of sets.
fn intern_level2(tower: &ReTower, family: &BTreeSet<Vec<OutLabel>>) -> Result<OutLabel, ReError> {
    if family.is_empty() {
        return Ok(OutLabel(0));
    }
    let mut members = Vec::with_capacity(family.len());
    for set in family {
        let set: BTreeSet<OutLabel> = set.iter().copied().collect();
        members.push(intern_level1(tower, &set)?.0);
    }
    members.sort_unstable();
    members.dedup();
    tower
        .lookup_label(2, &members)
        .ok_or(ReError::LabelOutsideUniverse { level: 2, members })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tower::ReOptions;
    use lcl::LclProblem;
    use lcl_graph::gen;

    /// Randomized anti-matching: on edge e, endpoint with the larger
    /// `k`-bit coin outputs X, the other Y; ties make both output X (a
    /// failure). Local failure probability ≈ 2^{-k} per edge.
    struct CoinOrient {
        k: u32,
    }

    impl OneRoundAlgorithm for CoinOrient {
        fn label(
            &self,
            me: &LocalInfo,
            my_bits: u64,
            neighbors: &[(NeighborInfo, u64)],
        ) -> Vec<OutLabel> {
            let mask = (1u64 << self.k) - 1;
            (0..me.degree as usize)
                .map(|p| {
                    let mine = my_bits & mask;
                    let theirs = neighbors[p].1 & mask;
                    OutLabel(u32::from(mine < theirs)) // 0 = X, 1 = Y
                })
                .collect()
        }
    }

    fn anti_matching() -> LclProblem {
        LclProblem::parse("max-degree: 2\nnodes:\nX* Y*\nedges:\nX Y\n").unwrap()
    }

    fn unrestricted_tower(p: &LclProblem) -> ReTower {
        let mut tower = ReTower::new(p.clone());
        tower
            .push_f(ReOptions {
                restrict: false,
                ..ReOptions::default()
            })
            .unwrap();
        tower
    }

    #[test]
    fn extension_enumeration_counts() {
        // Δ = 2, |Σ_in| = 1: degrees 1 (1 input combo × 1 port) and
        // 2 (1 combo × 2 ports) = 3 extensions.
        assert_eq!(enumerate_neighbor_infos(2, 1).len(), 3);
        // Δ = 2, |Σ_in| = 2: degree 1: 2 combos; degree 2: 4 combos × 2
        // ports = 8; total 10.
        assert_eq!(enumerate_neighbor_infos(2, 2).len(), 10);
    }

    #[test]
    fn a_half_contains_the_likely_labels() {
        let alg = CoinOrient { k: 8 };
        let d = Derivation::new(
            &alg,
            2,
            1,
            2,
            DerivedOptions {
                k_threshold: 0.3,
                l_threshold: 0.3,
                samples: 64,
                threads: 0,
            },
        );
        let u = LocalInfo {
            degree: 2,
            inputs: vec![InLabel(0); 2],
        };
        let v = NeighborInfo {
            info: u.clone(),
            rev_port: 0,
        };
        // Conditioned on both endpoints' bits, the output on the shared
        // edge is deterministic: a singleton set.
        let set = d.a_half(&u, 7, 1, &v, 9000);
        assert_eq!(set.len(), 1);
        // 7 < 9000 in the low 8 bits → u outputs Y (label 1).
        assert!(set.contains(&OutLabel(1)));
    }

    #[test]
    fn a_prime_collects_both_orientations() {
        let alg = CoinOrient { k: 8 };
        let d = Derivation::new(
            &alg,
            2,
            1,
            2,
            DerivedOptions {
                k_threshold: 0.3,
                l_threshold: 0.2,
                samples: 64,
                threads: 0,
            },
        );
        let u = LocalInfo {
            degree: 2,
            inputs: vec![InLabel(0); 2],
        };
        // Unconditioned on the neighbor's bits, both orientations are
        // likely: A' should contain both singletons {X} and {Y}.
        let family = d.a_prime(&u, 12345, 0);
        assert!(family.contains(&vec![OutLabel(0)]));
        assert!(family.contains(&vec![OutLabel(1)]));
    }

    #[test]
    fn derived_runs_validate_against_tower_levels() {
        let problem = anti_matching();
        let tower = unrestricted_tower(&problem);
        let alg = CoinOrient { k: 16 };
        let d = Derivation::new(
            &alg,
            2,
            1,
            2,
            DerivedOptions {
                k_threshold: 0.3,
                l_threshold: 0.2,
                samples: 48,
                threads: 0,
            },
        );
        let g = gen::path(6);
        let input = lcl::uniform_input(&g);
        // A and its derivations are randomized and only correct with high
        // probability; this seed succeeds (many do — the derivations also
        // fail for some, which is expected of the construction).
        let seed = 3;

        // A solves Π with low failure.
        let base_out = d.run_base(&g, &input, seed);
        let base_violations = lcl::verify(&problem, &g, &input, &base_out);
        assert!(base_violations.is_empty(), "{base_violations:?}");

        // A_½ solves R(Π).
        let half_out = d.run_a_half(&tower, &g, &input, seed).unwrap();
        let r_level = tower.level(1);
        let half_violations = lcl::verify(&r_level, &g, &input, &half_out);
        assert!(half_violations.is_empty(), "{half_violations:?}");

        // A' solves R̄(R(Π)).
        let prime_out = d.run_a_prime(&tower, &g, &input, seed).unwrap();
        let f_level = tower.level(2);
        let prime_violations = lcl::verify(&f_level, &g, &input, &prime_out);
        assert!(prime_violations.is_empty(), "{prime_violations:?}");
    }

    #[test]
    fn derived_runs_are_thread_count_invariant() {
        let problem = anti_matching();
        let tower = unrestricted_tower(&problem);
        let alg = CoinOrient { k: 8 };
        let opts = DerivedOptions {
            k_threshold: 0.3,
            l_threshold: 0.2,
            samples: 32,
            threads: 1,
        };
        let g = gen::path(5);
        let input = lcl::uniform_input(&g);
        let one = Derivation::new(&alg, 2, 1, 2, opts);
        let four = Derivation::new(&alg, 2, 1, 2, DerivedOptions { threads: 4, ..opts });
        for seed in [3u64, 11] {
            assert_eq!(
                one.run_a_half(&tower, &g, &input, seed).unwrap(),
                four.run_a_half(&tower, &g, &input, seed).unwrap()
            );
            assert_eq!(
                one.run_a_prime(&tower, &g, &input, seed).unwrap(),
                four.run_a_prime(&tower, &g, &input, seed).unwrap()
            );
        }
    }

    /// Always outputs label 1 (`Y`) — a wrong algorithm whose `A_½` sets
    /// fall outside restricted universes.
    struct ConstY;

    impl OneRoundAlgorithm for ConstY {
        fn label(
            &self,
            me: &LocalInfo,
            _my_bits: u64,
            _neighbors: &[(NeighborInfo, u64)],
        ) -> Vec<OutLabel> {
            vec![OutLabel(1); me.degree as usize]
        }
    }

    #[test]
    fn labels_outside_a_restricted_universe_are_reported_not_fatal() {
        // Only X-X edges are valid, so restriction prunes R(Π) down to
        // {{X}} — and an algorithm that insists on Y produces the set {Y},
        // which is not a label of the restricted level.
        let p = LclProblem::parse("max-degree: 2\nnodes:\nX*\nY*\nedges:\nX X\n").unwrap();
        let mut tower = ReTower::new(p);
        tower.push_f(ReOptions::default()).unwrap();
        assert_eq!(tower.lookup_label(1, &[1]), None);
        let d = Derivation::new(
            &ConstY,
            2,
            1,
            2,
            DerivedOptions {
                k_threshold: 0.3,
                l_threshold: 0.2,
                samples: 16,
                threads: 0,
            },
        );
        let g = gen::path(4);
        let input = lcl::uniform_input(&g);
        let err = d.run_a_half(&tower, &g, &input, 1).unwrap_err();
        assert_eq!(
            err,
            ReError::LabelOutsideUniverse {
                level: 1,
                members: vec![1]
            }
        );
        // A' fails the same way (its family members intern via level 1).
        let err = d.run_a_prime(&tower, &g, &input, 1).unwrap_err();
        assert!(matches!(err, ReError::LabelOutsideUniverse { .. }));
    }

    #[test]
    fn derived_options_follow_the_proof_choices() {
        let opts = DerivedOptions::from_target_failure(1e-6, 3, 100.0, 4);
        assert!((opts.k_threshold - 1e-2).abs() < 1e-9);
        // p* saturates at 1 here, so L = 1 (a vacuous threshold).
        assert!(opts.l_threshold > 0.0 && opts.l_threshold <= 1.0);
        // With a much smaller target failure, L becomes meaningful.
        let tight = DerivedOptions::from_target_failure(1e-30, 3, 100.0, 4);
        assert!(tight.l_threshold < 1.0);
        assert!(tight.k_threshold < opts.k_threshold);
    }
}
