//! The quantitative side of Theorem 3.4: the blow-up factor `S`, the local
//! failure probability recurrence `p ↦ S · p^{1/(3Δ+3)}`, and the `n₀`
//! feasibility conditions (3.2)–(3.4) of the Theorem 3.10 proof.
//!
//! All computations saturate instead of overflowing: the quantities are
//! power towers and the interesting question is usually whether a bound is
//! below 1 (meaningful) or astronomically large (vacuous).

use lcl_graph::math::{log_star, power_tower};

/// The simulation-count parameter
/// `s = (3 |Σ_in|)^{2 Δ^{T+1}}` of Lemmas 3.5–3.8, as a saturating `f64`.
pub fn simulation_count(sigma_in: usize, delta: u8, t: u32) -> f64 {
    let exponent = 2.0 * f64::from(delta).powi(t as i32 + 1);
    ((3.0 * sigma_in as f64).ln() * exponent).exp()
}

/// The blow-up factor
/// `S = (10 Δ (|Σ_in| + max{|Σ_out^Π|, |Σ_out^{R(Π)}|}))^{4 Δ^{T+1}}`
/// of Theorem 3.4, as a saturating `f64`.
pub fn blowup_factor(sigma_in: usize, sigma_out_max: usize, delta: u8, t: u32) -> f64 {
    let base = 10.0 * f64::from(delta) * (sigma_in as f64 + sigma_out_max as f64);
    let exponent = 4.0 * f64::from(delta).powi(t as i32 + 1);
    (base.ln() * exponent).exp()
}

/// One application of Theorem 3.4: the local failure probability of the
/// derived algorithm, `min(1, S · p^{1/(3Δ+3)})`.
pub fn step_bound(p: f64, s: f64, delta: u8) -> f64 {
    let exponent = 1.0 / (3.0 * f64::from(delta) + 3.0);
    (s * p.powf(exponent)).min(1.0)
}

/// Iterates [`step_bound`] `steps` times starting from `p`, with a fixed
/// bound `s_star` on the blow-up factor (the proof of Theorem 3.10 uses
/// the uniform bound `S*`).
pub fn failure_after_steps(p: f64, s_star: f64, delta: u8, steps: u32) -> f64 {
    let mut q = p;
    for _ in 0..steps {
        q = step_bound(q, s_star, delta);
    }
    q
}

/// The power-tower upper bound of the Theorem 3.10 proof on
/// `max{|Σ_out^{f^i(Π)}|, |Σ_out^{R(f^i(Π))}|}`: a tower of 2s of height
/// `2 T(n₀) + 3` topped by `|Σ_out^Π|` (saturating).
pub fn label_growth_bound(sigma_out: usize, t_n0: u32) -> u64 {
    power_tower(2 * t_n0 + 3, sigma_out as u64)
}

/// `log*` of `n₀ = 2^log2_n0`: one more than `log*` of the exponent.
fn log_star_of_pow2(log2_n0: u64) -> u32 {
    if log2_n0 == 0 {
        return 0;
    }
    1 + log_star(log2_n0)
}

/// Checks the three `n₀` feasibility conditions (3.2)–(3.4) of the
/// Theorem 3.10 proof for a candidate `n₀ = 2^log2_n0` (the honest `n₀`
/// is astronomically large — condition (3.4) forces `ln n₀` past the
/// blow-up factor — so candidates are handled on the exponent scale):
///
/// * (3.2) `T(n₀) + 2 ≤ log_Δ n₀`,
/// * (3.3) `2 T(n₀) + 5 ≤ log* n₀`,
/// * (3.4) `((S*)² · (log n₀)^{2Δ})^{(3Δ+3)^{T(n₀)}} < n₀`.
pub fn n0_conditions_hold(log2_n0: u64, t_n0: u32, delta: u8, sigma_in: usize) -> bool {
    if log2_n0 < 1 || delta < 2 {
        return false;
    }
    let ln_n0 = log2_n0 as f64 * std::f64::consts::LN_2;
    // (3.2)
    let log_delta_n0 = ln_n0 / f64::from(delta).ln();
    if f64::from(t_n0 + 2) > log_delta_n0 {
        return false;
    }
    // (3.3)
    if 2 * t_n0 + 5 > log_star_of_pow2(log2_n0) {
        return false;
    }
    // (3.4), in log space:
    // (3Δ+3)^T · (2 ln S* + 2Δ ln log₂ n₀) < ln n₀.
    let s_star = blowup_factor(sigma_in, log2_n0.min(1 << 30) as usize, delta, t_n0);
    let ln_s_star = s_star.ln();
    let factor = (3.0 * f64::from(delta) + 3.0).powi(t_n0 as i32);
    factor * (2.0 * ln_s_star + 2.0 * f64::from(delta) * (log2_n0 as f64).ln()) < ln_n0
}

/// The smallest power-of-two exponent `log2_n0 ≤ limit` such that
/// `n₀ = 2^log2_n0` satisfies [`n0_conditions_hold`] for a runtime
/// function `t` (given the exponent), or `None`.
pub fn find_n0_log2(t: impl Fn(u64) -> u32, delta: u8, sigma_in: usize, limit: u64) -> Option<u64> {
    (1..=limit).find(|&log2_n0| n0_conditions_hold(log2_n0, t(log2_n0), delta, sigma_in))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blowup_factor_grows_with_t() {
        let s0 = blowup_factor(1, 3, 3, 0);
        let s1 = blowup_factor(1, 3, 3, 1);
        assert!(s1 > s0);
        assert!(s0 > 1.0);
    }

    #[test]
    fn step_bound_is_capped_at_one() {
        assert_eq!(step_bound(0.9, 1e30, 3), 1.0);
        assert!(step_bound(1e-300, 10.0, 3) < 1.0);
    }

    #[test]
    fn step_bound_shrinks_for_tiny_p() {
        // With p far below S^{-(3Δ+3)}, the bound is still < 1.
        let s = 100.0;
        let delta = 3;
        let p = 1e-60;
        let b = step_bound(p, s, delta);
        assert!(b < 1.0);
        assert!(b > p, "the bound weakens the guarantee");
    }

    #[test]
    fn failure_iteration_matches_manual() {
        let s = 10.0;
        let one = step_bound(1e-40, s, 2);
        let two = step_bound(one, s, 2);
        assert_eq!(failure_after_steps(1e-40, s, 2, 2), two);
    }

    #[test]
    fn label_growth_is_a_tower() {
        assert_eq!(label_growth_bound(2, 0), lcl_graph::math::power_tower(3, 2));
        // Height 5 towers saturate.
        assert_eq!(label_growth_bound(2, 1), u64::MAX);
    }

    #[test]
    fn n0_conditions_reject_small_n0() {
        // Constant runtime T = 1 with tiny n₀ = 2^4 fails (3.3).
        assert!(!n0_conditions_hold(4, 1, 3, 1));
    }

    #[test]
    fn n0_exists_for_constant_runtime_zero() {
        // T ≡ 0: conditions reduce to log* n₀ ≥ 5 and (3.4) with
        // exponent 1; n₀ around 2^300 works — far beyond u64, which is
        // exactly why the exponent-scale API exists.
        let log2_n0 = find_n0_log2(|_| 0, 3, 1, 1 << 20);
        let e = log2_n0.expect("an n₀ exists for T ≡ 0");
        assert!(e > 64, "n₀ must exceed u64 range, got 2^{e}");
        assert!(n0_conditions_hold(e, 0, 3, 1));
    }

    #[test]
    fn n0_for_t1_is_beyond_u64_exponents() {
        // Condition (3.3) with T = 1 demands log* n₀ ≥ 7, i.e.
        // n₀ > 2^2^65536: not even the *exponent* fits in u64. T ≡ 0 is
        // feasible at exponent ~10³; the quantization is the power-tower
        // effect the paper's proof lives with.
        assert!(find_n0_log2(|_| 0, 2, 1, 1 << 20).is_some());
        assert_eq!(find_n0_log2(|_| 1, 2, 1, 1 << 20), None);
    }

    #[test]
    fn simulation_count_matches_formula_small() {
        // s = (3·1)^(2·2^1) = 3^4 = 81 for Δ=2, T=0.
        let s = simulation_count(1, 2, 0);
        assert!((s - 81.0).abs() < 1e-6, "s = {s}");
    }
}
