//! Deciding deterministic 0-round solvability and extracting the paper's
//! `A_det` (proof of Theorem 3.10).
//!
//! A 0-round deterministic algorithm sees only its own degree and input
//! tuple. On the class of forests `ℱ` the adversary can lay out *any* two
//! ports facing each other, so a candidate algorithm given by a table
//! `(degree, inputs) ↦ outputs` is correct **iff**
//!
//! 1. every output tuple is an allowed node configuration compatible with
//!    `g`, and
//! 2. the set `L` of all labels ever emitted is *reflexively
//!    edge-compatible*: `{o, o'} ∈ ℰ` for all `o, o' ∈ L` (including
//!    `o = o'` — two nodes with the same input tuple may face each other).
//!
//! This matches the three failure conditions derived for `A_det` in the
//! proof of Theorem 3.10. The decision procedure enumerates maximal
//! reflexive cliques of the edge-compatibility graph and searches, per
//! clique and per `(degree, input multiset)`, for an allowed output
//! configuration inside the clique.

use std::collections::BTreeMap;

use lcl::{InLabel, OutLabel, Problem};

use crate::bits::{for_each_multiset, BitSet};
use crate::par;

/// The outcome of the 0-round decision.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ZeroRoundResult {
    /// A deterministic 0-round algorithm exists; here it is.
    Solvable(ZeroRoundAlgorithm),
    /// No deterministic 0-round algorithm exists (exact, given the label
    /// universe handed in).
    Unsolvable,
    /// The search hit its work cap before deciding.
    Unknown,
}

impl ZeroRoundResult {
    /// Whether the result is [`ZeroRoundResult::Solvable`].
    pub fn is_solvable(&self) -> bool {
        matches!(self, ZeroRoundResult::Solvable(_))
    }
}

/// The extracted deterministic 0-round algorithm `A_det`: a function from
/// `(degree, input tuple)` to an output tuple.
///
/// The table is keyed by *sorted* input multisets; [`outputs_for`] restores
/// the port alignment.
///
/// [`outputs_for`]: ZeroRoundAlgorithm::outputs_for
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ZeroRoundAlgorithm {
    /// `(degree, sorted inputs) -> outputs aligned with the sorted inputs`.
    table: BTreeMap<(u8, Vec<InLabel>), Vec<OutLabel>>,
    /// The reflexive clique the outputs are drawn from.
    clique: Vec<OutLabel>,
}

impl ZeroRoundAlgorithm {
    /// The reflexive-clique label set `L` the algorithm emits from.
    pub fn label_set(&self) -> &[OutLabel] {
        &self.clique
    }

    /// Number of table entries.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    /// The outputs for a node with the given input labels, in port order.
    ///
    /// # Panics
    ///
    /// Panics if the `(degree, inputs)` combination is not in the table
    /// (cannot happen for inputs drawn from the problem's alphabet).
    pub fn outputs_for(&self, inputs: &[InLabel]) -> Vec<OutLabel> {
        if inputs.is_empty() {
            return Vec::new(); // isolated nodes label nothing
        }
        let mut order: Vec<usize> = (0..inputs.len()).collect();
        order.sort_by_key(|&i| inputs[i]);
        let sorted: Vec<InLabel> = order.iter().map(|&i| inputs[i]).collect();
        let row = self
            .table
            .get(&(inputs.len() as u8, sorted))
            .expect("input tuple covered by A_det table");
        let mut out = vec![OutLabel(0); inputs.len()];
        for (slot, &port) in order.iter().enumerate() {
            out[port] = row[slot];
        }
        out
    }
}

/// Caps for [`decide_zero_round`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ZeroRoundOptions {
    /// Maximum number of maximal cliques examined.
    pub max_cliques: usize,
    /// Cap on output-configuration candidates tried per table entry.
    pub per_entry_cap: usize,
    /// Worker threads for the per-entry candidate enumeration (`0` = all
    /// available cores; the result is thread-count invariant).
    pub threads: usize,
}

impl Default for ZeroRoundOptions {
    fn default() -> Self {
        Self {
            max_cliques: 10_000,
            per_entry_cap: 2_000_000,
            threads: 0,
        }
    }
}

/// One table entry's precomputed candidates: output configurations that
/// are node-allowed and `g`-matchable with the entry's input multiset.
struct EntryCandidates {
    degree: u8,
    /// Sorted input multiset.
    inputs: Vec<InLabel>,
    /// Each candidate: the output tuple aligned with the sorted inputs,
    /// plus the bitmask (over the output universe) of labels it uses.
    candidates: Vec<(Vec<OutLabel>, BitSet)>,
    /// Whether candidate enumeration was cut short by the work cap.
    capped: bool,
}

/// Decides whether `problem` admits a deterministic 0-round algorithm on
/// forests, over the full output universe `0..problem.output_count()`.
///
/// # Panics
///
/// Panics if the problem does not report a finite `output_count`.
pub fn decide_zero_round(
    problem: &(impl Problem + Sync + ?Sized),
    opts: ZeroRoundOptions,
) -> ZeroRoundResult {
    let universe = problem
        .output_count()
        .expect("zero-round decision needs an enumerable output universe");
    let delta = problem.max_degree() as usize;
    let inputs = problem.input_count();

    // Reflexive labels: usable at all (may face a twin of themselves).
    let reflexive: Vec<usize> = (0..universe)
        .filter(|&l| problem.edge_allows(OutLabel(l as u32), OutLabel(l as u32)))
        .collect();
    if reflexive.is_empty() {
        return ZeroRoundResult::Unsolvable;
    }
    let reflexive_mask = BitSet::from_members(universe, reflexive.iter().copied());

    // Precompute, per (degree, input multiset), every usable output
    // configuration: node-allowed, g-matchable, and using only reflexive
    // labels. Independent of the clique choice (and of each other), so
    // computed once, fanned out over threads.
    let mut input_multisets: Vec<Vec<InLabel>> = Vec::new();
    for d in 1..=delta {
        for_each_multiset(inputs, d, usize::MAX, |input_ids| {
            input_multisets.push(input_ids.iter().map(|&i| InLabel(i as u32)).collect());
            true
        });
    }
    let entries: Vec<EntryCandidates> = par::par_map(
        &input_multisets,
        par::resolve_threads(opts.threads),
        |ins| collect_candidates(problem, &reflexive_mask, ins, opts.per_entry_cap),
    );
    let any_capped = entries.iter().any(|e| e.capped);
    // An entry with no candidates at all kills every clique.
    if entries.iter().any(|e| e.candidates.is_empty() && !e.capped) {
        return ZeroRoundResult::Unsolvable;
    }

    // Compatibility graph among reflexive labels. Self-bits are omitted:
    // Bron–Kerbosch expects a loop-free adjacency (reflexivity is already
    // guaranteed by the vertex filter above).
    let k = reflexive.len();
    let rows: Vec<BitSet> = (0..k)
        .map(|i| {
            BitSet::from_members(
                k,
                (0..k).filter(|&j| {
                    j != i
                        && problem.edge_allows(
                            OutLabel(reflexive[i] as u32),
                            OutLabel(reflexive[j] as u32),
                        )
                }),
            )
        })
        .collect();

    // Enumerate maximal cliques (Bron–Kerbosch, no pivoting: universes are
    // small after restriction).
    let mut cliques: Vec<Vec<usize>> = Vec::new();
    let mut truncated = false;
    bron_kerbosch(
        &rows,
        &mut Vec::new(),
        BitSet::full(k),
        BitSet::new(k),
        &mut cliques,
        opts.max_cliques,
        &mut truncated,
    );

    // Prefer larger cliques: more labels, more freedom.
    cliques.sort_by_key(|c| std::cmp::Reverse(c.len()));

    'clique: for clique in &cliques {
        // Clique as a mask over the full output universe.
        let mask = BitSet::from_members(universe, clique.iter().map(|&i| reflexive[i]));
        let mut table = BTreeMap::new();
        for entry in &entries {
            let hit = entry
                .candidates
                .iter()
                .find(|(_, used)| used.is_subset_of(&mask));
            match hit {
                Some((outs, _)) => {
                    table.insert((entry.degree, entry.inputs.clone()), outs.clone());
                }
                None => continue 'clique,
            }
        }
        let labels = clique
            .iter()
            .map(|&i| OutLabel(reflexive[i] as u32))
            .collect();
        return ZeroRoundResult::Solvable(ZeroRoundAlgorithm {
            table,
            clique: labels,
        });
    }

    if any_capped || truncated {
        ZeroRoundResult::Unknown
    } else {
        ZeroRoundResult::Unsolvable
    }
}

/// Enumerates output configurations for one `(degree, input multiset)`
/// entry: sorted multisets over the reflexive labels that are node-allowed
/// and admit a per-position `g`-matching with the inputs; stores the
/// matched (input-aligned) tuple.
fn collect_candidates(
    problem: &(impl Problem + ?Sized),
    reflexive_mask: &BitSet,
    ins: &[InLabel],
    cap: usize,
) -> EntryCandidates {
    let universe = reflexive_mask.universe();
    let labels: Vec<OutLabel> = reflexive_mask.iter().map(|l| OutLabel(l as u32)).collect();
    let d = ins.len();
    let mut candidates = Vec::new();
    let complete = for_each_multiset(labels.len(), d, cap, |combo| {
        let config: Vec<OutLabel> = combo.iter().map(|&i| labels[i]).collect();
        if !problem.node_allows(&config) {
            return true;
        }
        if let Some(aligned) = match_inputs(problem, &config, ins) {
            let used = BitSet::from_members(universe, config.iter().map(|l| l.index()));
            candidates.push((aligned, used));
        }
        true
    });
    EntryCandidates {
        degree: d as u8,
        inputs: ins.to_vec(),
        candidates,
        capped: !complete,
    }
}

/// Finds a permutation of `config` satisfying `g` against the (sorted)
/// inputs positionally, via backtracking on positions.
fn match_inputs(
    problem: &(impl Problem + ?Sized),
    config: &[OutLabel],
    ins: &[InLabel],
) -> Option<Vec<OutLabel>> {
    let d = ins.len();
    let mut used = vec![false; d];
    let mut aligned = vec![OutLabel(0); d];
    fn recurse(
        problem: &(impl Problem + ?Sized),
        config: &[OutLabel],
        ins: &[InLabel],
        used: &mut [bool],
        aligned: &mut [OutLabel],
        pos: usize,
    ) -> bool {
        if pos == ins.len() {
            return true;
        }
        for i in 0..config.len() {
            if used[i] {
                continue;
            }
            // Skip duplicate labels at the same position.
            if i > 0 && config[i] == config[i - 1] && !used[i - 1] {
                continue;
            }
            if !problem.input_allows(ins[pos], config[i]) {
                continue;
            }
            used[i] = true;
            aligned[pos] = config[i];
            if recurse(problem, config, ins, used, aligned, pos + 1) {
                return true;
            }
            used[i] = false;
        }
        false
    }
    if recurse(problem, config, ins, &mut used, &mut aligned, 0) {
        Some(aligned)
    } else {
        None
    }
}

#[allow(clippy::too_many_arguments)]
fn bron_kerbosch(
    rows: &[BitSet],
    current: &mut Vec<usize>,
    mut candidates: BitSet,
    mut excluded: BitSet,
    out: &mut Vec<Vec<usize>>,
    cap: usize,
    truncated: &mut bool,
) {
    if out.len() >= cap {
        *truncated = true;
        return;
    }
    if candidates.is_empty() && excluded.is_empty() {
        out.push(current.clone());
        return;
    }
    let members: Vec<usize> = candidates.iter().collect();
    for v in members {
        if !candidates.contains(v) {
            continue;
        }
        let mut next_candidates = candidates.clone();
        next_candidates.intersect_with(&rows[v]);
        let mut next_excluded = excluded.clone();
        next_excluded.intersect_with(&rows[v]);
        current.push(v);
        bron_kerbosch(
            rows,
            current,
            next_candidates,
            next_excluded,
            out,
            cap,
            truncated,
        );
        current.pop();
        candidates.remove(v);
        excluded.insert(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl::LclProblem;

    fn decide(p: &LclProblem) -> ZeroRoundResult {
        decide_zero_round(p, ZeroRoundOptions::default())
    }

    #[test]
    fn trivial_problem_is_zero_round() {
        let p = LclProblem::parse("max-degree: 3\nnodes:\nX*\nedges:\nX X\n").unwrap();
        let result = decide(&p);
        assert!(result.is_solvable());
        if let ZeroRoundResult::Solvable(alg) = result {
            assert_eq!(alg.outputs_for(&[InLabel(0); 3]), vec![OutLabel(0); 3]);
        }
    }

    #[test]
    fn three_coloring_is_not_zero_round() {
        let p = LclProblem::parse("max-degree: 3\nnodes:\nA*\nB*\nC*\nedges:\nA B\nA C\nB C\n")
            .unwrap();
        assert_eq!(decide(&p), ZeroRoundResult::Unsolvable);
    }

    #[test]
    fn anti_matching_is_not_zero_round() {
        // Edge constraint {X, Y} only: no reflexive label.
        let p = LclProblem::parse("max-degree: 3\nnodes:\nX* Y*\nedges:\nX Y\n").unwrap();
        assert_eq!(decide(&p), ZeroRoundResult::Unsolvable);
    }

    #[test]
    fn input_dependent_table() {
        // Inputs force different outputs; outputs X and Y are mutually and
        // reflexively compatible, so a 0-round table exists.
        let p = LclProblem::parse(
            "max-degree: 2\ninputs: x y\noutputs: X Y\nnodes:\nX* Y*\nedges:\nX X\nX Y\nY Y\ng:\nx -> X\ny -> Y\n",
        )
        .unwrap();
        let result = decide(&p);
        assert!(result.is_solvable());
        if let ZeroRoundResult::Solvable(alg) = result {
            assert_eq!(
                alg.outputs_for(&[InLabel(1), InLabel(0)]),
                vec![OutLabel(1), OutLabel(0)]
            );
        }
    }

    #[test]
    fn incompatible_forced_inputs_are_unsolvable() {
        // Input x forces X, input y forces Y, but X and Y are not
        // edge-compatible: a y-port may face an x-port, so no 0-round
        // algorithm exists.
        let p = LclProblem::parse(
            "max-degree: 2\ninputs: x y\noutputs: X Y\nnodes:\nX* Y*\nedges:\nX X\nY Y\ng:\nx -> X\ny -> Y\n",
        )
        .unwrap();
        assert_eq!(decide(&p), ZeroRoundResult::Unsolvable);
    }

    #[test]
    fn node_constraint_can_block_cliques() {
        // Labels P and Q pairwise compatible, but nodes of degree 2 only
        // allow {P, P}; degree-1 nodes only {Q}: no single clique serves
        // both degrees unless it contains both — which it can.
        let p = LclProblem::parse(
            "max-degree: 2\noutputs: P Q\nnodes:\nQ\nP P\nedges:\nP P\nP Q\nQ Q\n",
        )
        .unwrap();
        let result = decide(&p);
        assert!(result.is_solvable());
        if let ZeroRoundResult::Solvable(alg) = result {
            assert_eq!(alg.outputs_for(&[InLabel(0)]), vec![OutLabel(1)]);
            assert_eq!(
                alg.outputs_for(&[InLabel(0), InLabel(0)]),
                vec![OutLabel(0), OutLabel(0)]
            );
        }
    }

    #[test]
    fn port_alignment_is_restored() {
        let p = LclProblem::parse(
            "max-degree: 3\ninputs: x y\noutputs: X Y\nnodes:\nX* Y*\nedges:\nX X\nX Y\nY Y\ng:\nx -> X\ny -> Y\n",
        )
        .unwrap();
        if let ZeroRoundResult::Solvable(alg) = decide(&p) {
            let outs = alg.outputs_for(&[InLabel(1), InLabel(0), InLabel(1)]);
            assert_eq!(outs, vec![OutLabel(1), OutLabel(0), OutLabel(1)]);
        } else {
            panic!("expected solvable");
        }
    }
}
