//! Theorem 2.11 for the LOCAL model: an order-invariant algorithm with
//! radius `o(log n)` can be "fooled" with a fixed `n₀` — run as if the
//! graph had `min(n, n₀)` nodes — yielding a constant-radius algorithm
//! that is still correct on every `n`.
//!
//! The proof (given in the paper for both models at once) hinges on the
//! view-counting argument: a failure at some node on a large graph needs
//! only `Δ^{r+1}·(T(n₀)+1) ≤ n₀/Δ` nodes of witness, which embeds into an
//! `n₀`-node graph with order-preserved identifiers — contradicting
//! correctness at `n₀`. Here the construction is executable:
//! [`FooledOrderInvariant`] *is* the constant-round algorithm.

use lcl::{HalfEdgeLabeling, InLabel, OutLabel};
use lcl_graph::Graph;
use lcl_local::{run_order_invariant, IdAssignment, LocalRun, OrderInvariantAlgorithm, RankView};

/// The Theorem 2.11 wrapper: announce `min(n, n₀)` to the inner
/// order-invariant algorithm.
#[derive(Clone, Debug)]
pub struct FooledOrderInvariant<A> {
    inner: A,
    n0: usize,
}

impl<A> FooledOrderInvariant<A> {
    /// Wraps `inner` with the fooling constant `n₀`.
    pub fn new(inner: A, n0: usize) -> Self {
        Self { inner, n0 }
    }

    /// The fooling constant.
    pub fn n0(&self) -> usize {
        self.n0
    }
}

impl<A: OrderInvariantAlgorithm> OrderInvariantAlgorithm for FooledOrderInvariant<A> {
    fn radius(&self, n: usize) -> u32 {
        self.inner.radius(n.min(self.n0))
    }

    fn label(&self, view: &RankView<'_>) -> Vec<OutLabel> {
        let fooled = RankView {
            ball: view.ball,
            n: view.n.min(self.n0),
            ranks: view.ranks.clone(),
            inputs: view.inputs.clone(),
        };
        self.inner.label(&fooled)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// Convenience: runs the fooled pipeline over a graph.
pub fn run_fooled_local<A: OrderInvariantAlgorithm>(
    alg: &A,
    n0: usize,
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
) -> LocalRun {
    let fooled = FooledOrderInvariant::new(CloneShim(alg), n0);
    run_order_invariant(&fooled, graph, input, ids, None)
}

/// Borrow adapter so `run_fooled_local` does not require `A: Clone`.
#[derive(Debug)]
struct CloneShim<'a, A>(&'a A);

impl<A: OrderInvariantAlgorithm> OrderInvariantAlgorithm for CloneShim<'_, A> {
    fn radius(&self, n: usize) -> u32 {
        self.0.radius(n)
    }
    fn label(&self, view: &RankView<'_>) -> Vec<OutLabel> {
        self.0.label(view)
    }
    fn name(&self) -> &str {
        self.0.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::gen;

    /// Order-invariant, n-independent semantics: mark local rank minima.
    struct LocalRankMin;

    impl OrderInvariantAlgorithm for LocalRankMin {
        fn radius(&self, n: usize) -> u32 {
            // A deliberately growing radius: the quantity the fooling caps.
            (n as f64).log2() as u32
        }
        fn label(&self, view: &RankView<'_>) -> Vec<OutLabel> {
            let is_min = view.ranks[0] == 0;
            vec![OutLabel(u32::from(is_min)); view.center_degree()]
        }
    }

    #[test]
    fn fooling_caps_the_radius() {
        let alg = FooledOrderInvariant::new(LocalRankMin, 16);
        assert_eq!(alg.radius(16), 4);
        assert_eq!(alg.radius(1 << 20), 4);
        assert_eq!(alg.n0(), 16);
    }

    #[test]
    fn fooled_outputs_follow_the_smaller_view() {
        // For this algorithm the label only depends on the view's ranks,
        // so fooling changes the radius but the semantic stays "am I the
        // minimum of my (smaller) view".
        let g = gen::cycle(64);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::random_polynomial(64, 3, 5);
        let run = run_fooled_local(&LocalRankMin, 16, &g, &input, &ids);
        assert_eq!(run.radius, 4);
        // At least one node is a radius-4 local minimum; not all are.
        let ones = g
            .nodes()
            .filter(|&v| run.output.get(g.half_edge(v, 0)) == OutLabel(1))
            .count();
        assert!((1..64).contains(&ones));
    }

    #[test]
    fn fooled_is_order_invariant_by_construction() {
        let g = gen::cycle(32);
        let input = lcl::uniform_input(&g);
        let a = IdAssignment::random_polynomial(32, 3, 7);
        let b = a.resample_order_preserving(3, 8);
        let run_a = run_fooled_local(&LocalRankMin, 8, &g, &input, &a);
        let run_b = run_fooled_local(&LocalRankMin, 8, &g, &input, &b);
        assert_eq!(run_a.output, run_b.output);
    }
}
