//! Self-contained deterministic PRNG for the suite.
//!
//! Every randomized component (graph generators, Monte-Carlo estimation in
//! [`derived`](../lcl_core/derived/index.html), identifier assignment,
//! fault injection) takes an explicit `u64` seed so that every experiment
//! is reproducible. This crate supplies the generator behind those seeds
//! without any external dependency — the build environment is offline, so
//! the suite cannot rely on crates.io (`rand` et al.).
//!
//! The generator is **xoshiro256++** (Blackman & Vigna 2019, public
//! domain reference constants) seeded through **splitmix64**, the same
//! construction `rand`'s `SmallRng` historically used on 64-bit targets.
//! It is not cryptographic; it is fast, has 256 bits of state, and passes
//! BigCrush — more than enough for simulation workloads.
//!
//! The API deliberately mirrors the subset of `rand` the suite used
//! (`seed_from_u64`, `gen`, `gen_range`, `gen_bool`) so call sites only
//! changed their import line.

use std::ops::{Range, RangeInclusive};

/// A small, fast, seedable PRNG (xoshiro256++).
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SmallRng {
    /// Builds a generator from a `u64` seed via splitmix64 state
    /// expansion. Identical seeds yield identical streams on every
    /// platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniformly random value of an integer type (the `rand`-style
    /// turbofish entry point: `rng.gen::<u64>()`).
    #[inline]
    pub fn gen<T: RngValue>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniformly random value in the given range. Supports `a..b` and
    /// `a..=b` over `usize`, `u32`, and `u64`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        // 53 random bits → uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Uniform sample below `bound` (> 0) by widening multiply; the bias
    /// of the plain method is below 2^-64 per draw, irrelevant here.
    #[inline]
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Types [`SmallRng::gen`] can produce.
pub trait RngValue {
    /// Draws a uniformly random value.
    fn from_rng(rng: &mut SmallRng) -> Self;
}

impl RngValue for u64 {
    #[inline]
    fn from_rng(rng: &mut SmallRng) -> Self {
        rng.next_u64()
    }
}

impl RngValue for u32 {
    #[inline]
    fn from_rng(rng: &mut SmallRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl RngValue for bool {
    #[inline]
    fn from_rng(rng: &mut SmallRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`SmallRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws a uniformly random element.
    fn sample(self, rng: &mut SmallRng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u8);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u32..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn singleton_ranges_work() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(rng.gen_range(5usize..6), 5);
        assert_eq!(rng.gen_range(9u64..=9), 9);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = rng.gen_range(3usize..3);
    }

    #[test]
    fn typed_gen_draws() {
        let mut rng = SmallRng::seed_from_u64(9);
        let _: u64 = rng.gen();
        let _: u32 = rng.gen();
        let _: bool = rng.gen();
    }
}
