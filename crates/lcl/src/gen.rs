//! Random LCL problem generation for property-based testing.
//!
//! The gap theorems quantify over *all* LCL problems; the test suite
//! approximates that quantification by exercising the machinery on random
//! problems drawn from this module (plus the landmark problems of
//! `lcl-problems`).

use std::collections::BTreeSet;

use lcl_rng::SmallRng;

use crate::label::{Alphabet, OutLabel};
use crate::problem::{from_parts, LclProblem};

/// Parameters for [`random_problem`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RandomProblemSpec {
    /// Maximum degree `Δ`.
    pub max_degree: u8,
    /// Number of input labels.
    pub inputs: usize,
    /// Number of output labels.
    pub outputs: usize,
    /// Probability (in percent) that any given configuration is allowed.
    pub density_percent: u8,
}

impl Default for RandomProblemSpec {
    fn default() -> Self {
        Self {
            max_degree: 3,
            inputs: 1,
            outputs: 3,
            density_percent: 50,
        }
    }
}

/// Generates a random node-edge-checkable LCL problem; deterministic given
/// `seed`.
///
/// The generated problem always has at least one node configuration per
/// degree, at least one edge configuration, and nonempty `g` images, so it
/// is never *vacuously* unsolvable (it may still be unsolvable for
/// structural reasons, which is exactly what the tests want to explore).
pub fn random_problem(spec: RandomProblemSpec, seed: u64) -> LclProblem {
    let mut rng = SmallRng::seed_from_u64(seed);
    let delta = spec.max_degree.max(1);
    let outs = spec.outputs.max(1);
    let keep = |rng: &mut SmallRng| rng.gen_range(0..100u8) < spec.density_percent;

    let mut node_configs: Vec<BTreeSet<Vec<OutLabel>>> = vec![BTreeSet::new(); delta as usize + 1];
    for (d, set) in node_configs.iter_mut().enumerate().skip(1) {
        for config in multisets(outs, d) {
            if keep(&mut rng) {
                set.insert(config);
            }
        }
        if set.is_empty() {
            // Guarantee solvable degree constraints exist.
            let l = OutLabel(rng.gen_range(0..outs as u32));
            set.insert(vec![l; d]);
        }
    }

    let mut edge_configs = BTreeSet::new();
    for a in 0..outs as u32 {
        for b in a..outs as u32 {
            if keep(&mut rng) {
                edge_configs.insert((OutLabel(a), OutLabel(b)));
            }
        }
    }
    if edge_configs.is_empty() {
        let a = OutLabel(rng.gen_range(0..outs as u32));
        edge_configs.insert((a, a));
    }

    let inputs = Alphabet::numbered("x", spec.inputs.max(1));
    let mut g = Vec::with_capacity(inputs.len());
    for _ in 0..inputs.len() {
        let mut set: BTreeSet<OutLabel> = (0..outs as u32)
            .map(OutLabel)
            .filter(|_| keep(&mut rng))
            .collect();
        if set.is_empty() {
            set.insert(OutLabel(rng.gen_range(0..outs as u32)));
        }
        g.push(set);
    }

    from_parts(
        format!("random-{seed}"),
        delta,
        inputs,
        Alphabet::numbered("L", outs),
        node_configs,
        edge_configs,
        g,
    )
}

/// All sorted multisets of size `size` over labels `0..count`.
pub fn multisets(count: usize, size: usize) -> Vec<Vec<OutLabel>> {
    let mut result = Vec::new();
    let mut current = Vec::with_capacity(size);
    fn recurse(
        count: usize,
        size: usize,
        start: u32,
        current: &mut Vec<OutLabel>,
        result: &mut Vec<Vec<OutLabel>>,
    ) {
        if current.len() == size {
            result.push(current.clone());
            return;
        }
        for l in start..count as u32 {
            current.push(OutLabel(l));
            recurse(count, size, l, current, result);
            current.pop();
        }
    }
    recurse(count, size, 0, &mut current, &mut result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;

    #[test]
    fn multiset_counts_match_binomials() {
        // C(n + k - 1, k) multisets of size k over n labels.
        assert_eq!(multisets(3, 2).len(), 6);
        assert_eq!(multisets(2, 3).len(), 4);
        assert_eq!(multisets(4, 1).len(), 4);
        assert_eq!(multisets(1, 5).len(), 1);
    }

    #[test]
    fn multisets_are_sorted_and_unique() {
        let sets = multisets(3, 3);
        for s in &sets {
            assert!(s.windows(2).all(|w| w[0] <= w[1]));
        }
        let unique: std::collections::BTreeSet<_> = sets.iter().cloned().collect();
        assert_eq!(unique.len(), sets.len());
    }

    #[test]
    fn random_problem_is_deterministic() {
        let spec = RandomProblemSpec::default();
        assert_eq!(random_problem(spec, 42), random_problem(spec, 42));
    }

    #[test]
    fn random_problem_is_never_vacuous() {
        for seed in 0..20 {
            let p = random_problem(
                RandomProblemSpec {
                    density_percent: 5,
                    ..RandomProblemSpec::default()
                },
                seed,
            );
            assert!(p.edge_config_count() >= 1);
            for d in 1..=p.max_degree() {
                assert!(p.node_configs(d).next().is_some());
            }
        }
    }
}
