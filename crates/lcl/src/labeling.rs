//! Half-edge labelings: the objects LCL solutions are made of.

use lcl_graph::{Graph, HalfEdgeId, NodeId};

use crate::label::{InLabel, OutLabel};

/// A dense labeling of every half-edge of a graph.
///
/// This is a thin, type-safe wrapper around `Vec<L>` indexed by
/// [`HalfEdgeId`]; both input labelings (`L = InLabel`) and output
/// labelings (`L = OutLabel`) use it.
///
/// # Examples
///
/// ```
/// use lcl::{HalfEdgeLabeling, OutLabel};
/// use lcl_graph::gen;
///
/// let g = gen::path(3);
/// let labeling = HalfEdgeLabeling::uniform(&g, OutLabel(0));
/// assert_eq!(labeling.len(), g.half_edge_count());
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HalfEdgeLabeling<L> {
    values: Vec<L>,
}

impl<L: Copy> HalfEdgeLabeling<L> {
    /// A labeling assigning `value` to every half-edge of `graph`.
    pub fn uniform(graph: &Graph, value: L) -> Self {
        Self {
            values: vec![value; graph.half_edge_count()],
        }
    }

    /// A labeling computed per half-edge.
    pub fn from_fn(graph: &Graph, mut f: impl FnMut(HalfEdgeId) -> L) -> Self {
        Self {
            values: graph.half_edges().map(&mut f).collect(),
        }
    }

    /// A labeling where each node assigns labels to its half-edges in port
    /// order, as LOCAL algorithms do ("each node is supposed to output a
    /// label for each incident half-edge").
    pub fn from_node_fn(graph: &Graph, mut f: impl FnMut(NodeId) -> Vec<L>) -> Self {
        let mut values: Vec<Option<L>> = vec![None; graph.half_edge_count()];
        for v in graph.nodes() {
            let outs = f(v);
            assert_eq!(
                outs.len(),
                graph.degree(v) as usize,
                "node must label each incident half-edge"
            );
            for (h, label) in graph.half_edges_of(v).zip(outs) {
                values[h.index()] = Some(label);
            }
        }
        Self {
            values: values.into_iter().map(|v| v.expect("all set")).collect(),
        }
    }

    /// The label of a half-edge.
    #[inline]
    pub fn get(&self, h: HalfEdgeId) -> L {
        self.values[h.index()]
    }

    /// Sets the label of a half-edge.
    #[inline]
    pub fn set(&mut self, h: HalfEdgeId, value: L) {
        self.values[h.index()] = value;
    }

    /// Number of labeled half-edges.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the labeling is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The underlying slice, indexed by half-edge id.
    pub fn as_slice(&self) -> &[L] {
        &self.values
    }

    /// The multiset of labels around node `v`, in port order.
    pub fn around_node(&self, graph: &Graph, v: NodeId) -> Vec<L> {
        graph.half_edges_of(v).map(|h| self.get(h)).collect()
    }
}

impl<L> FromIterator<L> for HalfEdgeLabeling<L> {
    fn from_iter<T: IntoIterator<Item = L>>(iter: T) -> Self {
        Self {
            values: iter.into_iter().collect(),
        }
    }
}

/// The all-`InLabel(0)` input labeling — the "no inputs" convention used
/// by LCLs without inputs.
pub fn uniform_input(graph: &Graph) -> HalfEdgeLabeling<InLabel> {
    HalfEdgeLabeling::uniform(graph, InLabel(0))
}

/// Convenience alias used throughout the suite.
pub type OutputLabeling = HalfEdgeLabeling<OutLabel>;

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::gen;

    #[test]
    fn from_node_fn_assigns_in_port_order() {
        let g = gen::path(3);
        let labeling =
            HalfEdgeLabeling::from_node_fn(&g, |v| vec![OutLabel(v.0); g.degree(v) as usize]);
        for h in g.half_edges() {
            assert_eq!(labeling.get(h), OutLabel(g.node_of(h).0));
        }
    }

    #[test]
    #[should_panic(expected = "label each incident half-edge")]
    fn from_node_fn_rejects_wrong_arity() {
        let g = gen::path(3);
        let _ = HalfEdgeLabeling::from_node_fn(&g, |_| vec![OutLabel(0)]);
    }

    #[test]
    fn around_node_is_port_ordered() {
        let g = gen::star(3);
        let labeling = HalfEdgeLabeling::from_fn(&g, |h| OutLabel(h.0));
        let center = labeling.around_node(&g, lcl_graph::NodeId(0));
        assert_eq!(center, vec![OutLabel(0), OutLabel(1), OutLabel(2)]);
    }

    #[test]
    fn set_and_get_roundtrip() {
        let g = gen::path(2);
        let mut labeling = HalfEdgeLabeling::uniform(&g, OutLabel(0));
        let h = g.half_edge(lcl_graph::NodeId(0), 0);
        labeling.set(h, OutLabel(9));
        assert_eq!(labeling.get(h), OutLabel(9));
    }

    #[test]
    fn collect_from_iterator() {
        let labeling: HalfEdgeLabeling<OutLabel> = (0..4).map(OutLabel).collect();
        assert_eq!(labeling.len(), 4);
        assert!(!labeling.is_empty());
    }
}
