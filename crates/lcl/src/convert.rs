//! General LCL problems (Definition 2.2) and the Lemma 2.6 conversion to
//! node-edge-checkable form.
//!
//! A general LCL constrains the *radius-`r` neighborhood* of every node;
//! Lemma 2.6 of the paper shows that, up to an additive constant in round
//! complexity, it suffices to study node-edge-checkable LCLs: the converted
//! problem's output labels are *descriptions of labeled neighborhoods with
//! a marked half-edge*, node constraints demand that the descriptions
//! around a node agree, and edge constraints demand that the descriptions
//! on the two sides of an edge are mutually consistent.
//!
//! This module implements the conversion exactly for **radius-1** general
//! LCLs (arbitrary `Δ`): the converted labels carry the full 1-ball
//! (center + all neighbors with all their half-edge labels), encoding a
//! solution costs one communication round, and decoding is a 0-round map —
//! matching the "+r / 0" round overhead of the lemma with `r = 1`. The
//! paper's statement for general `r` follows the same construction with
//! deeper neighborhoods; radius 1 is the case every landmark problem in
//! this suite needs (MIS-style "exists a neighbor with ..." constraints).

use std::collections::HashMap;
use std::fmt;

use lcl_graph::{Ball, Graph, NodeId};

use crate::label::{Alphabet, InLabel, OutLabel};
use crate::labeling::HalfEdgeLabeling;
use crate::problem::Problem;

/// The labeled radius-`r` view around a node, handed to a [`GeneralLcl`]
/// acceptance predicate.
///
/// `inputs[k]` / `outputs[k]` label the `k`-th half-edge of the ball in
/// node-major, port-minor order (node 0 is the center).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Scene<'a> {
    /// The topology of the view.
    pub ball: &'a Ball,
    /// Input labels of the ball's half-edges.
    pub inputs: Vec<InLabel>,
    /// Output labels of the ball's half-edges.
    pub outputs: Vec<OutLabel>,
}

impl Scene<'_> {
    /// The flat half-edge index of port `port` of ball-node `node`.
    pub fn half_edge_index(&self, node: usize, port: u8) -> usize {
        let mut idx = 0usize;
        for b in &self.ball.nodes[..node] {
            idx += b.ports.len();
        }
        idx + port as usize
    }
}

/// A general LCL problem `(Σ_in, Σ_out, r, 𝒫)` in predicate form: the
/// collection `𝒫` of accepted neighborhoods is given as an
/// isomorphism-invariant acceptance check.
pub struct GeneralLcl {
    name: String,
    radius: u32,
    max_degree: u8,
    inputs: Alphabet,
    outputs: Alphabet,
    check: Box<dyn Fn(&Scene<'_>) -> bool + Send + Sync>,
}

impl fmt::Debug for GeneralLcl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GeneralLcl")
            .field("name", &self.name)
            .field("radius", &self.radius)
            .field("max_degree", &self.max_degree)
            .field("inputs", &self.inputs)
            .field("outputs", &self.outputs)
            .finish_non_exhaustive()
    }
}

impl GeneralLcl {
    /// Creates a general LCL from an acceptance predicate over labeled
    /// radius-`radius` scenes.
    ///
    /// The predicate must be isomorphism-invariant: it may depend only on
    /// the structure exposed by [`Scene`].
    pub fn new(
        name: &str,
        radius: u32,
        max_degree: u8,
        inputs: Alphabet,
        outputs: Alphabet,
        check: impl Fn(&Scene<'_>) -> bool + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.to_string(),
            radius,
            max_degree,
            inputs,
            outputs,
            check: Box::new(check),
        }
    }

    /// The problem's name.
    pub fn problem_name(&self) -> &str {
        &self.name
    }

    /// The checkability radius `r`.
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// The maximum degree the problem is defined for.
    pub fn max_degree(&self) -> u8 {
        self.max_degree
    }

    /// The input alphabet.
    pub fn input_alphabet(&self) -> &Alphabet {
        &self.inputs
    }

    /// The output alphabet.
    pub fn output_alphabet(&self) -> &Alphabet {
        &self.outputs
    }

    /// Whether the labeled view around `v` is accepted.
    pub fn accepts_at(
        &self,
        graph: &Graph,
        v: NodeId,
        input: &HalfEdgeLabeling<InLabel>,
        output: &HalfEdgeLabeling<OutLabel>,
    ) -> bool {
        let ball = graph.ball(v, self.radius);
        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        for node in &ball.nodes {
            for &h in &node.half_edges {
                inputs.push(input.get(h));
                outputs.push(output.get(h));
            }
        }
        (self.check)(&Scene {
            ball: &ball,
            inputs,
            outputs,
        })
    }

    /// Verifies a solution: returns the nodes whose neighborhoods are
    /// rejected (empty means the solution is correct, Definition 2.2).
    pub fn verify(
        &self,
        graph: &Graph,
        input: &HalfEdgeLabeling<InLabel>,
        output: &HalfEdgeLabeling<OutLabel>,
    ) -> Vec<NodeId> {
        graph
            .nodes()
            .filter(|&v| !self.accepts_at(graph, v, input, output))
            .collect()
    }
}

/// The full description of one node's labels, as recorded inside a
/// converted label.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct NodeDescription {
    degree: u8,
    inputs: Vec<InLabel>,
    outputs: Vec<OutLabel>,
}

/// A Lemma 2.6 output label for `r = 1`: the 1-ball around a node with a
/// marked half-edge.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct BallDescription {
    center: NodeDescription,
    /// Per center port: the neighbor's description and the port at which
    /// the shared edge arrives there.
    neighbors: Vec<(NodeDescription, u8)>,
    /// The marked ("special") half-edge of the description.
    special_port: u8,
}

/// The node-edge-checkable problem `Π'` produced from a radius-1
/// [`GeneralLcl`] by the Lemma 2.6 construction.
///
/// Labels are interned ball descriptions; use
/// [`encode_solution`](Self::encode_solution) to produce `Π'` solutions
/// from `Π` solutions (the `+1`-round direction of the lemma) and
/// [`decode_solution`](Self::decode_solution) for the 0-round direction.
#[derive(Debug)]
pub struct ConvertedLcl<'a> {
    general: &'a GeneralLcl,
    table: Vec<BallDescription>,
    index: HashMap<BallDescription, u32>,
}

impl<'a> ConvertedLcl<'a> {
    /// Starts a conversion of a radius-1 general LCL.
    ///
    /// # Panics
    ///
    /// Panics if `general.radius() != 1`.
    pub fn new(general: &'a GeneralLcl) -> Self {
        assert_eq!(
            general.radius(),
            1,
            "the explicit Lemma 2.6 conversion is implemented for radius-1 LCLs"
        );
        Self {
            general,
            table: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Number of distinct labels interned so far.
    pub fn label_count(&self) -> usize {
        self.table.len()
    }

    fn describe_node(
        graph: &Graph,
        v: NodeId,
        input: &HalfEdgeLabeling<InLabel>,
        output: &HalfEdgeLabeling<OutLabel>,
    ) -> NodeDescription {
        NodeDescription {
            degree: graph.degree(v),
            inputs: graph.half_edges_of(v).map(|h| input.get(h)).collect(),
            outputs: graph.half_edges_of(v).map(|h| output.get(h)).collect(),
        }
    }

    fn intern(&mut self, desc: BallDescription) -> OutLabel {
        if let Some(&i) = self.index.get(&desc) {
            return OutLabel(i);
        }
        let i = self.table.len() as u32;
        self.index.insert(desc.clone(), i);
        self.table.push(desc);
        OutLabel(i)
    }

    /// Encodes a correct `Π`-solution into a `Π'`-labeling (the
    /// `r`-round encoding direction of Lemma 2.6; here `r = 1`).
    ///
    /// # Errors
    ///
    /// Returns the first node whose neighborhood the general LCL rejects;
    /// only correct solutions are encodable (membership in `𝒫` is part of
    /// the `Σ_out^{Π'}` label definition).
    pub fn encode_solution(
        &mut self,
        graph: &Graph,
        input: &HalfEdgeLabeling<InLabel>,
        output: &HalfEdgeLabeling<OutLabel>,
    ) -> Result<HalfEdgeLabeling<OutLabel>, NodeId> {
        for v in graph.nodes() {
            if !self.general.accepts_at(graph, v, input, output) {
                return Err(v);
            }
        }
        let labeling = HalfEdgeLabeling::from_node_fn(graph, |v| {
            let center = Self::describe_node(graph, v, input, output);
            let neighbors: Vec<(NodeDescription, u8)> = graph
                .half_edges_of(v)
                .map(|h| {
                    let w = graph.neighbor(h);
                    let rev = graph.port_of(graph.twin(h));
                    (Self::describe_node(graph, w, input, output), rev)
                })
                .collect();
            (0..graph.degree(v))
                .map(|p| {
                    self.intern(BallDescription {
                        center: center.clone(),
                        neighbors: neighbors.clone(),
                        special_port: p,
                    })
                })
                .collect()
        });
        Ok(labeling)
    }

    /// The 0-round decoding direction of Lemma 2.6: each half-edge takes
    /// the output its description records at the special half-edge.
    pub fn decode_solution(
        &self,
        encoded: &HalfEdgeLabeling<OutLabel>,
    ) -> HalfEdgeLabeling<OutLabel> {
        encoded
            .as_slice()
            .iter()
            .map(|&l| {
                let desc = &self.table[l.index()];
                desc.center.outputs[desc.special_port as usize]
            })
            .collect()
    }
}

impl Problem for ConvertedLcl<'_> {
    fn max_degree(&self) -> u8 {
        self.general.max_degree()
    }

    fn input_count(&self) -> usize {
        self.general.input_alphabet().len()
    }

    fn output_count(&self) -> Option<usize> {
        // The full universe (all labeled 1-balls accepted by 𝒫) is not
        // materialized; only interned labels are known.
        None
    }

    fn node_allows(&self, outputs: &[OutLabel]) -> bool {
        // 𝒩_{Π'}: all descriptions around a node describe the same
        // neighborhood, with the marked half-edges being exactly the
        // node's ports.
        if outputs.is_empty() {
            return true;
        }
        let descs: Vec<&BallDescription> = outputs
            .iter()
            .map(|&l| match self.table.get(l.index()) {
                Some(d) => d,
                None => &self.table[0], // unreachable in practice
            })
            .collect();
        let first = descs[0];
        if first.center.degree as usize != outputs.len() {
            return false;
        }
        let mut seen_ports = vec![false; outputs.len()];
        for d in &descs {
            if d.center != first.center || d.neighbors != first.neighbors {
                return false;
            }
            let p = d.special_port as usize;
            if p >= seen_ports.len() || seen_ports[p] {
                return false;
            }
            seen_ports[p] = true;
        }
        true
    }

    fn edge_allows(&self, a: OutLabel, b: OutLabel) -> bool {
        // ℰ_{Π'}: the two descriptions are mutually consistent across the
        // edge: each side's record of the other endpoint matches the other
        // side's own center.
        let (da, db) = match (self.table.get(a.index()), self.table.get(b.index())) {
            (Some(da), Some(db)) => (da, db),
            _ => return false,
        };
        let pa = da.special_port as usize;
        let pb = db.special_port as usize;
        if pa >= da.neighbors.len() || pb >= db.neighbors.len() {
            return false;
        }
        let (ref a_view_of_b, a_rev) = da.neighbors[pa];
        let (ref b_view_of_a, b_rev) = db.neighbors[pb];
        *a_view_of_b == db.center
            && *b_view_of_a == da.center
            && a_rev as usize == pb
            && b_rev as usize == pa
    }

    fn input_allows(&self, input: InLabel, out: OutLabel) -> bool {
        // g_{Π'}: the special half-edge of the description carries the
        // actual input label.
        match self.table.get(out.index()) {
            Some(d) => d.center.inputs[d.special_port as usize] == input,
            None => false,
        }
    }

    fn name(&self) -> &str {
        self.general.problem_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify;
    use lcl_graph::gen;

    /// Proper 2-coloring, phrased as a radius-1 general LCL: the center is
    /// monochromatic and differs from every neighbor.
    fn two_coloring_general() -> GeneralLcl {
        GeneralLcl::new(
            "2col-general",
            1,
            3,
            Alphabet::from_names(["-"]),
            Alphabet::from_names(["A", "B"]),
            |scene| {
                let center = &scene.ball.nodes[0];
                if center.ports.is_empty() {
                    return true;
                }
                let c0 = scene.outputs[scene.half_edge_index(0, 0)];
                for p in 0..center.ports.len() as u8 {
                    if scene.outputs[scene.half_edge_index(0, p)] != c0 {
                        return false;
                    }
                }
                for (n, node) in scene.ball.nodes.iter().enumerate().skip(1) {
                    for p in 0..node.ports.len() as u8 {
                        if scene.outputs[scene.half_edge_index(n, p)] == c0 {
                            return false;
                        }
                    }
                }
                true
            },
        )
    }

    fn proper_coloring(g: &Graph) -> HalfEdgeLabeling<OutLabel> {
        HalfEdgeLabeling::from_node_fn(g, |v| vec![OutLabel(v.0 % 2); g.degree(v) as usize])
    }

    #[test]
    fn general_lcl_verifies_solutions() {
        let g = gen::path(6);
        let p = two_coloring_general();
        let input = crate::uniform_input(&g);
        assert!(p.verify(&g, &input, &proper_coloring(&g)).is_empty());
        let bad = HalfEdgeLabeling::uniform(&g, OutLabel(0));
        assert!(!p.verify(&g, &input, &bad).is_empty());
    }

    #[test]
    fn conversion_encodes_and_validates() {
        let g = gen::path(6);
        let general = two_coloring_general();
        let mut conv = ConvertedLcl::new(&general);
        let input = crate::uniform_input(&g);
        let solution = proper_coloring(&g);
        let encoded = conv.encode_solution(&g, &input, &solution).unwrap();
        // The encoded labeling satisfies Π' (node, edge, and g checks).
        assert!(verify(&conv, &g, &input, &encoded).is_empty());
    }

    #[test]
    fn conversion_decodes_back() {
        let g = gen::star(3);
        let general = two_coloring_general();
        let mut conv = ConvertedLcl::new(&general);
        let input = crate::uniform_input(&g);
        // Center gets color A, leaves color B.
        let solution = HalfEdgeLabeling::from_node_fn(&g, |v| {
            vec![OutLabel(u32::from(v.0 != 0)); g.degree(v) as usize]
        });
        let encoded = conv.encode_solution(&g, &input, &solution).unwrap();
        let decoded = conv.decode_solution(&encoded);
        assert_eq!(decoded, solution);
    }

    #[test]
    fn incorrect_solutions_are_not_encodable() {
        let g = gen::path(4);
        let general = two_coloring_general();
        let mut conv = ConvertedLcl::new(&general);
        let input = crate::uniform_input(&g);
        let bad = HalfEdgeLabeling::uniform(&g, OutLabel(0));
        assert!(conv.encode_solution(&g, &input, &bad).is_err());
    }

    #[test]
    fn tampered_encoding_fails_pi_prime() {
        // Encode two different graphs' solutions, then mix labels: the
        // edge consistency constraint of Π' must reject.
        let g = gen::path(4);
        let general = two_coloring_general();
        let mut conv = ConvertedLcl::new(&general);
        let input = crate::uniform_input(&g);
        let solution = proper_coloring(&g);
        let mut encoded = conv.encode_solution(&g, &input, &solution).unwrap();
        // Swap the labels of the first edge's two half-edges.
        let e = lcl_graph::EdgeId(0);
        let [h1, h2] = g.halves_of_edge(e);
        let (l1, l2) = (encoded.get(h1), encoded.get(h2));
        encoded.set(h1, l2);
        encoded.set(h2, l1);
        assert!(!verify(&conv, &g, &input, &encoded).is_empty());
    }

    /// MIS as a radius-1 general LCL: "exists a neighbor in the set" is
    /// the kind of constraint node-edge-checkable problems cannot express
    /// directly without pointer labels — exactly Lemma 2.6's raison
    /// d'être.
    fn mis_general() -> GeneralLcl {
        GeneralLcl::new(
            "mis-general",
            1,
            3,
            Alphabet::from_names(["-"]),
            Alphabet::from_names(["Out", "In"]),
            |scene| {
                let center = &scene.ball.nodes[0];
                if center.ports.is_empty() {
                    return true;
                }
                let mine = scene.outputs[scene.half_edge_index(0, 0)];
                // All of a node's half-edges agree.
                for p in 0..center.ports.len() as u8 {
                    if scene.outputs[scene.half_edge_index(0, p)] != mine {
                        return false;
                    }
                }
                let neighbor_in =
                    |n: usize| scene.outputs[scene.half_edge_index(n, 0)] == OutLabel(1);
                let in_set = mine == OutLabel(1);
                let neighbors = 1..scene.ball.nodes.len();
                if in_set {
                    // Independence: no neighbor in the set.
                    neighbors.clone().all(|n| !neighbor_in(n))
                } else {
                    // Maximality: some neighbor in the set.
                    neighbors.clone().any(neighbor_in)
                }
            },
        )
    }

    #[test]
    fn mis_as_general_lcl_verifies_and_converts() {
        // Star: center In, leaves Out.
        let g = gen::star(3);
        let general = mis_general();
        let input = crate::uniform_input(&g);
        let solution = HalfEdgeLabeling::from_node_fn(&g, |v| {
            vec![OutLabel(u32::from(v.0 == 0)); g.degree(v) as usize]
        });
        assert!(general.verify(&g, &input, &solution).is_empty());
        // An empty set is rejected (maximality).
        let empty = HalfEdgeLabeling::uniform(&g, OutLabel(0));
        assert!(!general.verify(&g, &input, &empty).is_empty());
        // Lemma 2.6 conversion round-trips.
        let mut conv = ConvertedLcl::new(&general);
        let encoded = conv.encode_solution(&g, &input, &solution).unwrap();
        assert!(verify(&conv, &g, &input, &encoded).is_empty());
        assert_eq!(conv.decode_solution(&encoded), solution);
    }

    #[test]
    fn interning_dedupes_identical_descriptions() {
        // On a long path, interior nodes share descriptions.
        let g = gen::path(12);
        let general = two_coloring_general();
        let mut conv = ConvertedLcl::new(&general);
        let input = crate::uniform_input(&g);
        let solution = proper_coloring(&g);
        let _ = conv.encode_solution(&g, &input, &solution).unwrap();
        // Far fewer labels than half-edges.
        assert!(conv.label_count() < g.half_edge_count());
        assert!(conv.label_count() > 0);
    }
}
