//! The locally checkable labeling (LCL) formalism of the paper.
//!
//! This crate implements Section 2 of *The Landscape of Distributed
//! Complexities on Trees and Beyond* (PODC 2022):
//!
//! * [`Alphabet`], [`InLabel`], [`OutLabel`] — finite input/output label
//!   sets assigned to *half-edges* (the modern definition of LCLs labels
//!   half-edges rather than nodes or edges, Definition 2.2).
//! * [`Problem`] — the predicate view of a node-edge-checkable LCL
//!   (Definition 2.3): a node constraint `𝒩`, an edge constraint `ℰ`, and
//!   an input-output map `g`.
//! * [`LclProblem`] — an explicit, finite node-edge-checkable LCL with a
//!   human-readable text format ([`LclProblem::parse`]) and a builder.
//! * [`verify()`] — checks a candidate half-edge labeling against a problem
//!   and reports every violated node/edge (Definition 2.4's notion of an
//!   algorithm *failing at* a node or edge).
//! * [`GeneralLcl`] — the general form of Definition 2.2 (a finite set of
//!   accepted radius-`r` neighborhoods) plus the Lemma 2.6 conversion.
//!
//! # Examples
//!
//! Defining the 3-coloring problem and verifying a labeling on a triangle:
//!
//! ```
//! use lcl::{verify, HalfEdgeLabeling, LclProblem, OutLabel};
//! use lcl_graph::GraphBuilder;
//!
//! let p = LclProblem::parse(
//!     "name: 3-coloring\nmax-degree: 2\nnodes:\nA*\nB*\nC*\nedges:\nA B\nA C\nB C\n",
//! )?;
//! let mut b = GraphBuilder::new(3);
//! b.add_edge(0, 1)?;
//! b.add_edge(1, 2)?;
//! b.add_edge(2, 0)?;
//! let g = b.build()?;
//! // Color node v with color v: every node outputs its color on both ports.
//! let out = HalfEdgeLabeling::from_fn(&g, |h| OutLabel(g.node_of(h).0));
//! let input = lcl::uniform_input(&g);
//! assert!(verify(&p, &g, &input, &out).is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod canon;
pub mod convert;
pub mod gen;
pub mod label;
pub mod labeling;
pub mod parse;
pub mod problem;
pub mod verify;

pub use canon::{
    canonical_fingerprint, canonical_form, canonical_key, canonical_text_form, relabeled,
};
pub use convert::GeneralLcl;
pub use label::{Alphabet, InLabel, OutLabel};
pub use labeling::{uniform_input, HalfEdgeLabeling};
pub use parse::ParseError;
pub use problem::{LclProblem, LclProblemBuilder, Problem, ProblemBuildError};
pub use verify::{local_failure_fraction, verify, violating_nodes, violations_summary, Violation};
