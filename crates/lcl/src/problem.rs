//! Node-edge-checkable LCL problems (Definition 2.3 of the paper).
//!
//! A node-edge-checkable LCL is a quintuple
//! `Π = (Σ_in, Σ_out, 𝒩_Π, ℰ_Π, g_Π)`:
//!
//! * `𝒩_Π` — for each degree `i`, a collection of cardinality-`i`
//!   multisets of output labels allowed *around a node*,
//! * `ℰ_Π` — a collection of cardinality-2 multisets allowed *on an edge*,
//! * `g_Π : Σ_in → 2^{Σ_out}` — per-half-edge input/output compatibility.
//!
//! Two representations coexist:
//!
//! * [`LclProblem`] stores the constraints *extensionally* (explicit sets),
//!   which is what the parser, the classifier, and the speed-up pipeline
//!   operate on.
//! * [`Problem`] is the *intensional* (predicate) interface; the
//!   round-elimination crate implements it for derived problems `R(Π)` and
//!   `R̄(Π)` whose label universes are power sets and are never fully
//!   materialized (see `DESIGN.md`, design decision 1).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::label::{Alphabet, InLabel, OutLabel};

/// The predicate view of a node-edge-checkable LCL problem.
///
/// All slices of labels passed to the predicates represent *multisets*;
/// implementations must not depend on element order.
pub trait Problem {
    /// The maximum degree `Δ` the problem is defined for.
    fn max_degree(&self) -> u8;

    /// Number of input labels `|Σ_in|`.
    fn input_count(&self) -> usize;

    /// Number of output labels `|Σ_out|`, or `None` when the universe is
    /// too large to enumerate (derived round-elimination problems).
    fn output_count(&self) -> Option<usize>;

    /// Whether the multiset `outputs` is an allowed node configuration
    /// (membership in `𝒩_Π^{len}`).
    fn node_allows(&self, outputs: &[OutLabel]) -> bool;

    /// Whether the multiset `{a, b}` is an allowed edge configuration
    /// (membership in `ℰ_Π`).
    fn edge_allows(&self, a: OutLabel, b: OutLabel) -> bool;

    /// Whether output `out` is allowed on a half-edge with input `input`
    /// (membership in `g_Π(input)`).
    fn input_allows(&self, input: InLabel, out: OutLabel) -> bool;

    /// A short human-readable name for diagnostics.
    fn name(&self) -> &str {
        "unnamed"
    }
}

/// An explicit, finite node-edge-checkable LCL problem.
///
/// Construct with [`LclProblem::builder`] or [`LclProblem::parse`].
///
/// # Examples
///
/// ```
/// use lcl::{LclProblem, OutLabel};
///
/// let p = LclProblem::builder("sinkless-orientation", 3)
///     .outputs(["I", "O"])
///     .edge(&["I", "O"])
///     .node_pattern(&["O", "I*", "O*"]) // at least one outgoing half-edge
///     .build()?;
/// use lcl::Problem as _;
/// assert!(p.edge_allows(OutLabel(0), OutLabel(1)));
/// assert!(!p.edge_allows(OutLabel(0), OutLabel(0)));
/// # Ok::<(), lcl::ProblemBuildError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LclProblem {
    name: String,
    max_degree: u8,
    inputs: Alphabet,
    outputs: Alphabet,
    /// `node_configs[d]` = allowed sorted multisets of size `d` (index 0
    /// unused except for degree-0 nodes, which are always fine).
    node_configs: Vec<BTreeSet<Vec<OutLabel>>>,
    /// Allowed unordered pairs, stored with `a <= b`.
    edge_configs: BTreeSet<(OutLabel, OutLabel)>,
    /// `g[input]` = allowed outputs for that input.
    g: Vec<BTreeSet<OutLabel>>,
}

impl LclProblem {
    /// Starts building a problem with the given name and degree bound.
    pub fn builder(name: &str, max_degree: u8) -> LclProblemBuilder {
        LclProblemBuilder::new(name, max_degree)
    }

    /// The problem's name.
    pub fn problem_name(&self) -> &str {
        &self.name
    }

    /// The input alphabet `Σ_in`.
    pub fn input_alphabet(&self) -> &Alphabet {
        &self.inputs
    }

    /// The output alphabet `Σ_out`.
    pub fn output_alphabet(&self) -> &Alphabet {
        &self.outputs
    }

    /// The allowed node configurations of a given degree, as sorted
    /// multisets.
    pub fn node_configs(&self, degree: u8) -> impl Iterator<Item = &[OutLabel]> {
        self.node_configs
            .get(degree as usize)
            .into_iter()
            .flat_map(|s| s.iter().map(Vec::as_slice))
    }

    /// The allowed edge configurations, as pairs with `a <= b`.
    pub fn edge_configs(&self) -> impl Iterator<Item = (OutLabel, OutLabel)> + '_ {
        self.edge_configs.iter().copied()
    }

    /// The set `g_Π(input)`.
    pub fn allowed_outputs(&self, input: InLabel) -> impl Iterator<Item = OutLabel> + '_ {
        self.g[input.index()].iter().copied()
    }

    /// Renders the problem in the same text format accepted by
    /// [`LclProblem::parse`].
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("name: {}\n", self.name));
        s.push_str(&format!("max-degree: {}\n", self.max_degree));
        if self.inputs.len() > 1 || self.inputs.name(0) != "-" {
            let names: Vec<_> = self.inputs.iter().map(|(_, n)| n.to_string()).collect();
            s.push_str(&format!("inputs: {}\n", names.join(" ")));
        }
        let names: Vec<_> = self.outputs.iter().map(|(_, n)| n.to_string()).collect();
        s.push_str(&format!("outputs: {}\n", names.join(" ")));
        s.push_str("nodes:\n");
        for d in 1..=self.max_degree as usize {
            for config in &self.node_configs[d] {
                let line: Vec<_> = config
                    .iter()
                    .map(|&l| self.outputs.name(l.0).to_string())
                    .collect();
                s.push_str(&line.join(" "));
                s.push('\n');
            }
        }
        s.push_str("edges:\n");
        for &(a, b) in &self.edge_configs {
            s.push_str(&format!(
                "{} {}\n",
                self.outputs.name(a.0),
                self.outputs.name(b.0)
            ));
        }
        if self.inputs.len() > 1 || self.g.iter().any(|set| set.len() != self.outputs.len()) {
            s.push_str("g:\n");
            for (i, set) in self.g.iter().enumerate() {
                let outs: Vec<_> = set
                    .iter()
                    .map(|&l| self.outputs.name(l.0).to_string())
                    .collect();
                s.push_str(&format!(
                    "{} -> {}\n",
                    self.inputs.name(i as u32),
                    outs.join(" ")
                ));
            }
        }
        s
    }

    /// Relabels the problem with fresh label names (`L0, L1, ...`),
    /// preserving structure. Useful after round elimination, whose label
    /// names grow exponentially.
    pub fn with_opaque_names(&self) -> LclProblem {
        let mut p = self.clone();
        p.outputs = Alphabet::numbered("L", self.outputs.len());
        p
    }

    /// Total number of node configurations over all degrees.
    pub fn node_config_count(&self) -> usize {
        self.node_configs.iter().map(BTreeSet::len).sum()
    }

    /// Number of edge configurations.
    pub fn edge_config_count(&self) -> usize {
        self.edge_configs.len()
    }
}

impl Problem for LclProblem {
    fn max_degree(&self) -> u8 {
        self.max_degree
    }

    fn input_count(&self) -> usize {
        self.inputs.len()
    }

    fn output_count(&self) -> Option<usize> {
        Some(self.outputs.len())
    }

    fn node_allows(&self, outputs: &[OutLabel]) -> bool {
        if outputs.is_empty() {
            return true; // isolated nodes are vacuously fine
        }
        let Some(set) = self.node_configs.get(outputs.len()) else {
            return false;
        };
        let mut sorted = outputs.to_vec();
        sorted.sort_unstable();
        set.contains(&sorted)
    }

    fn edge_allows(&self, a: OutLabel, b: OutLabel) -> bool {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.edge_configs.contains(&key)
    }

    fn input_allows(&self, input: InLabel, out: OutLabel) -> bool {
        self.g
            .get(input.index())
            .is_some_and(|set| set.contains(&out))
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for LclProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (Δ={}, |Σ_in|={}, |Σ_out|={}, {} node / {} edge configs)",
            self.name,
            self.max_degree,
            self.inputs.len(),
            self.outputs.len(),
            self.node_config_count(),
            self.edge_config_count()
        )
    }
}

/// Expands a pattern (labels, some starred) into all sorted multisets of
/// size `degree`: plain atoms appear exactly once, starred atoms zero or
/// more times.
pub(crate) fn expand_pattern(
    atoms_plain: &[OutLabel],
    atoms_starred: &[OutLabel],
    degree: usize,
) -> Vec<Vec<OutLabel>> {
    if atoms_plain.len() > degree {
        return Vec::new();
    }
    let remaining = degree - atoms_plain.len();
    let mut result = Vec::new();
    // Distribute `remaining` among the starred atoms.
    fn recurse(
        starred: &[OutLabel],
        remaining: usize,
        acc: &mut Vec<OutLabel>,
        out: &mut Vec<Vec<OutLabel>>,
        base: &[OutLabel],
    ) {
        match starred.split_first() {
            None => {
                if remaining == 0 {
                    let mut config = base.to_vec();
                    config.extend_from_slice(acc);
                    config.sort_unstable();
                    out.push(config);
                }
            }
            Some((&first, rest)) => {
                for count in 0..=remaining {
                    let len_before = acc.len();
                    acc.extend(std::iter::repeat_n(first, count));
                    recurse(rest, remaining - count, acc, out, base);
                    acc.truncate(len_before);
                }
            }
        }
    }
    recurse(
        atoms_starred,
        remaining,
        &mut Vec::new(),
        &mut result,
        atoms_plain,
    );
    result.sort_unstable();
    result.dedup();
    result
}

/// Builder for [`LclProblem`]; see [`LclProblem::builder`].
#[derive(Clone, Debug)]
pub struct LclProblemBuilder {
    name: String,
    max_degree: u8,
    inputs: Vec<String>,
    outputs: Vec<String>,
    /// (plain atoms, starred atoms, degree restriction) by name.
    node_patterns: Vec<(Vec<String>, Vec<String>, Option<u8>)>,
    edge_pairs: Vec<(String, String)>,
    g_overrides: BTreeMap<String, Vec<String>>,
}

impl LclProblemBuilder {
    fn new(name: &str, max_degree: u8) -> Self {
        Self {
            name: name.to_string(),
            max_degree,
            inputs: Vec::new(),
            outputs: Vec::new(),
            node_patterns: Vec::new(),
            edge_pairs: Vec::new(),
            g_overrides: BTreeMap::new(),
        }
    }

    /// Declares the input alphabet. Defaults to the single label `-`.
    pub fn inputs<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.inputs = names.into_iter().map(Into::into).collect();
        self
    }

    /// Declares the output alphabet. Labels mentioned in configurations are
    /// added automatically; declaring them fixes their order.
    pub fn outputs<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.outputs = names.into_iter().map(Into::into).collect();
        self
    }

    /// Adds a node-configuration pattern. Atoms ending in `*` may repeat
    /// zero or more times; the pattern contributes one configuration for
    /// every degree `1..=Δ` it can fill exactly.
    pub fn node_pattern(self, atoms: &[&str]) -> Self {
        self.push_pattern(atoms, None)
    }

    /// Like [`node_pattern`](Self::node_pattern), but the pattern only
    /// contributes configurations of exactly the given degree — needed for
    /// problems whose constraint depends on the degree, like the standard
    /// sinkless orientation (only nodes of degree ≥ 3 need an out-edge).
    pub fn node_pattern_for_degree(self, degree: u8, atoms: &[&str]) -> Self {
        self.push_pattern(atoms, Some(degree))
    }

    fn push_pattern(mut self, atoms: &[&str], degree: Option<u8>) -> Self {
        let mut plain = Vec::new();
        let mut starred = Vec::new();
        for atom in atoms {
            if let Some(stripped) = atom.strip_suffix('*') {
                starred.push(stripped.to_string());
            } else {
                plain.push(atom.to_string());
            }
        }
        self.node_patterns.push((plain, starred, degree));
        self
    }

    /// Adds a single explicit node configuration (no stars).
    pub fn node(self, labels: &[&str]) -> Self {
        self.node_pattern(labels)
    }

    /// Adds an allowed edge configuration `{a, b}`.
    ///
    /// # Panics
    ///
    /// Panics if not given exactly two labels.
    pub fn edge(mut self, pair: &[&str]) -> Self {
        assert_eq!(pair.len(), 2, "edge configurations have two labels");
        self.edge_pairs
            .push((pair[0].to_string(), pair[1].to_string()));
        self
    }

    /// Restricts `g(input)` to the given outputs (default: all outputs).
    pub fn allow(mut self, input: &str, outputs: &[&str]) -> Self {
        self.g_overrides.insert(
            input.to_string(),
            outputs.iter().map(|s| s.to_string()).collect(),
        );
        self
    }

    /// Finalizes the problem.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found as a typed
    /// [`ProblemBuildError`] (unknown label names, empty constraint sets,
    /// stars in edge configurations, out-of-range degree restrictions).
    pub fn build(self) -> Result<LclProblem, ProblemBuildError> {
        let inputs = if self.inputs.is_empty() {
            Alphabet::from_names(["-"])
        } else {
            Alphabet::from_names(self.inputs.clone())
        };
        let mut outputs = Alphabet::new();
        for name in &self.outputs {
            if outputs.try_insert(name).is_none() {
                return Err(ProblemBuildError::DuplicateOutputLabel {
                    label: name.clone(),
                });
            }
        }
        // Auto-intern labels mentioned in configurations.
        for (plain, starred, _) in &self.node_patterns {
            for name in plain.iter().chain(starred) {
                outputs.intern(name);
            }
        }
        for (a, b) in &self.edge_pairs {
            outputs.intern(a);
            outputs.intern(b);
        }
        if outputs.is_empty() {
            return Err(ProblemBuildError::EmptyOutputAlphabet);
        }

        let lookup = |name: &str| -> Result<OutLabel, ProblemBuildError> {
            outputs.index_of(name).map(OutLabel).ok_or_else(|| {
                ProblemBuildError::UnknownOutputLabel {
                    label: name.to_string(),
                }
            })
        };

        let mut node_configs = vec![BTreeSet::new(); self.max_degree as usize + 1];
        for (plain, starred, degree) in &self.node_patterns {
            let plain: Vec<OutLabel> = plain.iter().map(|n| lookup(n)).collect::<Result<_, _>>()?;
            let starred: Vec<OutLabel> = starred
                .iter()
                .map(|n| lookup(n))
                .collect::<Result<_, _>>()?;
            if let Some(d) = degree {
                if *d < 1 || *d > self.max_degree {
                    return Err(ProblemBuildError::DegreeOutOfRange {
                        degree: *d,
                        max_degree: self.max_degree,
                    });
                }
            }
            #[allow(clippy::needless_range_loop)] // index drives several arrays
            for d in 1..=self.max_degree as usize {
                if degree.is_some_and(|only| usize::from(only) != d) {
                    continue;
                }
                for config in expand_pattern(&plain, &starred, d) {
                    node_configs[d].insert(config);
                }
            }
        }

        let mut edge_configs = BTreeSet::new();
        for (a, b) in &self.edge_pairs {
            if a.ends_with('*') || b.ends_with('*') {
                return Err(ProblemBuildError::StarredEdgeLabel);
            }
            let (a, b) = (lookup(a)?, lookup(b)?);
            edge_configs.insert(if a <= b { (a, b) } else { (b, a) });
        }

        let all_outputs: BTreeSet<OutLabel> = (0..outputs.len() as u32).map(OutLabel).collect();
        let mut g = vec![all_outputs; inputs.len()];
        for (input, allowed) in &self.g_overrides {
            let idx =
                inputs
                    .index_of(input)
                    .ok_or_else(|| ProblemBuildError::UnknownInputLabel {
                        label: input.clone(),
                    })? as usize;
            let set: BTreeSet<OutLabel> = allowed
                .iter()
                .map(|n| lookup(n))
                .collect::<Result<_, _>>()?;
            g[idx] = set;
        }

        Ok(LclProblem {
            name: self.name,
            max_degree: self.max_degree,
            inputs,
            outputs,
            node_configs,
            edge_configs,
            g,
        })
    }
}

/// An inconsistency detected by [`LclProblemBuilder::build`].
///
/// Each variant pinpoints the first invalid piece of the problem
/// description; the [`Display`](fmt::Display) rendering matches the prose
/// used by the text-format parser's diagnostics.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ProblemBuildError {
    /// The same output label name was declared twice via
    /// [`LclProblemBuilder::outputs`].
    DuplicateOutputLabel {
        /// The offending label name.
        label: String,
    },
    /// No output labels were declared and none could be inferred from the
    /// node/edge configurations.
    EmptyOutputAlphabet,
    /// A configuration or `g`-override referenced an output label that was
    /// never declared or mentioned in a configuration.
    UnknownOutputLabel {
        /// The unresolved label name.
        label: String,
    },
    /// A `g`-override referenced an input label outside the declared input
    /// alphabet.
    UnknownInputLabel {
        /// The unresolved label name.
        label: String,
    },
    /// An edge configuration used a starred (`X*`) label; stars are only
    /// meaningful in node patterns.
    StarredEdgeLabel,
    /// A node pattern's degree restriction lies outside `1..=max_degree`.
    DegreeOutOfRange {
        /// The requested degree restriction.
        degree: u8,
        /// The problem's maximum degree.
        max_degree: u8,
    },
}

impl fmt::Display for ProblemBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateOutputLabel { label } => {
                write!(f, "duplicate output label {label:?}")
            }
            Self::EmptyOutputAlphabet => write!(f, "problem has no output labels"),
            Self::UnknownOutputLabel { label } => {
                write!(f, "unknown output label {label:?}")
            }
            Self::UnknownInputLabel { label } => {
                write!(f, "unknown input label {label:?}")
            }
            Self::StarredEdgeLabel => {
                write!(f, "stars are not allowed in edge configurations")
            }
            Self::DegreeOutOfRange { degree, max_degree } => {
                write!(f, "degree restriction {degree} outside 1..={max_degree}")
            }
        }
    }
}

impl std::error::Error for ProblemBuildError {}

/// Constructs an [`LclProblem`] directly from explicit, already-indexed
/// parts. Used by the round-elimination engine, which produces labels as
/// indices rather than names.
#[allow(clippy::too_many_arguments)]
pub fn from_parts(
    name: String,
    max_degree: u8,
    inputs: Alphabet,
    outputs: Alphabet,
    node_configs: Vec<BTreeSet<Vec<OutLabel>>>,
    edge_configs: BTreeSet<(OutLabel, OutLabel)>,
    g: Vec<BTreeSet<OutLabel>>,
) -> LclProblem {
    assert_eq!(node_configs.len(), max_degree as usize + 1);
    assert_eq!(g.len(), inputs.len());
    LclProblem {
        name,
        max_degree,
        inputs,
        outputs,
        node_configs,
        edge_configs,
        g,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_coloring() -> LclProblem {
        LclProblem::builder("3col", 3)
            .outputs(["A", "B", "C"])
            .node_pattern(&["A*"])
            .node_pattern(&["B*"])
            .node_pattern(&["C*"])
            .edge(&["A", "B"])
            .edge(&["A", "C"])
            .edge(&["B", "C"])
            .build()
            .unwrap()
    }

    #[test]
    fn coloring_constraints() {
        let p = three_coloring();
        let (a, b) = (OutLabel(0), OutLabel(1));
        assert!(p.node_allows(&[a, a, a]));
        assert!(p.node_allows(&[a]));
        assert!(!p.node_allows(&[a, b]));
        assert!(p.edge_allows(a, b));
        assert!(p.edge_allows(b, a));
        assert!(!p.edge_allows(a, a));
        assert!(p.input_allows(InLabel(0), a));
    }

    #[test]
    fn isolated_nodes_are_vacuously_ok() {
        let p = three_coloring();
        assert!(p.node_allows(&[]));
    }

    #[test]
    fn expand_pattern_star_fills_degrees() {
        let a = OutLabel(0);
        let b = OutLabel(1);
        // "A B*" at degree 3 = {A,B,B}.
        let configs = expand_pattern(&[a], &[b], 3);
        assert_eq!(configs, vec![vec![a, b, b]]);
        // "A* B*" at degree 2 = {A,A}, {A,B}, {B,B}.
        let configs = expand_pattern(&[], &[a, b], 2);
        assert_eq!(configs, vec![vec![a, a], vec![a, b], vec![b, b]]);
        // Too many plain atoms for the degree: no configs.
        assert!(expand_pattern(&[a, a], &[], 1).is_empty());
    }

    #[test]
    fn sinkless_orientation_patterns() {
        let p = LclProblem::builder("sinkless", 3)
            .outputs(["I", "O"])
            .edge(&["I", "O"])
            .node_pattern(&["O", "I*", "O*"])
            .build()
            .unwrap();
        let (i, o) = (OutLabel(0), OutLabel(1));
        assert!(p.node_allows(&[o]));
        assert!(p.node_allows(&[i, o, o]));
        assert!(p.node_allows(&[i, i, o]));
        assert!(!p.node_allows(&[i, i, i]));
        assert!(p.edge_allows(i, o));
        assert!(!p.edge_allows(o, o));
    }

    #[test]
    fn builder_rejects_unknown_labels_in_g() {
        let err = LclProblem::builder("bad", 2)
            .outputs(["A"])
            .node_pattern(&["A*"])
            .edge(&["A", "A"])
            .allow("-", &["Z"])
            .build()
            .unwrap_err();
        assert!(matches!(
            &err,
            ProblemBuildError::UnknownOutputLabel { label } if label == "Z"
        ));
        assert!(err.to_string().contains("unknown output label"));
    }

    #[test]
    fn builder_rejects_empty_output_alphabet() {
        assert!(LclProblem::builder("empty", 2).build().is_err());
    }

    #[test]
    fn g_override_restricts_outputs() {
        let p = LclProblem::builder("orient", 2)
            .inputs(["head", "tail"])
            .outputs(["H", "T"])
            .node_pattern(&["H*", "T*"])
            .edge(&["H", "T"])
            .edge(&["H", "H"])
            .edge(&["T", "T"])
            .allow("head", &["H"])
            .allow("tail", &["T"])
            .build()
            .unwrap();
        assert!(p.input_allows(InLabel(0), OutLabel(0)));
        assert!(!p.input_allows(InLabel(0), OutLabel(1)));
        assert!(p.input_allows(InLabel(1), OutLabel(1)));
    }

    #[test]
    fn to_text_roundtrip() {
        let p = three_coloring();
        let text = p.to_text();
        let q = LclProblem::parse(&text).unwrap();
        assert_eq!(p.node_config_count(), q.node_config_count());
        assert_eq!(p.edge_config_count(), q.edge_config_count());
        assert_eq!(p.output_alphabet().len(), q.output_alphabet().len());
    }

    #[test]
    fn display_summarizes() {
        let p = three_coloring();
        let s = p.to_string();
        assert!(s.contains("3col"));
        assert!(s.contains("Δ=3"));
    }

    #[test]
    fn opaque_names_preserve_structure() {
        let p = three_coloring();
        let q = p.with_opaque_names();
        assert_eq!(q.output_alphabet().name(0), "L0");
        assert_eq!(p.node_config_count(), q.node_config_count());
    }
}
