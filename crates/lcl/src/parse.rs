//! A human-readable text format for [`LclProblem`]s.
//!
//! The format doubles as the fixture format of the test suite and is close
//! to the one used by the round-eliminator community tool:
//!
//! ```text
//! name: sinkless-orientation     # optional
//! max-degree: 3                  # required
//! inputs: plain mark             # optional, default a single label "-"
//! outputs: I O                   # optional, inferred from configs
//! nodes:                         # one configuration pattern per line
//! O I* O*
//! edges:                         # one pair per line, no stars
//! I O
//! g:                             # optional, default: every output allowed
//! plain -> I O
//! mark -> O
//! ```
//!
//! `X*` in a node pattern means "zero or more repetitions of `X`"; a
//! pattern contributes one configuration for every degree `1..=Δ` it can
//! fill exactly. `#` starts a comment.

use std::error::Error;
use std::fmt;

use crate::problem::{LclProblem, LclProblemBuilder};

/// Error returned by [`LclProblem::parse`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    line: usize,
    message: String,
}

impl ParseError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }

    /// The 1-based line the error occurred on (0 for file-level errors).
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl Error for ParseError {}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Section {
    Header,
    Nodes,
    Edges,
    G,
}

impl LclProblem {
    /// Parses a problem from the text format described in the
    /// [module documentation](crate::parse).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] pointing at the offending line for unknown
    /// headers, missing `max-degree`, malformed configurations, or
    /// inconsistent label usage.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcl::LclProblem;
    ///
    /// let p = LclProblem::parse(
    ///     "max-degree: 2\nnodes:\nA*\nB*\nedges:\nA B\n",
    /// )?;
    /// assert_eq!(p.output_alphabet().len(), 2);
    /// # Ok::<(), lcl::ParseError>(())
    /// ```
    pub fn parse(text: &str) -> Result<LclProblem, ParseError> {
        let mut name = "unnamed".to_string();
        let mut max_degree: Option<u8> = None;
        let mut inputs: Vec<String> = Vec::new();
        let mut outputs: Vec<String> = Vec::new();
        let mut node_lines: Vec<(usize, Vec<String>)> = Vec::new();
        let mut edge_lines: Vec<(usize, Vec<String>)> = Vec::new();
        let mut g_lines: Vec<(usize, String)> = Vec::new();
        let mut section = Section::Header;

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = match raw.find('#') {
                Some(pos) => &raw[..pos],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            match line {
                "nodes:" => {
                    section = Section::Nodes;
                    continue;
                }
                "edges:" => {
                    section = Section::Edges;
                    continue;
                }
                "g:" => {
                    section = Section::G;
                    continue;
                }
                _ => {}
            }
            match section {
                Section::Header => {
                    let (key, value) = line.split_once(':').ok_or_else(|| {
                        ParseError::new(lineno, format!("expected `key: value`, got {line:?}"))
                    })?;
                    let value = value.trim();
                    match key.trim() {
                        "name" => name = value.to_string(),
                        "max-degree" => {
                            let d: u8 = value.parse().map_err(|_| {
                                ParseError::new(lineno, format!("bad max-degree {value:?}"))
                            })?;
                            max_degree = Some(d);
                        }
                        "inputs" => inputs = value.split_whitespace().map(String::from).collect(),
                        "outputs" => outputs = value.split_whitespace().map(String::from).collect(),
                        other => {
                            return Err(ParseError::new(
                                lineno,
                                format!("unknown header {other:?}"),
                            ))
                        }
                    }
                }
                Section::Nodes => {
                    let atoms: Vec<String> = line.split_whitespace().map(String::from).collect();
                    node_lines.push((lineno, atoms));
                }
                Section::Edges => {
                    let atoms: Vec<String> = line.split_whitespace().map(String::from).collect();
                    if atoms.len() != 2 {
                        return Err(ParseError::new(
                            lineno,
                            "edge configurations have exactly two labels",
                        ));
                    }
                    edge_lines.push((lineno, atoms));
                }
                Section::G => g_lines.push((lineno, line.to_string())),
            }
        }

        let max_degree =
            max_degree.ok_or_else(|| ParseError::new(0, "missing `max-degree:` header"))?;

        let mut builder: LclProblemBuilder = LclProblem::builder(&name, max_degree);
        if !inputs.is_empty() {
            builder = builder.inputs(inputs);
        }
        if !outputs.is_empty() {
            builder = builder.outputs(outputs);
        }
        for (lineno, atoms) in &node_lines {
            // An optional leading `@d` restricts the pattern to degree d.
            let (degree, rest) = match atoms.first().and_then(|a| a.strip_prefix('@')) {
                Some(digits) => {
                    let d: u8 = digits.parse().map_err(|_| {
                        ParseError::new(*lineno, format!("bad degree restriction @{digits}"))
                    })?;
                    (Some(d), &atoms[1..])
                }
                None => (None, &atoms[..]),
            };
            let refs: Vec<&str> = rest.iter().map(String::as_str).collect();
            builder = match degree {
                Some(d) => builder.node_pattern_for_degree(d, &refs),
                None => builder.node_pattern(&refs),
            };
        }
        for (lineno, atoms) in &edge_lines {
            if atoms.iter().any(|a| a.ends_with('*')) {
                return Err(ParseError::new(
                    *lineno,
                    "stars are not allowed in edge configurations",
                ));
            }
            builder = builder.edge(&[&atoms[0], &atoms[1]]);
        }
        for (lineno, line) in &g_lines {
            let (input, outs) = line
                .split_once("->")
                .ok_or_else(|| ParseError::new(*lineno, "expected `input -> outputs...`"))?;
            let outs: Vec<&str> = outs.split_whitespace().collect();
            builder = builder.allow(input.trim(), &outs);
        }

        builder
            .build()
            .map_err(|e| ParseError::new(0, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{InLabel, OutLabel};
    use crate::problem::Problem;

    #[test]
    fn parses_three_coloring() {
        let p = LclProblem::parse(
            "name: 3col\nmax-degree: 3\nnodes:\nA*\nB*\nC*\nedges:\nA B\nA C\nB C\n",
        )
        .unwrap();
        assert_eq!(p.problem_name(), "3col");
        assert_eq!(p.output_alphabet().len(), 3);
        assert_eq!(p.edge_config_count(), 3);
        // Degrees 1..=3, three colors each.
        assert_eq!(p.node_config_count(), 9);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let p =
            LclProblem::parse("# a comment\nmax-degree: 2\n\nnodes:\nA*  # star\nedges:\nA A\n")
                .unwrap();
        assert_eq!(p.output_alphabet().len(), 1);
    }

    #[test]
    fn missing_max_degree_is_an_error() {
        let err = LclProblem::parse("nodes:\nA\nedges:\nA A\n").unwrap_err();
        assert!(err.to_string().contains("max-degree"));
    }

    #[test]
    fn unknown_header_is_an_error() {
        let err = LclProblem::parse("max-degre: 3\n").unwrap_err();
        assert_eq!(err.line(), 1);
    }

    #[test]
    fn edge_with_three_labels_is_an_error() {
        let err = LclProblem::parse("max-degree: 2\nnodes:\nA*\nedges:\nA A A\n").unwrap_err();
        assert!(err.to_string().contains("two labels"));
    }

    #[test]
    fn starred_edge_is_an_error() {
        let err = LclProblem::parse("max-degree: 2\nnodes:\nA*\nedges:\nA A*\n").unwrap_err();
        assert!(err.to_string().contains("stars"));
    }

    #[test]
    fn g_section_parses() {
        let p = LclProblem::parse(
            "max-degree: 2\ninputs: x y\noutputs: A B\nnodes:\nA*\nB*\nedges:\nA B\ng:\nx -> A\ny -> A B\n",
        )
        .unwrap();
        assert!(p.input_allows(InLabel(0), OutLabel(0)));
        assert!(!p.input_allows(InLabel(0), OutLabel(1)));
        assert!(p.input_allows(InLabel(1), OutLabel(1)));
    }

    #[test]
    fn malformed_g_line_is_an_error() {
        let err = LclProblem::parse("max-degree: 2\nnodes:\nA*\nedges:\nA A\ng:\nno arrow here\n")
            .unwrap_err();
        assert!(err.to_string().contains("->"));
    }

    #[test]
    fn parse_error_display_without_line() {
        let err = LclProblem::parse("max-degree: 2\n").unwrap_err();
        assert!(!err.to_string().is_empty());
        assert_eq!(err.line(), 0);
    }
}
