//! Solution verification and local failure accounting (Definition 2.4).
//!
//! An output labeling is *incorrect on an edge* `e = {u, v}` if the pair of
//! labels on `H[e]` is not in `ℰ_Π` or violates `g_Π` on either half-edge;
//! it is *incorrect at a node* `v` if the multiset on `H[v]` is not in
//! `𝒩_Π^{deg(v)}` or violates `g_Π` on some incident half-edge. The
//! verifier reports every failing object, which is exactly the granularity
//! at which the paper's *local failure probability* is defined.

use lcl_graph::{EdgeId, Graph, HalfEdgeId, NodeId};

use crate::label::{InLabel, OutLabel};
use crate::labeling::HalfEdgeLabeling;
use crate::problem::Problem;

/// A single verification failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Violation {
    /// The label pair on the edge is not an allowed edge configuration.
    EdgeConfig { edge: EdgeId },
    /// An output label violates `g_Π` on a half-edge of this edge.
    EdgeInputMap { edge: EdgeId, half_edge: HalfEdgeId },
    /// The label multiset around the node is not an allowed node
    /// configuration.
    NodeConfig { node: NodeId },
    /// An output label violates `g_Π` on a half-edge of this node.
    NodeInputMap { node: NodeId, half_edge: HalfEdgeId },
}

impl Violation {
    /// Whether the violation is attributed to an edge (as opposed to a
    /// node).
    pub fn is_edge(&self) -> bool {
        matches!(
            self,
            Violation::EdgeConfig { .. } | Violation::EdgeInputMap { .. }
        )
    }
}

/// Verifies `output` against problem `p` on `graph` with the given input
/// labeling; returns every violation (empty means the solution is correct).
///
/// Per Definition 2.4, a `g_Π` violation is charged to *both* the edge and
/// the node it occurs at, so it can appear twice with different variants.
///
/// # Panics
///
/// Panics if the labelings do not cover every half-edge of `graph`.
pub fn verify<P: Problem + ?Sized>(
    p: &P,
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    output: &HalfEdgeLabeling<OutLabel>,
) -> Vec<Violation> {
    assert_eq!(input.len(), graph.half_edge_count(), "input covers graph");
    assert_eq!(output.len(), graph.half_edge_count(), "output covers graph");
    let mut violations = Vec::new();

    for e in graph.edges() {
        let [h1, h2] = graph.halves_of_edge(e);
        if !p.edge_allows(output.get(h1), output.get(h2)) {
            violations.push(Violation::EdgeConfig { edge: e });
        }
        for h in [h1, h2] {
            if !p.input_allows(input.get(h), output.get(h)) {
                violations.push(Violation::EdgeInputMap {
                    edge: e,
                    half_edge: h,
                });
            }
        }
    }

    for v in graph.nodes() {
        let around = output.around_node(graph, v);
        if !p.node_allows(&around) {
            violations.push(Violation::NodeConfig { node: v });
        }
        for h in graph.half_edges_of(v) {
            if !p.input_allows(input.get(h), output.get(h)) {
                violations.push(Violation::NodeInputMap {
                    node: v,
                    half_edge: h,
                });
            }
        }
    }

    violations
}

/// The fraction of *objects* (nodes plus edges) at which the labeling
/// fails; `0.0` means correct. This is the empirical counterpart of the
/// paper's local failure probability for one sample.
pub fn local_failure_fraction<P: Problem + ?Sized>(
    p: &P,
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    output: &HalfEdgeLabeling<OutLabel>,
) -> f64 {
    let violations = verify(p, graph, input, output);
    let mut failed_nodes = std::collections::BTreeSet::new();
    let mut failed_edges = std::collections::BTreeSet::new();
    for v in &violations {
        match *v {
            Violation::EdgeConfig { edge } | Violation::EdgeInputMap { edge, .. } => {
                failed_edges.insert(edge);
            }
            Violation::NodeConfig { node } | Violation::NodeInputMap { node, .. } => {
                failed_nodes.insert(node);
            }
        }
    }
    let objects = graph.node_count() + graph.edge_count();
    if objects == 0 {
        return 0.0;
    }
    (failed_nodes.len() + failed_edges.len()) as f64 / objects as f64
}

/// The nodes a repair pass must touch to mend `violations`: each
/// node-attributed violation contributes its node, each edge-attributed
/// violation both endpoints of its edge. Sorted and deduplicated — this
/// is the seed set for localized mending (expanding-ball re-execution),
/// which is what makes the node-edge-checkable form locally *mendable*
/// and not just locally checkable.
pub fn violating_nodes(graph: &Graph, violations: &[Violation]) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = Vec::new();
    for v in violations {
        match *v {
            Violation::EdgeConfig { edge } | Violation::EdgeInputMap { edge, .. } => {
                nodes.extend(graph.endpoints(edge));
            }
            Violation::NodeConfig { node } | Violation::NodeInputMap { node, .. } => {
                nodes.push(node);
            }
        }
    }
    nodes.sort_unstable();
    nodes.dedup();
    nodes
}

/// A short human-readable summary of a violation list.
pub fn violations_summary(violations: &[Violation]) -> String {
    if violations.is_empty() {
        return "valid".to_string();
    }
    let edges = violations.iter().filter(|v| v.is_edge()).count();
    let nodes = violations.len() - edges;
    format!(
        "{} violations ({} edge-attributed, {} node-attributed)",
        violations.len(),
        edges,
        nodes
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::LclProblem;
    use lcl_graph::gen;

    fn two_coloring() -> LclProblem {
        LclProblem::builder("2col", 2)
            .outputs(["A", "B"])
            .node_pattern(&["A*"])
            .node_pattern(&["B*"])
            .edge(&["A", "B"])
            .build()
            .unwrap()
    }

    #[test]
    fn proper_two_coloring_verifies() {
        let g = gen::path(6);
        let p = two_coloring();
        let input = crate::uniform_input(&g);
        let output =
            HalfEdgeLabeling::from_node_fn(&g, |v| vec![OutLabel(v.0 % 2); g.degree(v) as usize]);
        assert!(verify(&p, &g, &input, &output).is_empty());
        assert_eq!(local_failure_fraction(&p, &g, &input, &output), 0.0);
    }

    #[test]
    fn monochromatic_edge_is_caught() {
        let g = gen::path(3);
        let p = two_coloring();
        let input = crate::uniform_input(&g);
        let output = HalfEdgeLabeling::uniform(&g, OutLabel(0));
        let violations = verify(&p, &g, &input, &output);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::EdgeConfig { .. })));
        assert!(local_failure_fraction(&p, &g, &input, &output) > 0.0);
    }

    #[test]
    fn mixed_node_configuration_is_caught() {
        let g = gen::path(3);
        let p = two_coloring();
        let input = crate::uniform_input(&g);
        // The middle node outputs different colors on its two half-edges.
        let output = HalfEdgeLabeling::from_fn(&g, |h| {
            if g.node_of(h).0 == 1 {
                OutLabel(g.port_of(h) as u32)
            } else {
                OutLabel(1 - g.node_of(h).0 % 2)
            }
        });
        let violations = verify(&p, &g, &input, &output);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::NodeConfig { node } if node.0 == 1)));
    }

    #[test]
    fn g_violation_charged_to_node_and_edge() {
        let p = LclProblem::builder("marked", 2)
            .inputs(["plain", "forced"])
            .outputs(["A", "B"])
            .node_pattern(&["A*", "B*"])
            .edge(&["A", "A"])
            .edge(&["A", "B"])
            .edge(&["B", "B"])
            .allow("forced", &["B"])
            .build()
            .unwrap();
        let g = gen::path(2);
        let input = HalfEdgeLabeling::uniform(&g, InLabel(1)); // all forced
        let output = HalfEdgeLabeling::uniform(&g, OutLabel(0)); // all A
        let violations = verify(&p, &g, &input, &output);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::EdgeInputMap { .. })));
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::NodeInputMap { .. })));
    }

    #[test]
    fn summary_counts_sides() {
        let g = gen::path(3);
        let p = two_coloring();
        let input = crate::uniform_input(&g);
        let output = HalfEdgeLabeling::uniform(&g, OutLabel(0));
        let violations = verify(&p, &g, &input, &output);
        let summary = violations_summary(&violations);
        assert!(summary.contains("violations"));
        assert_eq!(violations_summary(&[]), "valid");
    }

    #[test]
    fn violating_nodes_localizes_both_kinds() {
        let g = gen::path(4);
        let p = two_coloring();
        let input = crate::uniform_input(&g);
        // Monochromatic output: every edge fails, so every node is in
        // the mending seed set.
        let output = HalfEdgeLabeling::uniform(&g, OutLabel(0));
        let violations = verify(&p, &g, &input, &output);
        let nodes = violating_nodes(&g, &violations);
        assert_eq!(nodes.len(), 4, "edge violations pull in both endpoints");
        assert!(nodes.windows(2).all(|w| w[0] < w[1]), "sorted and deduped");
        assert!(violating_nodes(&g, &[]).is_empty());
        // A node-only violation (mixed colors at the middle node of a
        // path) localizes to exactly that node's neighborhood.
        let mixed = HalfEdgeLabeling::from_fn(&g, |h| {
            if g.node_of(h).0 == 1 {
                OutLabel(g.port_of(h) as u32)
            } else {
                OutLabel(1 - g.node_of(h).0 % 2)
            }
        });
        let node_viols: Vec<Violation> = verify(&p, &g, &input, &mixed)
            .into_iter()
            .filter(|v| !v.is_edge())
            .collect();
        assert!(violating_nodes(&g, &node_viols).contains(&lcl_graph::NodeId(1)));
    }

    #[test]
    fn empty_graph_has_zero_failure() {
        let g = lcl_graph::GraphBuilder::new(0).build().unwrap();
        let p = two_coloring();
        let input = crate::uniform_input(&g);
        let output = HalfEdgeLabeling::uniform(&g, OutLabel(0));
        assert_eq!(local_failure_fraction(&p, &g, &input, &output), 0.0);
    }
}
