//! Labels and alphabets.
//!
//! Input and output labels are kept in distinct index spaces ([`InLabel`]
//! vs [`OutLabel`]) so that the type system rules out mixing them up — the
//! paper's `g_Π : Σ_in → 2^{Σ_out}` is the only bridge between the two.

use std::collections::HashMap;
use std::fmt;

/// An input label: an index into a problem's input [`Alphabet`] `Σ_in`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct InLabel(pub u32);

/// An output label: an index into a problem's output [`Alphabet`] `Σ_out`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct OutLabel(pub u32);

impl InLabel {
    /// Returns the label as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl OutLabel {
    /// Returns the label as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in{}", self.0)
    }
}

impl fmt::Display for OutLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "out{}", self.0)
    }
}

/// A finite, named label set.
///
/// # Examples
///
/// ```
/// use lcl::Alphabet;
///
/// let sigma = Alphabet::from_names(["A", "B", "C"]);
/// assert_eq!(sigma.len(), 3);
/// assert_eq!(sigma.index_of("B"), Some(1));
/// assert_eq!(sigma.name(1), "B");
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Alphabet {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an alphabet from names, in order.
    ///
    /// # Panics
    ///
    /// Panics if a name repeats.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut a = Self::new();
        for name in names {
            let name = name.into();
            assert!(
                a.try_insert(&name).is_some(),
                "duplicate label name {name:?}"
            );
        }
        a
    }

    /// An alphabet `{prefix0, prefix1, ...}` of the given size.
    pub fn numbered(prefix: &str, size: usize) -> Self {
        Self::from_names((0..size).map(|i| format!("{prefix}{i}")))
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the alphabet has no labels.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The name of label index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn name(&self, i: u32) -> &str {
        &self.names[i as usize]
    }

    /// Looks up the index of `name`.
    pub fn index_of(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// Inserts `name` if absent; returns its index, or `None` if it already
    /// existed.
    pub fn try_insert(&mut self, name: &str) -> Option<u32> {
        if self.index.contains_key(name) {
            return None;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        Some(id)
    }

    /// Returns the index of `name`, inserting it if needed.
    pub fn intern(&mut self, name: &str) -> u32 {
        match self.index_of(name) {
            Some(i) => i,
            None => self.try_insert(name).expect("absent name inserts"),
        }
    }

    /// Iterator over `(index, name)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_str()))
    }
}

impl fmt::Display for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}}}", self.names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_names_assigns_indices_in_order() {
        let a = Alphabet::from_names(["x", "y"]);
        assert_eq!(a.index_of("x"), Some(0));
        assert_eq!(a.index_of("y"), Some(1));
        assert_eq!(a.index_of("z"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn from_names_rejects_duplicates() {
        let _ = Alphabet::from_names(["x", "x"]);
    }

    #[test]
    fn intern_is_idempotent() {
        let mut a = Alphabet::new();
        assert_eq!(a.intern("q"), 0);
        assert_eq!(a.intern("q"), 0);
        assert_eq!(a.intern("r"), 1);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn numbered_alphabet() {
        let a = Alphabet::numbered("L", 3);
        assert_eq!(a.name(2), "L2");
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn display_lists_names() {
        let a = Alphabet::from_names(["A", "B"]);
        assert_eq!(a.to_string(), "{A, B}");
    }

    #[test]
    fn iter_matches_indices() {
        let a = Alphabet::from_names(["A", "B"]);
        let pairs: Vec<_> = a.iter().collect();
        assert_eq!(pairs, vec![(0, "A"), (1, "B")]);
    }
}
