//! Canonical forms and content-addressed fingerprints for
//! [`LclProblem`]s.
//!
//! Two LCL problems are *structurally identical* when one is the other
//! with its output labels renamed: the constraint structure — node
//! configurations, edge configurations, and the `g` map — is the same up
//! to a permutation of `Σ_out`. The classification pipeline is invariant
//! under such renamings (Definition 2.3 never inspects label names), so
//! a content-addressed store should serve both spellings from one cached
//! tower.
//!
//! [`canonical_form`] picks one representative per structural class:
//!
//! 1. **Color refinement** — output labels are partitioned by an
//!    iterated, permutation-invariant signature (how often the label
//!    appears in node configurations of each degree, which refinement
//!    classes it meets on edges and inside configurations, which inputs
//!    admit it).
//! 2. **Bounded symmetry search** — when refinement leaves ties, every
//!    ordering consistent with the classes (up to
//!    [`SEARCH_CAP`] candidates) is rendered and the lexicographically
//!    smallest structural text wins. Problems whose residual symmetry
//!    group is larger fall back to the refined order with the original
//!    index as tiebreak; the result is still deterministic, merely not
//!    guaranteed to collide across renamings (a cache miss, never a
//!    wrong answer).
//! 3. **Relabel** — outputs are renamed `L0, L1, …` in the chosen
//!    order; configurations are re-sorted under the new indices.
//!
//! [`canonical_fingerprint`] is the 64-bit FNV-1a hash of the canonical
//! form's structural text (name-free, index-based), matching the hash
//! the tower snapshot store keys on.

use std::collections::BTreeSet;

use crate::label::{Alphabet, OutLabel};
use crate::problem::{from_parts, LclProblem, Problem as _};

/// Upper bound on the number of label orderings the symmetry search will
/// render. `7! = 5040` keeps fully-symmetric alphabets up to 7 labels
/// exact while bounding the worst case.
pub const SEARCH_CAP: usize = 5040;

/// The canonical representative of `p`'s structural class. See the
/// module docs for the construction; the result always has opaque
/// `L0, L1, …` output names and carries the same problem name.
///
/// # Examples
///
/// ```
/// use lcl::{canonical_fingerprint, LclProblem};
///
/// let p = LclProblem::parse("name: a\nmax-degree: 2\nnodes:\nX*\nY*\nedges:\nX Y\n")?;
/// let q = LclProblem::parse("name: b\nmax-degree: 2\nnodes:\nQ*\nP*\nedges:\nP Q\n")?;
/// assert_eq!(canonical_fingerprint(&p), canonical_fingerprint(&q));
/// # Ok::<(), lcl::ParseError>(())
/// ```
pub fn canonical_form(p: &LclProblem) -> LclProblem {
    let classes = refine_classes(p);
    let order = choose_order(p, &classes);
    relabeled(p, &order)
}

/// The canonical form with *every* name normalized: the problem is
/// renamed `lcl-<key>` (its [`canonical_key`]) and the input alphabet to
/// `I0, I1, …`. Two problems share a canonical fingerprint exactly when
/// their canonical text forms render to identical
/// [`text`](LclProblem::to_text) — the property a content-addressed
/// tower store needs so a cached tower answers every spelling of the
/// same structural class bit-identically.
pub fn canonical_text_form(p: &LclProblem) -> LclProblem {
    let c = canonical_form(p);
    let key = format!("{:016x}", fnv1a(structural_text(&c).as_bytes()));
    let mut node_configs = vec![BTreeSet::new(); c.max_degree() as usize + 1];
    for d in 1..=c.max_degree() {
        for config in c.node_configs(d) {
            node_configs[d as usize].insert(config.to_vec());
        }
    }
    let g: Vec<BTreeSet<OutLabel>> = (0..c.input_alphabet().len())
        .map(|i| c.allowed_outputs(crate::label::InLabel(i as u32)).collect())
        .collect();
    from_parts(
        format!("lcl-{key}"),
        c.max_degree(),
        Alphabet::numbered("I", c.input_alphabet().len()),
        c.output_alphabet().clone(),
        node_configs,
        c.edge_configs().collect(),
        g,
    )
}

/// FNV-1a over the canonical form's structural text. Structurally
/// identical problems (same constraints up to output renaming) collide;
/// the hash ignores the problem name and all label spellings.
pub fn canonical_fingerprint(p: &LclProblem) -> u64 {
    fnv1a(structural_text(&canonical_form(p)).as_bytes())
}

/// The canonical fingerprint rendered as the 16-hex-digit store key.
pub fn canonical_key(p: &LclProblem) -> String {
    format!("{:016x}", canonical_fingerprint(p))
}

pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Name-free, index-based rendering of the constraint structure. Label
/// *indices* appear, label *names* never do, so the text of a canonical
/// form is a pure function of the structural class.
fn structural_text(p: &LclProblem) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "delta={};inputs={};outputs={}\n",
        p.max_degree(),
        p.input_alphabet().len(),
        p.output_alphabet().len()
    ));
    for d in 1..=p.max_degree() {
        for config in p.node_configs(d) {
            s.push('n');
            s.push_str(&d.to_string());
            s.push(':');
            for (i, l) in config.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&l.0.to_string());
            }
            s.push('\n');
        }
    }
    for (a, b) in p.edge_configs() {
        s.push_str(&format!("e:{},{}\n", a.0, b.0));
    }
    for i in 0..p.input_alphabet().len() {
        s.push('g');
        s.push_str(&i.to_string());
        s.push(':');
        let mut first = true;
        for o in p.allowed_outputs(crate::label::InLabel(i as u32)) {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&o.0.to_string());
        }
        s.push('\n');
    }
    s
}

/// Partitions the output labels into permutation-invariant classes via
/// color refinement. Returns `classes[label] = class id`, with class ids
/// numbered by the rank of the class signature (so the numbering itself
/// is invariant).
fn refine_classes(p: &LclProblem) -> Vec<usize> {
    let n = p.output_alphabet().len();
    // Round 0: degree-profile signatures.
    let mut sigs: Vec<String> = (0..n)
        .map(|l| initial_signature(p, OutLabel(l as u32)))
        .collect();
    let mut classes = classes_from_signatures(&sigs);
    // Refine until the partition stops splitting. Each label's new
    // signature folds in the classes it meets across edges and inside
    // node configurations.
    loop {
        for (l, sig) in sigs.iter_mut().enumerate() {
            *sig = refined_signature(p, OutLabel(l as u32), &classes);
        }
        let next = classes_from_signatures(&sigs);
        if next == classes {
            return classes;
        }
        classes = next;
    }
}

fn initial_signature(p: &LclProblem, l: OutLabel) -> String {
    let mut s = String::new();
    for d in 1..=p.max_degree() {
        let mut mults: Vec<usize> = p
            .node_configs(d)
            .map(|c| c.iter().filter(|&&x| x == l).count())
            .filter(|&m| m > 0)
            .collect();
        mults.sort_unstable();
        s.push_str(&format!("d{d}:{mults:?};"));
    }
    let edge_count = p.edge_configs().filter(|&(a, b)| a == l || b == l).count();
    let self_loop = p.edge_configs().any(|(a, b)| a == l && b == l);
    s.push_str(&format!("e:{edge_count},{self_loop};"));
    for i in 0..p.input_alphabet().len() {
        let admitted = p
            .allowed_outputs(crate::label::InLabel(i as u32))
            .any(|o| o == l);
        s.push_str(if admitted { "1" } else { "0" });
    }
    s
}

fn refined_signature(p: &LclProblem, l: OutLabel, classes: &[usize]) -> String {
    let mut s = initial_signature(p, l);
    s.push('|');
    let mut partners: Vec<usize> = p
        .edge_configs()
        .filter_map(|(a, b)| {
            if a == l {
                Some(classes[b.0 as usize])
            } else if b == l {
                Some(classes[a.0 as usize])
            } else {
                None
            }
        })
        .collect();
    partners.sort_unstable();
    s.push_str(&format!("p:{partners:?};"));
    for d in 1..=p.max_degree() {
        let mut contexts: Vec<Vec<usize>> = p
            .node_configs(d)
            .filter(|c| c.contains(&l))
            .map(|c| {
                let mut ctx: Vec<usize> = c.iter().map(|x| classes[x.0 as usize]).collect();
                ctx.sort_unstable();
                ctx
            })
            .collect();
        contexts.sort_unstable();
        s.push_str(&format!("c{d}:{contexts:?};"));
    }
    s
}

/// Numbers the distinct signatures by rank; `result[label] = rank of its
/// signature`.
fn classes_from_signatures(sigs: &[String]) -> Vec<usize> {
    let distinct: BTreeSet<&String> = sigs.iter().collect();
    let ranks: Vec<&String> = distinct.into_iter().collect();
    sigs.iter()
        .map(|s| ranks.binary_search(&s).expect("why: s is in its own set"))
        .collect()
}

/// Chooses the final label order: all orderings consistent with the
/// refinement classes are tried (lexicographically-smallest structural
/// text wins) unless the residual symmetry exceeds [`SEARCH_CAP`], in
/// which case the refined order with original-index tiebreak is used.
/// Returns `order[position] = old label index`.
fn choose_order(p: &LclProblem, classes: &[usize]) -> Vec<u32> {
    let n = classes.len();
    let class_count = classes.iter().copied().max().map_or(0, |m| m + 1);
    let mut groups: Vec<Vec<u32>> = vec![Vec::new(); class_count];
    for (l, &c) in classes.iter().enumerate() {
        groups[c].push(l as u32);
    }
    let symmetry: usize = groups
        .iter()
        .map(|g| factorial_capped(g.len()))
        .try_fold(1usize, |acc, f| acc.checked_mul(f))
        .unwrap_or(usize::MAX);
    let fallback: Vec<u32> = groups.iter().flatten().copied().collect();
    if symmetry <= 1 {
        return fallback;
    }
    if symmetry > SEARCH_CAP {
        return fallback;
    }
    let mut best: Option<(String, Vec<u32>)> = None;
    let mut order = Vec::with_capacity(n);
    search_orders(p, &groups, 0, &mut order, &mut best);
    best.expect("why: symmetry >= 1 guarantees at least one candidate ordering")
        .1
}

fn factorial_capped(k: usize) -> usize {
    (1..=k)
        .try_fold(1usize, |acc, i| acc.checked_mul(i))
        .unwrap_or(usize::MAX)
}

/// Enumerates every ordering that concatenates a permutation of each
/// class group in class order, keeping the ordering whose relabeled
/// structural text is smallest.
fn search_orders(
    p: &LclProblem,
    groups: &[Vec<u32>],
    group_idx: usize,
    order: &mut Vec<u32>,
    best: &mut Option<(String, Vec<u32>)>,
) {
    if group_idx == groups.len() {
        let text = structural_text(&relabeled(p, order));
        if best.as_ref().is_none_or(|(b, _)| text < *b) {
            *best = Some((text, order.clone()));
        }
        return;
    }
    let mut group = groups[group_idx].clone();
    permute(&mut group, 0, &mut |perm| {
        let len_before = order.len();
        order.extend_from_slice(perm);
        search_orders(p, groups, group_idx + 1, order, best);
        order.truncate(len_before);
    });
}

/// In-place permutation enumeration (lexicographic by swaps) calling
/// `visit` with each arrangement of `items[start..]`.
fn permute(items: &mut [u32], start: usize, visit: &mut impl FnMut(&[u32])) {
    if start == items.len() {
        // `visit` sees the whole slice; recursion only varies the tail.
        return;
    }
    if start == items.len() - 1 {
        visit(items);
        return;
    }
    for i in start..items.len() {
        items.swap(start, i);
        permute(items, start + 1, visit);
        items.swap(start, i);
    }
}

/// Rebuilds `p` with output label `order[k]` renamed to `Lk`,
/// re-sorting every configuration under the new indices. `order` must be
/// a permutation of the output label indices; the result is a structural
/// duplicate of `p` (same [`canonical_fingerprint`]) under different
/// label spellings — which also makes this the generator of choice for
/// dedup-exercising request mixes.
pub fn relabeled(p: &LclProblem, order: &[u32]) -> LclProblem {
    let n = p.output_alphabet().len();
    assert_eq!(order.len(), n, "order must cover every output label");
    // new_of[old] = new index.
    let mut new_of = vec![0u32; n];
    for (new, &old) in order.iter().enumerate() {
        new_of[old as usize] = new as u32;
    }
    let map = |l: OutLabel| OutLabel(new_of[l.0 as usize]);

    let mut node_configs = vec![BTreeSet::new(); p.max_degree() as usize + 1];
    for d in 1..=p.max_degree() {
        for config in p.node_configs(d) {
            let mut mapped: Vec<OutLabel> = config.iter().map(|&l| map(l)).collect();
            mapped.sort_unstable();
            node_configs[d as usize].insert(mapped);
        }
    }
    let edge_configs: BTreeSet<(OutLabel, OutLabel)> = p
        .edge_configs()
        .map(|(a, b)| {
            let (a, b) = (map(a), map(b));
            if a <= b {
                (a, b)
            } else {
                (b, a)
            }
        })
        .collect();
    let g: Vec<BTreeSet<OutLabel>> = (0..p.input_alphabet().len())
        .map(|i| {
            p.allowed_outputs(crate::label::InLabel(i as u32))
                .map(map)
                .collect()
        })
        .collect();
    from_parts(
        p.problem_name().to_string(),
        p.max_degree(),
        p.input_alphabet().clone(),
        Alphabet::numbered("L", n),
        node_configs,
        edge_configs,
        g,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::InLabel;

    fn three_coloring_named(a: &str, b: &str, c: &str) -> LclProblem {
        LclProblem::builder("3col", 3)
            .outputs([a, b, c])
            .node_pattern(&[&format!("{a}*")])
            .node_pattern(&[&format!("{b}*")])
            .node_pattern(&[&format!("{c}*")])
            .edge(&[a, b])
            .edge(&[a, c])
            .edge(&[b, c])
            .build()
            .unwrap()
    }

    #[test]
    fn canonical_form_is_idempotent() {
        let p = three_coloring_named("A", "B", "C");
        let c1 = canonical_form(&p);
        let c2 = canonical_form(&c1);
        assert_eq!(structural_text(&c1), structural_text(&c2));
    }

    #[test]
    fn renamed_labels_collide() {
        let p = three_coloring_named("A", "B", "C");
        let q = three_coloring_named("red", "green", "blue");
        assert_eq!(canonical_fingerprint(&p), canonical_fingerprint(&q));
    }

    #[test]
    fn permuted_label_declarations_collide() {
        // Same structure, every declaration order of a fully-symmetric
        // 3-label alphabet: all six must share one fingerprint.
        let names = ["A", "B", "C"];
        let perms = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let fps: Vec<u64> = perms
            .iter()
            .map(|perm| {
                let p = three_coloring_named(names[perm[0]], names[perm[1]], names[perm[2]]);
                canonical_fingerprint(&p)
            })
            .collect();
        assert!(fps.windows(2).all(|w| w[0] == w[1]), "{fps:?}");
    }

    #[test]
    fn asymmetric_problems_with_permuted_labels_collide() {
        // Sinkless orientation is asymmetric in I/O: refinement alone
        // separates the labels, no search needed.
        let a = LclProblem::builder("sinkless", 3)
            .outputs(["I", "O"])
            .edge(&["I", "O"])
            .node_pattern(&["O", "I*", "O*"])
            .build()
            .unwrap();
        let b = LclProblem::builder("sinkless-renamed", 3)
            .outputs(["out", "inn"]) // declaration order swapped too
            .edge(&["out", "inn"])
            .node_pattern(&["inn", "out*", "inn*"])
            .build()
            .unwrap();
        assert_eq!(canonical_fingerprint(&a), canonical_fingerprint(&b));
        assert_ne!(
            canonical_fingerprint(&a),
            canonical_fingerprint(&three_coloring_named("A", "B", "C"))
        );
    }

    #[test]
    fn structurally_different_problems_diverge() {
        let two = LclProblem::builder("2col", 2)
            .outputs(["A", "B"])
            .node_pattern(&["A*"])
            .node_pattern(&["B*"])
            .edge(&["A", "B"])
            .build()
            .unwrap();
        let loops = LclProblem::builder("2col-loops", 2)
            .outputs(["A", "B"])
            .node_pattern(&["A*"])
            .node_pattern(&["B*"])
            .edge(&["A", "B"])
            .edge(&["A", "A"])
            .build()
            .unwrap();
        assert_ne!(canonical_fingerprint(&two), canonical_fingerprint(&loops));
    }

    #[test]
    fn canonical_form_preserves_the_predicates() {
        let p = three_coloring_named("A", "B", "C");
        let c = canonical_form(&p);
        assert_eq!(c.output_alphabet().len(), 3);
        assert_eq!(c.node_config_count(), p.node_config_count());
        assert_eq!(c.edge_config_count(), p.edge_config_count());
        // Canonical 3-coloring still rejects monochromatic edges.
        for l in 0..3u32 {
            assert!(!c.edge_allows(OutLabel(l), OutLabel(l)));
            assert!(c.node_allows(&[OutLabel(l), OutLabel(l)]));
        }
        assert!(c.input_allows(InLabel(0), OutLabel(0)));
    }

    #[test]
    fn fingerprint_ignores_problem_and_input_names() {
        let mut a = three_coloring_named("A", "B", "C");
        let b = a.clone();
        a = LclProblem::builder("other-name", 3)
            .outputs(["A", "B", "C"])
            .node_pattern(&["A*"])
            .node_pattern(&["B*"])
            .node_pattern(&["C*"])
            .edge(&["A", "B"])
            .edge(&["A", "C"])
            .edge(&["B", "C"])
            .build()
            .unwrap();
        assert_eq!(canonical_fingerprint(&a), canonical_fingerprint(&b));
    }

    #[test]
    fn canonical_text_forms_of_renamed_problems_render_identically() {
        let a = three_coloring_named("A", "B", "C");
        let b = three_coloring_named("blue", "red", "green");
        let ta = canonical_text_form(&a);
        let tb = canonical_text_form(&b);
        assert_eq!(ta.to_text(), tb.to_text());
        assert_eq!(ta.problem_name(), format!("lcl-{}", canonical_key(&a)));
        // The normalization does not change the structural class.
        assert_eq!(canonical_fingerprint(&ta), canonical_fingerprint(&a));
    }

    #[test]
    fn relabeled_twins_are_structural_duplicates() {
        let p = three_coloring_named("A", "B", "C");
        let twin = relabeled(&p, &[2, 0, 1]);
        assert_eq!(canonical_fingerprint(&p), canonical_fingerprint(&twin));
        assert_ne!(p.to_text(), twin.to_text());
    }

    #[test]
    fn key_is_sixteen_hex_digits() {
        let p = three_coloring_named("A", "B", "C");
        let key = canonical_key(&p);
        assert_eq!(key.len(), 16);
        assert!(key.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(key, format!("{:016x}", canonical_fingerprint(&p)));
    }
}
