//! The supervisor ↔ worker wire: one flat-JSON object per line.
//!
//! The shard wire reuses the classification service's protocol layer
//! ([`lcl_service::protocol`]) for framing: every command and reply is
//! a single newline-terminated flat JSON object. Structured payloads —
//! halo batches, fault lists, event streams — ride inside string
//! fields using two reserved control characters (`\u{1e}` between
//! entries, `\u{1f}` between fields of an entry), which the protocol's
//! escaper round-trips losslessly as ``/``.
//!
//! Everything on this wire is plain data: halo payloads are encoded by
//! the only processes that know the message type (the workers), and
//! the supervisor routes them as opaque strings. That is what keeps
//! the supervisor non-generic over algorithms.

use std::collections::BTreeMap;
use std::io::{BufRead, Write};

use lcl_faults::NodeFault;
use lcl_obs::Event;
use lcl_service::protocol::{escape_into, parse_flat_object, Scalar};
use lcl_service::push_str_field;

use crate::spec::{AlgSpec, GraphSpec, InputSpec};

/// Entry separator inside packed string fields (fault lists, events).
pub const ENTRY_SEP: char = '\u{1e}';
/// Field separator inside one packed entry.
pub const FIELD_SEP: char = '\u{1f}';

/// Writes one protocol line (appends the newline) and flushes.
pub fn write_line(w: &mut impl Write, line: &str) -> std::io::Result<()> {
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Reads one protocol line; `Ok(None)` is a clean EOF (peer closed).
pub fn read_line(r: &mut impl BufRead) -> std::io::Result<Option<String>> {
    let mut line = String::new();
    let n = r.read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

/// Reads and parses one line into flat fields; EOF and malformed lines
/// surface as `Err` strings the caller attributes to the peer.
pub fn read_fields(r: &mut impl BufRead) -> Result<Vec<(String, Scalar)>, String> {
    match read_line(r) {
        Ok(Some(line)) => parse_flat_object(&line).map_err(|e| e.to_string()),
        Ok(None) => Err("peer closed the connection".to_string()),
        Err(e) => Err(e.to_string()),
    }
}

/// Appends `,"name":value` for an unsigned number.
pub fn push_num_field(out: &mut String, name: &str, value: u64) {
    out.push_str(",\"");
    out.push_str(name);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

/// Appends `,"name":"value"` with escaping.
pub fn push_text_field(out: &mut String, name: &str, value: &str) {
    out.push(',');
    push_str_field(out, name, value);
}

/// Appends `,"name":true|false`.
pub fn push_bool_field(out: &mut String, name: &str, value: bool) {
    out.push_str(",\"");
    out.push_str(name);
    out.push_str("\":");
    out.push_str(if value { "true" } else { "false" });
}

/// Starts a command/reply line: `{"op":"<op>"`.
pub fn open_line(op: &str) -> String {
    let mut out = String::from("{\"op\":\"");
    escape_into(&mut out, op);
    out.push('"');
    out
}

/// Looks up a required string field.
pub fn want_str(fields: &[(String, Scalar)], name: &'static str) -> Result<String, String> {
    lcl_service::protocol::get_str(fields, name).map_err(|e| e.to_string())
}

/// Looks up a required number field.
pub fn want_num(fields: &[(String, Scalar)], name: &'static str) -> Result<u64, String> {
    lcl_service::protocol::get_num(fields, name).map_err(|e| e.to_string())
}

/// Looks up a required bool field.
pub fn want_bool(fields: &[(String, Scalar)], name: &'static str) -> Result<bool, String> {
    match fields.iter().find(|(n, _)| n == name) {
        Some((_, Scalar::Bool(b))) => Ok(*b),
        Some(_) => Err(format!("field {name} must be a bool")),
        None => Err(format!("field {name} is required")),
    }
}

/// Looks up an optional number field.
pub fn maybe_num(fields: &[(String, Scalar)], name: &str) -> Option<u64> {
    fields.iter().find_map(|(n, v)| match v {
        Scalar::Num(x) if n == name => Some(*x),
        _ => None,
    })
}

/// A message type that can cross the shard wire. Encodings must not
/// contain `,`, `|`, `>`, `_`, or the reserved control characters.
pub trait WireMsg: Clone {
    /// Appends this message's encoding.
    fn encode(&self, out: &mut String);
    /// Parses one encoded message.
    fn decode(text: &str) -> Option<Self>;
}

impl WireMsg for u64 {
    fn encode(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }

    fn decode(text: &str) -> Option<Self> {
        text.parse().ok()
    }
}

impl WireMsg for (u64, u32) {
    fn encode(&self, out: &mut String) {
        out.push_str(&self.0.to_string());
        out.push(':');
        out.push_str(&self.1.to_string());
    }

    fn decode(text: &str) -> Option<Self> {
        let (a, b) = text.split_once(':')?;
        Some((a.parse().ok()?, b.parse().ok()?))
    }
}

/// Halo batches keyed by peer shard: each entry is `(peer, payload)`
/// where a `None` payload slot is a mute (unsent) halo position.
pub type HaloBatches<M> = Vec<(usize, Vec<Option<M>>)>;

/// Encodes halo batches as `peer>e1,e2,..|peer>..`; `_` is a mute
/// (`None`) entry. `peer` is the destination shard in a `computed`
/// reply and the source shard in a `deliver` command.
pub fn encode_batches<M: WireMsg>(batches: &[(usize, Vec<Option<M>>)]) -> String {
    let mut out = String::new();
    for (i, (peer, payload)) in batches.iter().enumerate() {
        if i > 0 {
            out.push('|');
        }
        out.push_str(&peer.to_string());
        out.push('>');
        for (j, entry) in payload.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            match entry {
                Some(m) => m.encode(&mut out),
                None => out.push('_'),
            }
        }
    }
    out
}

/// Decodes halo batches; the inverse of [`encode_batches`].
pub fn decode_batches<M: WireMsg>(text: &str) -> Result<HaloBatches<M>, String> {
    let mut batches = Vec::new();
    if text.is_empty() {
        return Ok(batches);
    }
    for chunk in text.split('|') {
        let (peer, payload) = chunk
            .split_once('>')
            .ok_or_else(|| format!("halo batch {chunk:?} lacks a peer prefix"))?;
        let peer: usize = peer
            .parse()
            .map_err(|_| format!("halo peer {peer:?} is not a shard id"))?;
        let entries = if payload.is_empty() {
            Vec::new()
        } else {
            payload
                .split(',')
                .map(|e| {
                    if e == "_" {
                        Ok(None)
                    } else {
                        M::decode(e)
                            .map(Some)
                            .ok_or_else(|| format!("halo entry {e:?} does not decode"))
                    }
                })
                .collect::<Result<Vec<_>, String>>()?
        };
        batches.push((peer, entries));
    }
    Ok(batches)
}

/// Re-keys decoded batches by peer for inbox assembly.
pub fn batches_to_inbox<M: WireMsg>(batches: HaloBatches<M>) -> BTreeMap<usize, Vec<Option<M>>> {
    batches.into_iter().collect()
}

/// Encodes a drained fault buffer. The payload is the entry's last
/// field, so it may contain anything except the two reserved control
/// characters (which no executor-produced payload contains).
pub fn encode_faults(faults: &[NodeFault]) -> String {
    let mut out = String::new();
    for (i, f) in faults.iter().enumerate() {
        if i > 0 {
            out.push(ENTRY_SEP);
        }
        out.push_str(&f.node.to_string());
        out.push(FIELD_SEP);
        out.push_str(&f.round.to_string());
        out.push(FIELD_SEP);
        out.push_str(&f.payload);
    }
    out
}

/// Decodes a fault buffer; the inverse of [`encode_faults`].
pub fn decode_faults(text: &str) -> Result<Vec<NodeFault>, String> {
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(ENTRY_SEP)
        .map(|entry| {
            let mut parts = entry.splitn(3, FIELD_SEP);
            let node = parts
                .next()
                .and_then(|p| p.parse().ok())
                .ok_or_else(|| format!("fault entry {entry:?}: bad node"))?;
            let round = parts
                .next()
                .and_then(|p| p.parse().ok())
                .ok_or_else(|| format!("fault entry {entry:?}: bad round"))?;
            let payload = parts
                .next()
                .ok_or_else(|| format!("fault entry {entry:?}: missing payload"))?
                .to_string();
            Ok(NodeFault {
                node,
                round,
                payload,
            })
        })
        .collect()
}

/// Encodes crashed-shard flags as a `0`/`1` string indexed by shard.
pub fn encode_flags(flags: &[bool]) -> String {
    flags.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

/// Decodes crashed-shard flags.
pub fn decode_flags(text: &str) -> Result<Vec<bool>, String> {
    text.chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("flag char {other:?} is not 0/1")),
        })
        .collect()
}

/// Maps a wire fault tag back to the executor's `&'static str` tag.
/// The set is closed: both sides are this workspace's executors.
pub fn static_tag(tag: &str) -> Option<&'static str> {
    Some(match tag {
        "panic" => "panic",
        "crash-stop" => "crash-stop",
        "wrong-arity" => "wrong-arity",
        "no-halt" => "no-halt",
        "halo-loss" => "halo-loss",
        "shard-crash" => "shard-crash",
        "shard-kill" => "shard-kill",
        "shard-loss" => "shard-loss",
        "budget" => "budget",
        _ => return None,
    })
}

/// Encodes a worker's private event stream (fault, retry, checkpoint,
/// and shard-step events; the only kinds a shard stream contains).
pub fn encode_events(events: &[Event]) -> String {
    let mut out = String::new();
    let mut first = true;
    for event in events {
        let mut entry = String::new();
        match event {
            Event::Fault { node, round, fault } => {
                entry.push('f');
                for part in [node.to_string(), round.to_string(), (*fault).to_string()] {
                    entry.push(FIELD_SEP);
                    entry.push_str(&part);
                }
            }
            Event::Retry {
                stage,
                attempt,
                backoff_ms,
            } => {
                entry.push('r');
                for part in [attempt.to_string(), backoff_ms.to_string(), stage.clone()] {
                    entry.push(FIELD_SEP);
                    entry.push_str(&part);
                }
            }
            Event::Checkpoint { stage, completed } => {
                entry.push('c');
                for part in [completed.to_string(), stage.clone()] {
                    entry.push(FIELD_SEP);
                    entry.push_str(&part);
                }
            }
            Event::ShardStep {
                shard,
                superstep,
                halo_messages,
                halo_bytes,
            } => {
                entry.push('s');
                for part in [shard, superstep, halo_messages, halo_bytes] {
                    entry.push(FIELD_SEP);
                    entry.push_str(&part.to_string());
                }
            }
            // A shard stream never records coordinator-level events.
            _ => continue,
        }
        if !first {
            out.push(ENTRY_SEP);
        }
        first = false;
        out.push_str(&entry);
    }
    out
}

/// Decodes a worker event stream; the inverse of [`encode_events`].
pub fn decode_events(text: &str) -> Result<Vec<Event>, String> {
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(ENTRY_SEP)
        .map(|entry| {
            let bad = || format!("event entry {entry:?} does not decode");
            let (kind, rest) = entry.split_once(FIELD_SEP).ok_or_else(bad)?;
            match kind {
                "f" => {
                    let mut p = rest.splitn(3, FIELD_SEP);
                    let node = p.next().and_then(|x| x.parse().ok()).ok_or_else(bad)?;
                    let round = p.next().and_then(|x| x.parse().ok()).ok_or_else(bad)?;
                    let tag = p.next().ok_or_else(bad)?;
                    Ok(Event::Fault {
                        node,
                        round,
                        fault: static_tag(tag).ok_or_else(|| format!("unknown tag {tag:?}"))?,
                    })
                }
                "r" => {
                    let mut p = rest.splitn(3, FIELD_SEP);
                    let attempt = p.next().and_then(|x| x.parse().ok()).ok_or_else(bad)?;
                    let backoff_ms = p.next().and_then(|x| x.parse().ok()).ok_or_else(bad)?;
                    let stage = p.next().ok_or_else(bad)?.to_string();
                    Ok(Event::Retry {
                        stage,
                        attempt,
                        backoff_ms,
                    })
                }
                "c" => {
                    let mut p = rest.splitn(2, FIELD_SEP);
                    let completed = p.next().and_then(|x| x.parse().ok()).ok_or_else(bad)?;
                    let stage = p.next().ok_or_else(bad)?.to_string();
                    Ok(Event::Checkpoint { stage, completed })
                }
                "s" => {
                    let mut p = rest.splitn(4, FIELD_SEP);
                    let mut next = || p.next().and_then(|x| x.parse().ok()).ok_or_else(bad);
                    Ok(Event::ShardStep {
                        shard: next()?,
                        superstep: next()?,
                        halo_messages: next()?,
                        halo_bytes: next()?,
                    })
                }
                _ => Err(bad()),
            }
        })
        .collect()
}

/// Encodes per-node output labels: nodes separated by `;`, port labels
/// by `,`.
pub fn encode_labels(outputs: &[Vec<lcl::OutLabel>]) -> String {
    let mut out = String::new();
    for (i, node) in outputs.iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        for (j, label) in node.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&label.0.to_string());
        }
    }
    out
}

/// Decodes per-node output labels; the inverse of [`encode_labels`].
pub fn decode_labels(text: &str) -> Result<Vec<Vec<lcl::OutLabel>>, String> {
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(';')
        .map(|node| {
            if node.is_empty() {
                return Ok(Vec::new());
            }
            node.split(',')
                .map(|l| {
                    l.parse()
                        .map(lcl::OutLabel)
                        .map_err(|_| format!("label {l:?} is not a u32"))
                })
                .collect()
        })
        .collect()
}

/// The decoded `init` command: everything a worker needs to
/// reconstruct its shard of the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InitCmd {
    /// The graph, as a generator call.
    pub graph: GraphSpec,
    /// The algorithm, as a catalog name.
    pub alg: AlgSpec,
    /// The input labeling construction.
    pub input: InputSpec,
    /// Resolved per-node ids (any plan permutation already applied).
    pub ids: Vec<u64>,
    /// The announced `n`.
    pub n: usize,
    /// Total shard count of the partition.
    pub shards: usize,
    /// This worker's shard id.
    pub shard: usize,
    /// The run-wide fault plan, in `FaultPlan::to_text` form.
    pub plan_text: String,
    /// Test hook: sleep forever at the compute phase of this superstep
    /// (drives deadline-detection and respawn-storm tests).
    pub hang_at: Option<u32>,
}

impl InitCmd {
    /// Renders the `init` command line.
    pub fn encode(&self) -> String {
        let mut out = open_line("init");
        let (g, g1, g2, g3) = match self.graph {
            GraphSpec::Path { n } => ("path", n as u64, 0, 0),
            GraphSpec::RandomTree {
                n,
                max_degree,
                seed,
            } => ("tree", n as u64, u64::from(max_degree), seed),
            GraphSpec::Caterpillar { spine, legs } => ("caterpillar", spine as u64, legs as u64, 0),
            GraphSpec::Star { leaves } => ("star", leaves as u64, 0, 0),
        };
        push_text_field(&mut out, "graph", g);
        push_num_field(&mut out, "g1", g1);
        push_num_field(&mut out, "g2", g2);
        push_num_field(&mut out, "g3", g3);
        let (a, k) = match self.alg {
            AlgSpec::GuardedFlood { k } => ("flood", u64::from(k)),
            AlgSpec::AntiMatchingE1 { delta } => ("am-e1", u64::from(delta)),
        };
        push_text_field(&mut out, "alg", a);
        push_num_field(&mut out, "alg_k", k);
        let InputSpec::Uniform = self.input;
        push_text_field(&mut out, "input", "uniform");
        let ids: Vec<String> = self.ids.iter().map(u64::to_string).collect();
        push_text_field(&mut out, "ids", &ids.join(","));
        push_num_field(&mut out, "n", self.n as u64);
        push_num_field(&mut out, "shards", self.shards as u64);
        push_num_field(&mut out, "shard", self.shard as u64);
        push_text_field(&mut out, "plan", &self.plan_text);
        if let Some(h) = self.hang_at {
            push_num_field(&mut out, "hang_at", u64::from(h));
        }
        out.push('}');
        out
    }

    /// Parses an `init` command's fields; the inverse of
    /// [`InitCmd::encode`].
    pub fn parse(fields: &[(String, Scalar)]) -> Result<Self, String> {
        let g1 = want_num(fields, "g1")?;
        let g2 = want_num(fields, "g2")?;
        let g3 = want_num(fields, "g3")?;
        let graph = match want_str(fields, "graph")?.as_str() {
            "path" => GraphSpec::Path { n: g1 as usize },
            "tree" => GraphSpec::RandomTree {
                n: g1 as usize,
                max_degree: u8::try_from(g2).map_err(|_| "tree degree overflows u8".to_string())?,
                seed: g3,
            },
            "caterpillar" => GraphSpec::Caterpillar {
                spine: g1 as usize,
                legs: g2 as usize,
            },
            "star" => GraphSpec::Star {
                leaves: g1 as usize,
            },
            other => return Err(format!("unknown graph spec {other:?}")),
        };
        let k = want_num(fields, "alg_k")?;
        let alg = match want_str(fields, "alg")?.as_str() {
            "flood" => AlgSpec::GuardedFlood { k: k as u32 },
            "am-e1" => AlgSpec::AntiMatchingE1 {
                delta: u8::try_from(k).map_err(|_| "delta overflows u8".to_string())?,
            },
            other => return Err(format!("unknown alg spec {other:?}")),
        };
        let input = match want_str(fields, "input")?.as_str() {
            "uniform" => InputSpec::Uniform,
            other => return Err(format!("unknown input spec {other:?}")),
        };
        let ids_text = want_str(fields, "ids")?;
        let ids = if ids_text.is_empty() {
            Vec::new()
        } else {
            ids_text
                .split(',')
                .map(|x| x.parse().map_err(|_| format!("id {x:?} is not a u64")))
                .collect::<Result<Vec<u64>, String>>()?
        };
        Ok(Self {
            graph,
            alg,
            input,
            ids,
            n: want_num(fields, "n")? as usize,
            shards: want_num(fields, "shards")? as usize,
            shard: want_num(fields, "shard")? as usize,
            plan_text: want_str(fields, "plan")?,
            hang_at: maybe_num(fields, "hang_at").map(|h| h as u32),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_round_trip_for_both_message_types() {
        let flood: Vec<(usize, Vec<Option<u64>>)> =
            vec![(0, vec![Some(7), None, Some(9)]), (2, vec![None])];
        let text = encode_batches(&flood);
        assert_eq!(text, "0>7,_,9|2>_");
        assert_eq!(decode_batches::<u64>(&text).unwrap(), flood);

        let lifted: HaloBatches<(u64, u32)> = vec![(1, vec![Some((42, 3)), None])];
        let text = encode_batches(&lifted);
        assert_eq!(text, "1>42:3,_");
        assert_eq!(decode_batches::<(u64, u32)>(&text).unwrap(), lifted);

        assert_eq!(decode_batches::<u64>("").unwrap(), vec![]);
        assert!(decode_batches::<u64>("nope").is_err());
        assert!(decode_batches::<u64>("0>x").is_err());
    }

    #[test]
    fn faults_round_trip_including_awkward_payloads() {
        let faults = vec![
            NodeFault {
                node: 3,
                round: 1,
                payload: "crash-stop".into(),
            },
            NodeFault {
                node: 9,
                round: 0,
                payload: "panicked: \"quoted\", with, commas\nand newlines".into(),
            },
        ];
        let text = encode_faults(&faults);
        assert_eq!(decode_faults(&text).unwrap(), faults);
        assert_eq!(decode_faults("").unwrap(), vec![]);
        assert!(decode_faults("justonefield").is_err());
    }

    #[test]
    fn events_round_trip_with_static_tags() {
        let events = vec![
            Event::Fault {
                node: 4,
                round: 2,
                fault: "halo-loss",
            },
            Event::Retry {
                stage: "shard/1".into(),
                attempt: 2,
                backoff_ms: 20,
            },
            Event::Checkpoint {
                stage: "shard/0".into(),
                completed: 3,
            },
            Event::ShardStep {
                shard: 1,
                superstep: 3,
                halo_messages: 5,
                halo_bytes: 40,
            },
        ];
        let text = encode_events(&events);
        assert_eq!(decode_events(&text).unwrap(), events);
        // Coordinator events are skipped on encode, not shipped.
        let skipped = encode_events(&[Event::RoundStart { round: 1 }]);
        assert_eq!(skipped, "");
        assert!(decode_events("f\u{1f}1\u{1f}2\u{1f}mystery-tag").is_err());
    }

    #[test]
    fn labels_round_trip_including_degree_zero_nodes() {
        let labels = vec![
            vec![lcl::OutLabel(1), lcl::OutLabel(0)],
            vec![],
            vec![lcl::OutLabel(7)],
        ];
        let text = encode_labels(&labels);
        assert_eq!(text, "1,0;;7");
        assert_eq!(decode_labels(&text).unwrap(), labels);
    }

    #[test]
    fn init_command_round_trips_through_the_protocol_layer() {
        let cmd = InitCmd {
            graph: GraphSpec::RandomTree {
                n: 64,
                max_degree: 3,
                seed: 5,
            },
            alg: AlgSpec::AntiMatchingE1 { delta: 3 },
            input: InputSpec::Uniform,
            ids: vec![10, 20, 30],
            n: 64,
            shards: 4,
            shard: 2,
            plan_text: "plan seed=7\ncrash node=0 round=1\n".into(),
            hang_at: Some(1),
        };
        let line = cmd.encode();
        let fields = parse_flat_object(&line).unwrap();
        assert_eq!(want_str(&fields, "op").unwrap(), "init");
        assert_eq!(InitCmd::parse(&fields).unwrap(), cmd);

        let no_hang = InitCmd {
            hang_at: None,
            plan_text: String::new(),
            ..cmd
        };
        let fields = parse_flat_object(&no_hang.encode()).unwrap();
        assert_eq!(InitCmd::parse(&fields).unwrap(), no_hang);
    }

    #[test]
    fn flags_round_trip() {
        let flags = vec![false, true, true, false];
        let text = encode_flags(&flags);
        assert_eq!(text, "0110");
        assert_eq!(decode_flags(&text).unwrap(), flags);
        assert!(decode_flags("01x").is_err());
    }
}
