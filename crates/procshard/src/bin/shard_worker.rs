//! The shard worker binary: connects back to the supervisor's Unix
//! socket, introduces itself, and serves its shard until the
//! supervisor finishes the run or kills it.
//!
//! Usage (spawned by the supervisor, not by hand):
//!
//! ```text
//! shard-worker --socket <path> --shard <index>
//! ```
//!
//! The worker exits 0 on a clean `output` handoff or a supervisor-side
//! disconnect (being discarded *is* a clean ending for a worker), and
//! 2 on a protocol violation — which, to the supervisor, is
//! indistinguishable from a death and consumes a respawn.

use std::io::BufReader;
use std::os::unix::net::UnixStream;
use std::process::ExitCode;

use lcl_procshard::wire::{self, InitCmd};
use lcl_procshard::worker::serve_shard;

fn fail(what: &str) -> ExitCode {
    eprintln!("shard-worker: {what}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut socket: Option<String> = None;
    let mut shard: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => socket = args.next(),
            "--shard" => shard = args.next().and_then(|s| s.parse().ok()),
            other => return fail(&format!("unknown argument {other:?}")),
        }
    }
    let (Some(socket), Some(shard)) = (socket, shard) else {
        return fail("usage: shard-worker --socket <path> --shard <index>");
    };
    let stream = match UnixStream::connect(&socket) {
        Ok(stream) => stream,
        Err(e) => return fail(&format!("connect {socket}: {e}")),
    };
    let mut writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(e) => return fail(&format!("socket clone: {e}")),
    };
    let mut reader = BufReader::new(stream);

    let mut hello = wire::open_line("hello");
    wire::push_num_field(&mut hello, "shard", shard as u64);
    hello.push('}');
    if let Err(e) = wire::write_line(&mut writer, &hello) {
        return fail(&format!("hello: {e}"));
    }

    let fields = match wire::read_fields(&mut reader) {
        Ok(fields) => fields,
        // The supervisor dropped us before init: a clean discard.
        Err(e) if e == "peer closed the connection" => return ExitCode::SUCCESS,
        Err(e) => return fail(&format!("init: {e}")),
    };
    let cmd = match wire::want_str(&fields, "op") {
        Ok(op) if op == "init" => match InitCmd::parse(&fields) {
            Ok(cmd) => cmd,
            Err(e) => return fail(&format!("init: {e}")),
        },
        Ok(op) => return fail(&format!("expected init, got {op:?}")),
        Err(e) => return fail(&e),
    };
    if cmd.shard != shard {
        return fail(&format!(
            "spawned as shard {shard} but init addresses shard {}",
            cmd.shard
        ));
    }
    match serve_shard(&cmd, &mut reader, &mut writer) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&e),
    }
}
