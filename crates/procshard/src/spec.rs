//! Serializable job specifications for cross-process shard workers.
//!
//! A shard worker is a separate OS process: it cannot borrow the
//! supervisor's [`Graph`] or algorithm value, so a
//! proc-sharded run is described by a [`ProcJob`] — a closed, seedable
//! spec from which both sides reconstruct identical state. Graphs are
//! named generator calls ([`GraphSpec`]), algorithms are named catalog
//! entries ([`AlgSpec`]), and inputs are named constructions
//! ([`InputSpec`]); all three are deterministic, which is what makes
//! kill recovery replay-based (see [`crate::supervisor`]) and the
//! one-shard proc run bit-identical to the in-process executor.

use lcl::{HalfEdgeLabeling, InLabel, OutLabel};
use lcl_graph::{gen, Graph};
use lcl_local::{NodeInit, SyncAlgorithm};

/// A graph as a deterministic generator call, reconstructible in any
/// process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphSpec {
    /// [`gen::path`]: a path on `n` nodes.
    Path {
        /// Node count.
        n: usize,
    },
    /// [`gen::random_tree`]: a seeded random tree.
    RandomTree {
        /// Node count.
        n: usize,
        /// Maximum degree.
        max_degree: u8,
        /// Generator seed.
        seed: u64,
    },
    /// [`gen::caterpillar`]: a spine with `legs` pendant nodes each.
    Caterpillar {
        /// Spine length.
        spine: usize,
        /// Legs per spine node.
        legs: usize,
    },
    /// [`gen::star`]: one hub with `leaves` pendant nodes.
    Star {
        /// Leaf count.
        leaves: usize,
    },
}

impl GraphSpec {
    /// Builds the graph this spec names. Both the supervisor and every
    /// worker call this with the same spec, so all processes hold the
    /// same port-numbered graph.
    pub fn build(&self) -> Graph {
        match *self {
            GraphSpec::Path { n } => gen::path(n),
            GraphSpec::RandomTree {
                n,
                max_degree,
                seed,
            } => gen::random_tree(n, max_degree, seed),
            GraphSpec::Caterpillar { spine, legs } => gen::caterpillar(spine, legs),
            GraphSpec::Star { leaves } => gen::star(leaves),
        }
    }
}

/// An algorithm as a catalog name plus parameter, reconstructible in
/// any process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AlgSpec {
    /// [`GuardedFlood`] with halt bound `k` (`Msg = u64`).
    GuardedFlood {
        /// Rounds each node floods before halting.
        k: u32,
    },
    /// The synthesized constant-round E1 pipeline: the worker runs
    /// `lcl_core::tree_speedup` on `lcl_problems::anti_matching(delta)`
    /// and executes the resulting lifted algorithm (`Msg = (u64, u32)`).
    AntiMatchingE1 {
        /// Degree bound of the anti-matching instance.
        delta: u8,
    },
}

/// An input labeling as a named construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InputSpec {
    /// [`lcl::uniform_input`]: every half-edge carries input label 0.
    Uniform,
}

impl InputSpec {
    /// Builds the input labeling for `graph`.
    pub fn build(&self, graph: &Graph) -> HalfEdgeLabeling<InLabel> {
        match self {
            InputSpec::Uniform => lcl::uniform_input(graph),
        }
    }
}

/// One cross-process sharded run: everything a worker needs to
/// reconstruct its shard of the computation, plus the round cap the
/// supervisor drives toward.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcJob {
    /// The graph, as a generator call.
    pub graph: GraphSpec,
    /// The algorithm, as a catalog name.
    pub alg: AlgSpec,
    /// The input labeling, as a named construction.
    pub input: InputSpec,
    /// Per-node identifiers (pre-permutation; the supervisor applies
    /// the fault plan's ID permutation exactly like the in-process
    /// executor before shipping ids to workers).
    pub ids: Vec<u64>,
    /// The announced `n` handed to [`NodeInit`], or `None` for the
    /// true node count.
    pub n_announced: Option<usize>,
    /// Round cap (further capped by the run budget's `max_rounds`).
    pub max_rounds: u32,
}

/// Flood-max with a halt guard: a node floods the maximum id it has
/// seen for `k` rounds and ignores every message after its own round
/// counter reaches `k`. The same algorithm the in-process shard tests
/// use; exported here so equivalence tests can run the identical code
/// on both substrates.
pub struct GuardedFlood {
    /// Rounds each node floods before halting.
    pub k: u32,
}

/// Node state of [`GuardedFlood`].
#[derive(Clone)]
pub struct FloodState {
    best: u64,
    mine: u64,
    degree: usize,
    round: u32,
    k: u32,
}

impl SyncAlgorithm for GuardedFlood {
    type State = FloodState;
    type Msg = u64;

    fn init(&self, init: &NodeInit) -> FloodState {
        FloodState {
            best: init.id,
            mine: init.id,
            degree: init.degree as usize,
            round: 0,
            k: self.k,
        }
    }

    fn send(&self, state: &FloodState, _round: u32) -> Vec<u64> {
        vec![state.best; state.degree]
    }

    fn receive(&self, state: &mut FloodState, inbox: &[u64], _round: u32) {
        if state.round >= state.k {
            return;
        }
        for &msg in inbox {
            state.best = state.best.max(msg);
        }
        state.round += 1;
    }

    fn is_done(&self, state: &FloodState) -> bool {
        state.round >= state.k
    }

    fn output(&self, state: &FloodState) -> Vec<OutLabel> {
        vec![OutLabel(u32::from(state.best == state.mine)); state.degree]
    }

    fn name(&self) -> &str {
        "guarded-flood"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_specs_build_deterministically() {
        let spec = GraphSpec::RandomTree {
            n: 32,
            max_degree: 3,
            seed: 9,
        };
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.node_count(), 32);
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(GraphSpec::Path { n: 5 }.build().edge_count(), 4);
        assert_eq!(GraphSpec::Star { leaves: 3 }.build().node_count(), 4);
        assert_eq!(
            GraphSpec::Caterpillar { spine: 4, legs: 1 }
                .build()
                .node_count(),
            8
        );
    }

    #[test]
    fn guarded_flood_elects_the_max_id() {
        let g = gen::path(5);
        let input = lcl::uniform_input(&g);
        let ids = [3u64, 9, 1, 7, 5];
        let run = lcl_local::simulate_sync_with(
            &GuardedFlood { k: 4 },
            &g,
            &input,
            &ids,
            None,
            10,
            lcl_faults::RunOptions::new(),
        );
        assert!(run.outcome.faults.is_empty());
        // Only node 1 (id 9) labels itself the winner.
        let out = &run.outcome.outcome.output;
        let winners: Vec<u32> = (0..5u32)
            .map(|i| {
                g.half_edges_of(lcl_graph::NodeId(i))
                    .map(|h| out.get(h).0)
                    .max()
                    .unwrap()
            })
            .collect();
        assert_eq!(winners, vec![0, 1, 0, 0, 0]);
    }
}
