//! Process-per-shard execution of LOCAL supersteps, with a supervisor
//! that survives real OS kills.
//!
//! This crate promotes the in-process sharded executor
//! ([`lcl_shard`]) to a substrate where every shard is its own OS
//! process: a `shard-worker` child speaking newline-delimited flat
//! JSON over a Unix socket. The division of labor:
//!
//! - [`spec`] — closed, deterministic job descriptions ([`ProcJob`]):
//!   graphs as generator calls, algorithms as catalog names, inputs as
//!   named constructions. Determinism is the foundation of replay
//!   rehydration.
//! - [`wire`] — the line protocol both sides speak, built on
//!   [`lcl_service::protocol`]. Halo payloads are opaque to the
//!   supervisor; faults, events, and labels have exact codecs.
//! - [`worker`] — the child side: a faithful transplant of the
//!   in-process shard runner, stepped by supervisor commands instead
//!   of thread barriers.
//! - [`supervisor`] — the parent side: spawns the fleet, drives the
//!   barrier, arms socket deadlines as per-superstep heartbeats,
//!   SIGKILLs shards the fault plan says to kill, and brings dead
//!   workers back by capped respawn plus command-history replay.
//!
//! The headline invariant: a clean `proc_sharded(1)` run is
//! bit-identical — outcome, fault list, round and message counts — to
//! the in-process `sharded(1)` run and to the unsharded executor, and
//! a run whose only faults are `ShardKill`s produces output
//! bit-identical to the clean run (kills are output-transparent;
//! they surface only as `"shard-kill"` faults, retry events, and the
//! `retries` counter).

pub mod spec;
pub mod supervisor;
pub mod wire;
pub mod worker;

pub use spec::{AlgSpec, GraphSpec, GuardedFlood, InputSpec, ProcJob};
pub use supervisor::{run_proc_sharded, ProcError, ProcOptions};
