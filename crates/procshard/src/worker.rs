//! The shard worker: one OS process owning one shard of a run.
//!
//! A worker is a faithful transplant of the in-process shard runner
//! (`lcl_shard`'s superstep executor) into its own address space. It
//! reconstructs its shard of the computation from an [`InitCmd`] —
//! graph, input, ids, and fault plan are all rebuilt locally from the
//! deterministic spec — and then steps through the same five phases
//! the mpsc substrate uses (`begin`, `compute`, `deliver`, `finish`,
//! `output`), driven by supervisor commands over a Unix socket instead
//! of a thread barrier. Faults are buffered per phase and shipped in
//! each reply exactly once, so the supervisor's shard-order merge
//! reconstructs the same global fault order as the in-process
//! executor — which is what makes a clean one-shard proc run
//! bit-identical to `sharded(1)` and the unsharded executor.
//!
//! The worker has no deadline logic and no notion of its own death:
//! `Fault::ShardKill` is filtered out of the carved domain plan, so a
//! kill arrives only as a real `SIGKILL` from the supervisor. Replay
//! rehydration works because everything here is deterministic — a
//! respawned worker fed the same command history lands in the same
//! state, byte for byte.

use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, Write};

use lcl::{HalfEdgeLabeling, InLabel, OutLabel};
use lcl_core::{tree_speedup, SpeedupOptions};
use lcl_faults::{inject_panic, isolate, Budget, FaultPlan, NodeFault};
use lcl_graph::{Graph, NodeId, ShardMap};
use lcl_local::{NodeInit, SyncAlgorithm};
use lcl_obs::{Event, EventLog};
use lcl_problems::anti_matching;
use lcl_service::protocol::Scalar;
use lcl_shard::{ShardDomain, ShardSnapshot, SHARD_SNAPSHOT_VERSION};

use crate::spec::{AlgSpec, GuardedFlood};
use crate::wire::{
    self, decode_batches, decode_flags, encode_batches, encode_events, encode_faults,
    encode_labels, open_line, push_bool_field, push_num_field, push_text_field, read_fields,
    want_num, want_str, write_line, InitCmd, WireMsg,
};

/// Records a fault into a phase buffer and mirrors it into the worker's
/// private event stream (shipped to the supervisor at output time).
fn buffer_fault(
    buf: &mut Vec<NodeFault>,
    events: &EventLog,
    node: u64,
    round: u32,
    tag: &'static str,
    payload: String,
) {
    events.record(Event::Fault {
        node,
        round: u64::from(round),
        fault: tag,
    });
    buf.push(NodeFault {
        node,
        round: u64::from(round),
        payload,
    });
}

/// The in-memory image a whole-shard rebuild restores.
type SnapshotImage<A> = (
    Vec<Option<<A as SyncAlgorithm>::State>>,
    Vec<Option<u32>>,
    Vec<Option<Vec<<A as SyncAlgorithm>::Msg>>>,
);

/// One shard's execution state inside a worker process: the in-process
/// runner's fields minus the mpsc plumbing (halos arrive as decoded
/// wire batches) and minus the `lost` leg (an escaped panic here kills
/// the whole process, which the supervisor observes as worker death).
struct ProcRunner<A: SyncAlgorithm> {
    domain: ShardDomain,
    stage: String,
    start: usize,
    len: usize,
    states: Vec<Option<A::State>>,
    died: Vec<Option<u32>>,
    last_outbox: Vec<Option<Vec<A::Msg>>>,
    outboxes: Vec<Option<Vec<A::Msg>>>,
    outputs: Vec<Vec<OutLabel>>,
    snapshot: Option<SnapshotImage<A>>,
    /// Destination shard → `(source node, source port)` entries in the
    /// receiver's scan order, recomputed locally from the shared spec.
    out_routes: BTreeMap<usize, Vec<(u32, u8)>>,
    /// `(source node, source port)` → (source shard, batch position).
    halo_pos: HashMap<(u32, u8), (usize, u32)>,
    /// Batches decoded from the current `deliver` command's payload.
    inbox: BTreeMap<usize, Vec<Option<A::Msg>>>,
    f_init: Vec<NodeFault>,
    f_crash: Vec<NodeFault>,
    f_send: Vec<NodeFault>,
    f_recv: Vec<NodeFault>,
    f_out: Vec<NodeFault>,
    all_done: bool,
    round_messages: u64,
    round_halo_messages: u64,
    round_halo_bytes: u64,
    supersteps: u64,
    halo_messages: u64,
    halo_bytes: u64,
    crashes: u64,
    rebuilds: u64,
    checkpoints: u64,
}

impl<A: SyncAlgorithm> ProcRunner<A> {
    fn id(&self) -> usize {
        self.domain.id()
    }

    /// Builds the worker's runner: carves the shard's fault domain out
    /// of the shipped plan (kills filtered — see [`ShardDomain::carve`])
    /// and recomputes halo routes by the same scan as the coordinator.
    fn new(cmd: &InitCmd, graph: &Graph, plan: &FaultPlan) -> Self {
        let map = ShardMap::new(graph.node_count(), cmd.shards);
        let me = cmd.shard;
        let mut out_routes: BTreeMap<usize, Vec<(u32, u8)>> = BTreeMap::new();
        let mut halo_pos: HashMap<(u32, u8), (usize, u32)> = HashMap::new();
        let mut in_counts: HashMap<usize, u32> = HashMap::new();
        for s in 0..map.num_shards() {
            for i in map.range(s) {
                let v = NodeId(i as u32);
                for h in graph.half_edges_of(v) {
                    let twin = graph.twin(h);
                    let u = graph.node_of(twin);
                    let d = map.shard_of(u);
                    if d == s {
                        continue;
                    }
                    let q = graph.port_of(twin);
                    if d == me {
                        out_routes.entry(s).or_default().push((u.0, q));
                    }
                    if s == me {
                        let idx = in_counts.entry(d).or_insert(0);
                        halo_pos.insert((u.0, q), (d, *idx));
                        *idx += 1;
                    }
                }
            }
        }
        let range = map.range(me);
        Self {
            // The worker's budget axis is the supervisor's concern
            // (deadlines and `max_rounds` are enforced from outside),
            // so the carved domain is unlimited here.
            domain: ShardDomain::carve(me, &map, plan, &Budget::unlimited()),
            stage: format!("shard/{me}"),
            start: range.start,
            len: range.len(),
            states: Vec::new(),
            died: Vec::new(),
            last_outbox: Vec::new(),
            outboxes: Vec::new(),
            outputs: Vec::new(),
            snapshot: None,
            out_routes,
            halo_pos,
            inbox: BTreeMap::new(),
            f_init: Vec::new(),
            f_crash: Vec::new(),
            f_send: Vec::new(),
            f_recv: Vec::new(),
            f_out: Vec::new(),
            all_done: false,
            round_messages: 0,
            round_halo_messages: 0,
            round_halo_bytes: 0,
            supersteps: 0,
            halo_messages: 0,
            halo_bytes: 0,
            crashes: 0,
            rebuilds: 0,
            checkpoints: 0,
        }
    }

    /// Initializes the shard's nodes (panic-isolated per node).
    fn init_nodes(
        &mut self,
        alg: &A,
        graph: &Graph,
        input: &HalfEdgeLabeling<InLabel>,
        ids: &[u64],
        n: usize,
    ) {
        self.states = Vec::with_capacity(self.len);
        self.died = Vec::with_capacity(self.len);
        for local in 0..self.len {
            let i = self.start + local;
            let v = NodeId(i as u32);
            let init = NodeInit {
                node: v,
                n,
                id: ids[i],
                degree: graph.degree(v),
                inputs: graph.half_edges_of(v).map(|h| input.get(h)).collect(),
            };
            match isolate(|| alg.init(&init)) {
                Ok(state) => {
                    self.states.push(Some(state));
                    self.died.push(None);
                }
                Err(payload) => {
                    buffer_fault(
                        &mut self.f_init,
                        self.domain.events(),
                        i as u64,
                        0,
                        "panic",
                        payload,
                    );
                    self.states.push(None);
                    self.died.push(Some(0));
                }
            }
        }
        self.last_outbox = vec![None; self.len];
    }

    /// Superstep prologue: reports whether every owned node is finished
    /// (mirroring the in-process all-done scan; the cancel-token
    /// checkpoint is absent because the worker's budget is unlimited).
    fn begin_round(&mut self, alg: &A) {
        self.all_done = (0..self.len).all(|local| {
            self.died[local].is_some()
                || self.states[local]
                    .as_ref()
                    .is_some_and(|s| isolate(|| alg.is_done(s)).unwrap_or(true))
        });
    }

    /// Records one `"no-halt"` fault per live unfinished node.
    fn no_halt(&mut self, alg: &A, effective: u32, round: u32) {
        for local in 0..self.len {
            let live = self.died[local].is_none();
            let not_done = self.states[local]
                .as_ref()
                .is_some_and(|s| !isolate(|| alg.is_done(s)).unwrap_or(true));
            if live && not_done {
                buffer_fault(
                    &mut self.f_recv,
                    self.domain.events(),
                    (self.start + local) as u64,
                    round,
                    "no-halt",
                    format!("did not halt within {effective} rounds"),
                );
            }
        }
    }

    /// The current integrity anchor: the snapshot envelope the worker
    /// ships with every `stepped` reply. The supervisor retains the
    /// last one and compares it against the replayed worker's — a
    /// mismatch means the replay diverged and rehydration must fail
    /// loudly rather than continue from corrupt state.
    fn snapshot_meta(&self, superstep: u32) -> ShardSnapshot {
        ShardSnapshot {
            version: SHARD_SNAPSHOT_VERSION,
            shard: self.id() as u64,
            range_start: self.start as u64,
            range_end: (self.start + self.len) as u64,
            superstep: u64::from(superstep),
            live_nodes: self.died.iter().filter(|d| d.is_none()).count() as u64,
            halo_messages: self.halo_messages,
            halo_bytes: self.halo_bytes,
        }
    }

    /// Takes the superstep-start checkpoint (round-tripped envelope
    /// plus the in-memory image a whole-shard rebuild restores).
    fn checkpoint(&mut self, round: u32) {
        let meta = self.snapshot_meta(round);
        let round_tripped = ShardSnapshot::parse(&meta.to_json())
            .expect("why: a just-serialized shard snapshot always parses back");
        assert_eq!(round_tripped, meta, "snapshot round trip is lossless");
        self.snapshot = Some((
            self.states.clone(),
            self.died.clone(),
            self.last_outbox.clone(),
        ));
        self.checkpoints += 1;
        self.domain.events().record(Event::Checkpoint {
            stage: self.stage.clone(),
            completed: u64::from(round),
        });
    }

    /// Applies the shard plan's crash-stops scheduled for `round`.
    fn apply_crash_stops(&mut self, round: u32) {
        for local in 0..self.len {
            let i = self.start + local;
            if self.died[local].is_none() && self.domain.plan().crash_round(i) == Some(round) {
                buffer_fault(
                    &mut self.f_crash,
                    self.domain.events(),
                    i as u64,
                    round,
                    "crash-stop",
                    "crash-stop".into(),
                );
                self.died[local] = Some(round);
            }
        }
    }

    /// Computes the shard's outboxes for `round` with the full
    /// per-node fault treatment of the in-process send phase.
    fn compute_outboxes(&mut self, alg: &A, graph: &Graph, round: u32) {
        let mut outboxes: Vec<Option<Vec<A::Msg>>> = Vec::with_capacity(self.len);
        for local in 0..self.len {
            let i = self.start + local;
            let v = NodeId(i as u32);
            if self.died[local].is_some() {
                outboxes.push(self.last_outbox[local].clone());
                continue;
            }
            let state = self.states[local]
                .as_ref()
                .expect("why: died is None, and every live node holds a state");
            let sent = if self.domain.plan().panics(i) && round == 0 {
                isolate(|| inject_panic(i as u64))
            } else {
                isolate(|| alg.send(state, round))
            };
            match sent {
                Ok(out) if out.len() == graph.degree(v) as usize => outboxes.push(Some(out)),
                Ok(out) => {
                    buffer_fault(
                        &mut self.f_send,
                        self.domain.events(),
                        i as u64,
                        round,
                        "wrong-arity",
                        format!(
                            "sent {} messages from a degree-{} node",
                            out.len(),
                            graph.degree(v)
                        ),
                    );
                    self.died[local] = Some(round);
                    outboxes.push(self.last_outbox[local].clone());
                }
                Err(payload) => {
                    buffer_fault(
                        &mut self.f_send,
                        self.domain.events(),
                        i as u64,
                        round,
                        "panic",
                        payload,
                    );
                    self.died[local] = Some(round);
                    outboxes.push(self.last_outbox[local].clone());
                }
            }
        }
        self.round_messages = outboxes
            .iter()
            .map(|o| o.as_ref().map_or(0, |m| m.len() as u64))
            .sum();
        self.outboxes = outboxes;
    }

    /// Assembles this superstep's outgoing halo batches. `only_crashed`
    /// restricts the fan-out to fellow-crashed destinations — the
    /// rebuild path's re-exchange, since healthy shards retained their
    /// inbound copies (supervisor-side, queued for the next deliver).
    fn collect_halos(
        &mut self,
        only_crashed: Option<&[bool]>,
    ) -> Vec<(usize, Vec<Option<A::Msg>>)> {
        let mut batches = Vec::new();
        for (dst, route) in &self.out_routes {
            if let Some(crashed) = only_crashed {
                if !crashed[*dst] {
                    continue;
                }
            }
            let payload: Vec<Option<A::Msg>> = route
                .iter()
                .map(|&(u, q)| {
                    self.outboxes[u as usize - self.start]
                        .as_ref()
                        .map(|o| o[q as usize].clone())
                })
                .collect();
            let sent = payload.iter().filter(|m| m.is_some()).count() as u64;
            self.round_halo_messages += sent;
            self.round_halo_bytes += sent * std::mem::size_of::<A::Msg>() as u64;
            batches.push((*dst, payload));
        }
        batches
    }

    /// One `compute` command: the healthy superstep (checkpoint if
    /// crash-planned, crash-stops, sends, full halo fan-out) — or, if
    /// this shard is crash-scheduled now, the loss-and-rebuild arc the
    /// in-process executor runs as two barriers, folded into one reply:
    /// the superstep's work is discarded, the snapshot restored, and
    /// the replayed halos go only to fellow-crashed shards.
    fn compute(
        &mut self,
        alg: &A,
        graph: &Graph,
        round: u32,
        crashed_now: &[bool],
    ) -> Vec<(usize, Vec<Option<A::Msg>>)> {
        self.round_messages = 0;
        self.round_halo_messages = 0;
        self.round_halo_bytes = 0;
        if self.domain.has_planned_crashes() {
            self.checkpoint(round);
        }
        if crashed_now[self.id()] {
            self.outboxes = Vec::new();
            self.crashes += 1;
            let payload = format!("shard {} lost whole at superstep {round}", self.id());
            buffer_fault(
                &mut self.f_crash,
                self.domain.events(),
                self.start as u64,
                round,
                "shard-crash",
                payload,
            );
            let (states, died, last_outbox) = self
                .snapshot
                .clone()
                .expect("why: crash-planned shards checkpoint at the start of every superstep");
            self.states = states;
            self.died = died;
            self.last_outbox = last_outbox;
            self.rebuilds += 1;
            self.domain.events().record(Event::Retry {
                stage: self.stage.clone(),
                attempt: self.crashes,
                backoff_ms: 10 << (self.crashes.min(4) - 1),
            });
            self.apply_crash_stops(round);
            self.compute_outboxes(alg, graph, round);
            return self.collect_halos(Some(crashed_now));
        }
        self.apply_crash_stops(round);
        self.compute_outboxes(alg, graph, round);
        self.collect_halos(None)
    }

    /// Delivery: assemble each live node's inbox (local ports from the
    /// shard's own outboxes, boundary ports from the decoded batches)
    /// and receive, with the in-process halo-loss and missing-message
    /// rules intact.
    fn deliver(&mut self, alg: &A, graph: &Graph, round: u32, crashed_now: &[bool]) {
        for local in 0..self.len {
            if self.died[local].is_some() {
                continue;
            }
            let i = self.start + local;
            let v = NodeId(i as u32);
            let mut halo_lost: Option<usize> = None;
            let inbox: Option<Vec<A::Msg>> = graph
                .half_edges_of(v)
                .map(|h| {
                    let twin = graph.twin(h);
                    let u = graph.node_of(twin);
                    let q = graph.port_of(twin);
                    if (self.start..self.start + self.len).contains(&u.index()) {
                        self.outboxes[u.index() - self.start]
                            .as_ref()
                            .map(|o| o[q as usize].clone())
                    } else {
                        let &(d, idx) = self
                            .halo_pos
                            .get(&(u.0, q))
                            .expect("why: every cross half-edge was routed at setup");
                        match self.inbox.get(&d) {
                            Some(batch) => batch[idx as usize].clone(),
                            None => {
                                if crashed_now[d] {
                                    halo_lost.get_or_insert(d);
                                }
                                None
                            }
                        }
                    }
                })
                .collect();
            if let Some(d) = halo_lost {
                buffer_fault(
                    &mut self.f_recv,
                    self.domain.events(),
                    i as u64,
                    round,
                    "halo-loss",
                    format!("halo from crashed shard {d} lost at superstep {round}"),
                );
                continue;
            }
            if let Some(inbox) = inbox {
                let state = self.states[local]
                    .as_mut()
                    .expect("why: died is None, and every live node holds a state");
                if let Err(payload) = isolate(|| alg.receive(state, &inbox, round)) {
                    buffer_fault(
                        &mut self.f_recv,
                        self.domain.events(),
                        i as u64,
                        round,
                        "panic",
                        payload,
                    );
                    self.died[local] = Some(round);
                }
            }
        }
        for (slot, sent) in self.last_outbox.iter_mut().zip(&self.outboxes) {
            if sent.is_some() {
                *slot = sent.clone();
            }
        }
        self.halo_messages += self.round_halo_messages;
        self.halo_bytes += self.round_halo_bytes;
        self.supersteps += 1;
        self.domain.events().record(Event::ShardStep {
            shard: self.id() as u64,
            superstep: u64::from(round),
            halo_messages: self.round_halo_messages,
            halo_bytes: self.round_halo_bytes,
        });
    }

    /// Computes the shard's output labels with the in-process output
    /// phase's fault treatment.
    fn output_nodes(&mut self, alg: &A, graph: &Graph, rounds: u32) {
        self.outputs = vec![Vec::new(); self.len];
        for local in 0..self.len {
            let i = self.start + local;
            let v = NodeId(i as u32);
            let degree = graph.degree(v) as usize;
            let Some(state) = self.states[local].as_ref() else {
                self.outputs[local] = vec![OutLabel(0); degree];
                continue;
            };
            let labels =
                if self.domain.plan().panics(i) && self.died[local].is_none() && rounds == 0 {
                    isolate(|| inject_panic(i as u64))
                } else {
                    isolate(|| alg.output(state))
                };
            self.outputs[local] = match labels {
                Ok(out) if out.len() == degree => out,
                Ok(out) => {
                    buffer_fault(
                        &mut self.f_out,
                        self.domain.events(),
                        i as u64,
                        rounds,
                        "wrong-arity",
                        format!("labeled {} ports of a degree-{degree} node", out.len()),
                    );
                    vec![OutLabel(0); degree]
                }
                Err(payload) => {
                    if self.died[local].is_none() {
                        buffer_fault(
                            &mut self.f_out,
                            self.domain.events(),
                            i as u64,
                            rounds,
                            "panic",
                            payload,
                        );
                    }
                    vec![OutLabel(0); degree]
                }
            };
        }
    }
}

/// Drains a fault buffer into its wire form.
fn take_faults(buf: &mut Vec<NodeFault>) -> String {
    encode_faults(&std::mem::take(buf))
}

/// Serves one shard over an established connection, starting from the
/// already-parsed `init` command. Returns when the supervisor sends
/// `output` (clean shutdown) or closes the socket (the worker is being
/// discarded); `Err` carries a protocol violation the binary reports
/// on stderr before dying nonzero.
pub fn serve_shard(
    cmd: &InitCmd,
    reader: &mut impl BufRead,
    writer: &mut impl Write,
) -> Result<(), String> {
    match cmd.alg {
        AlgSpec::GuardedFlood { k } => run_shard(&GuardedFlood { k }, cmd, reader, writer),
        AlgSpec::AntiMatchingE1 { delta } => {
            let outcome = tree_speedup(&anti_matching(delta), SpeedupOptions::default());
            run_shard(&outcome.algorithm(), cmd, reader, writer)
        }
    }
}

/// The generic serve loop for a concrete algorithm.
fn run_shard<A>(
    alg: &A,
    cmd: &InitCmd,
    reader: &mut impl BufRead,
    writer: &mut impl Write,
) -> Result<(), String>
where
    A: SyncAlgorithm,
    A::Msg: WireMsg,
{
    let graph = cmd.graph.build();
    if cmd.ids.len() != graph.node_count() {
        return Err(format!(
            "init shipped {} ids for a {}-node graph",
            cmd.ids.len(),
            graph.node_count()
        ));
    }
    let input = cmd.input.build(&graph);
    let plan = FaultPlan::parse(&cmd.plan_text).map_err(|e| format!("init plan: {e}"))?;
    let mut r: ProcRunner<A> = ProcRunner::new(cmd, &graph, &plan);
    r.init_nodes(alg, &graph, &input, &cmd.ids, cmd.n);

    let mut ready = open_line("ready");
    push_text_field(&mut ready, "alg_name", alg.name());
    push_text_field(&mut ready, "f_init", &take_faults(&mut r.f_init));
    push_text_field(&mut ready, "f_recv", &take_faults(&mut r.f_recv));
    ready.push('}');
    write_line(writer, &ready).map_err(|e| e.to_string())?;

    loop {
        let fields: Vec<(String, Scalar)> = match read_fields(reader) {
            Ok(fields) => fields,
            // EOF: the supervisor dropped us (run over, or we are a
            // stale pre-kill connection). Exit cleanly either way.
            Err(e) if e == "peer closed the connection" => return Ok(()),
            Err(e) => return Err(e),
        };
        let op = want_str(&fields, "op")?;
        match op.as_str() {
            "begin" => {
                r.begin_round(alg);
                let mut reply = open_line("begun");
                push_bool_field(&mut reply, "all_done", r.all_done);
                reply.push('}');
                write_line(writer, &reply).map_err(|e| e.to_string())?;
            }
            "compute" => {
                let round = want_num(&fields, "round")? as u32;
                if cmd.hang_at == Some(round) {
                    // Test hook: this worker is scheduled to wedge here.
                    // A respawned replica replays into the same sleep,
                    // which is what drives the respawn-storm test.
                    loop {
                        std::thread::sleep(std::time::Duration::from_secs(3600));
                    }
                }
                let crashed = decode_flags(&want_str(&fields, "crashed")?)?;
                let halos = r.compute(alg, &graph, round, &crashed);
                let mut reply = open_line("computed");
                push_num_field(&mut reply, "round_messages", r.round_messages);
                push_text_field(&mut reply, "halos", &encode_batches(&halos));
                push_text_field(&mut reply, "f_crash", &take_faults(&mut r.f_crash));
                push_text_field(&mut reply, "f_send", &take_faults(&mut r.f_send));
                push_num_field(&mut reply, "crashes", r.crashes);
                push_num_field(&mut reply, "rebuilds", r.rebuilds);
                push_num_field(&mut reply, "checkpoints", r.checkpoints);
                reply.push('}');
                write_line(writer, &reply).map_err(|e| e.to_string())?;
            }
            "deliver" => {
                let round = want_num(&fields, "round")? as u32;
                let crashed = decode_flags(&want_str(&fields, "crashed")?)?;
                let batches = decode_batches::<A::Msg>(&want_str(&fields, "halos")?)?;
                r.inbox = wire::batches_to_inbox(batches);
                r.deliver(alg, &graph, round, &crashed);
                let mut reply = open_line("stepped");
                push_text_field(&mut reply, "f_recv", &take_faults(&mut r.f_recv));
                push_text_field(&mut reply, "snapshot", &r.snapshot_meta(round).to_json());
                push_num_field(&mut reply, "supersteps", r.supersteps);
                push_num_field(&mut reply, "halo_messages", r.halo_messages);
                push_num_field(&mut reply, "halo_bytes", r.halo_bytes);
                reply.push('}');
                write_line(writer, &reply).map_err(|e| e.to_string())?;
            }
            "finish" => {
                let round = want_num(&fields, "round")? as u32;
                let effective = want_num(&fields, "effective")? as u32;
                r.no_halt(alg, effective, round);
                let mut reply = open_line("finished");
                push_text_field(&mut reply, "f_recv", &take_faults(&mut r.f_recv));
                reply.push('}');
                write_line(writer, &reply).map_err(|e| e.to_string())?;
            }
            "output" => {
                let rounds = want_num(&fields, "rounds")? as u32;
                r.output_nodes(alg, &graph, rounds);
                let mut reply = open_line("outputs");
                push_text_field(&mut reply, "labels", &encode_labels(&r.outputs));
                push_text_field(&mut reply, "f_out", &take_faults(&mut r.f_out));
                push_text_field(&mut reply, "f_recv", &take_faults(&mut r.f_recv));
                push_text_field(
                    &mut reply,
                    "events",
                    &encode_events(&r.domain.events().events()),
                );
                reply.push('}');
                write_line(writer, &reply).map_err(|e| e.to_string())?;
                return Ok(());
            }
            other => return Err(format!("unknown command op {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_service::protocol::parse_flat_object;
    use std::io::BufReader;

    fn pipe_run(commands: &[String], cmd: &InitCmd) -> Vec<Vec<(String, Scalar)>> {
        let script = commands.join("\n") + "\n";
        let mut reader = BufReader::new(script.as_bytes());
        let mut out: Vec<u8> = Vec::new();
        serve_shard(cmd, &mut reader, &mut out).expect("why: a scripted clean run serves cleanly");
        String::from_utf8(out)
            .expect("why: replies are JSON text")
            .lines()
            .map(|l| parse_flat_object(l).expect("why: every reply is a flat object"))
            .collect()
    }

    /// A single-shard worker stepped over an in-memory pipe produces
    /// the same labels as the in-process executor.
    #[test]
    fn scripted_single_shard_run_matches_the_local_executor() {
        let graph = crate::spec::GraphSpec::Path { n: 5 };
        let ids = vec![3u64, 9, 1, 7, 5];
        let cmd = InitCmd {
            graph: graph.clone(),
            alg: AlgSpec::GuardedFlood { k: 4 },
            input: crate::spec::InputSpec::Uniform,
            ids: ids.clone(),
            n: 5,
            shards: 1,
            shard: 0,
            plan_text: FaultPlan::new(0).to_text(),
            hang_at: None,
        };
        let mut commands = Vec::new();
        for round in 0..4u32 {
            commands.push(format!("{{\"op\":\"begin\",\"round\":{round}}}"));
            commands.push(format!(
                "{{\"op\":\"compute\",\"round\":{round},\"crashed\":\"0\"}}"
            ));
            commands.push(format!(
                "{{\"op\":\"deliver\",\"round\":{round},\"crashed\":\"0\",\"halos\":\"\"}}"
            ));
        }
        commands.push("{\"op\":\"begin\",\"round\":4}".to_string());
        commands.push("{\"op\":\"output\",\"rounds\":4}".to_string());
        let replies = pipe_run(&commands, &cmd);
        assert_eq!(want_str(&replies[0], "op").unwrap(), "ready");
        assert_eq!(want_str(&replies[0], "alg_name").unwrap(), "guarded-flood");
        // Reply 13 is the final `begun` with all_done=true.
        assert!(crate::wire::want_bool(&replies[13], "all_done").unwrap());
        let outputs = replies.last().expect("why: the script ends with output");
        assert_eq!(want_str(outputs, "op").unwrap(), "outputs");
        let labels = crate::wire::decode_labels(&want_str(outputs, "labels").unwrap()).unwrap();
        let g = graph.build();
        let input = lcl::uniform_input(&g);
        let run = lcl_local::simulate_sync_with(
            &GuardedFlood { k: 4 },
            &g,
            &input,
            &ids,
            None,
            10,
            lcl_faults::RunOptions::new(),
        );
        let expect: Vec<Vec<OutLabel>> = (0..5u32)
            .map(|i| {
                g.half_edges_of(NodeId(i))
                    .map(|h| run.outcome.outcome.output.get(h))
                    .collect()
            })
            .collect();
        assert_eq!(labels, expect);
    }
}
