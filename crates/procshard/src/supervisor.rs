//! The shard supervisor: owns a fleet of worker processes and drives
//! the superstep barrier over Unix sockets.
//!
//! The supervisor is the only process that sees the whole run. It
//! spawns one `shard-worker` child per shard, ships each an
//! [`InitCmd`], and then walks the same phase sequence as the
//! in-process coordinator — begin, compute, deliver, finish, output —
//! broadcasting each command to every worker and collecting replies in
//! shard order, which reconstructs the exact global fault and event
//! order of the mpsc substrate. Halo batches travel through the
//! supervisor as opaque strings: it never decodes a message payload,
//! so it is not generic over the algorithm.
//!
//! # Death, heartbeats, and respawn
//!
//! Every worker socket carries read/write deadlines
//! ([`lcl_service::arm_deadlines`]); the deadline doubles as the
//! heartbeat, because a worker that misses its superstep reply —
//! wedged, killed, or gone mute — surfaces as a timed-out read, and a
//! worker that died surfaces as EOF or a broken pipe. Either way the
//! seat is revived: the supervisor reaps the child, records a
//! deterministic-backoff retry (the recorded-never-slept
//! [`RetryPolicy`] discipline), respawns the worker, and **rehydrates
//! it by replay** — the full command history is resent, replies are
//! discarded, and the replayed worker's last [`ShardSnapshot`] must be
//! byte-identical to the one the dead worker shipped before dying
//! ([`ProcError::RehydrateDiverged`] otherwise). Replay works because
//! every worker input is deterministic; it is what makes a SIGKILL
//! output-transparent. The respawn budget is capped
//! ([`ProcOptions::max_respawns`]); exhausting it escalates as the
//! typed [`ProcError::ShardDead`].
//!
//! [`Fault::ShardKill`](lcl_faults::Fault::ShardKill) in the run's
//! plan delivers a *real* `SIGKILL` to the child mid-superstep — the
//! worker never learns of its scheduled death (the carved domain plan
//! filters kills out), so the kill exercises the exact machinery an
//! unplanned crash would.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use lcl::{HalfEdgeLabeling, OutLabel};
use lcl_faults::{Degraded, FaultPlan, NodeFault, RunOptions};
use lcl_graph::{NodeId, ShardMap};
use lcl_local::{IdAssignment, SyncRun};
use lcl_obs::{Counter, Event, RunReport, Span, Trace};
use lcl_recover::RetryPolicy;
use lcl_service::arm_deadlines;
use lcl_service::protocol::{parse_flat_object, Scalar};
use lcl_shard::ShardSnapshot;

use crate::spec::ProcJob;
use crate::wire::{
    decode_events, decode_faults, decode_labels, encode_flags, open_line, push_num_field,
    push_text_field, want_bool, want_num, want_str, write_line, InitCmd,
};

/// Supervisor knobs that live outside [`RunOptions`]: where the worker
/// binary is, how many respawns a shard gets, and the test-only hang
/// injection.
#[derive(Clone, Debug, Default)]
pub struct ProcOptions {
    /// Explicit worker binary. When `None`, the supervisor tries the
    /// `LCL_SHARD_WORKER` environment variable, then a `shard-worker`
    /// sibling of the current executable (and of its parent directory,
    /// for test binaries living under `deps/`).
    pub worker_bin: Option<PathBuf>,
    /// Respawns each shard may consume before the run escalates with
    /// [`ProcError::ShardDead`]. `None` means the default of 3.
    pub max_respawns: Option<u32>,
    /// Test hook: `(shard, superstep)` at which that shard's worker
    /// wedges forever, driving deadline detection without a kill.
    pub hang_at: Option<(usize, u32)>,
}

impl ProcOptions {
    /// The effective respawn cap.
    pub fn respawn_cap(&self) -> u32 {
        self.max_respawns.unwrap_or(3)
    }
}

/// Why a proc-sharded run could not produce a report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProcError {
    /// No worker binary was found at any of the tried locations.
    WorkerBinMissing {
        /// Paths probed, in order.
        tried: Vec<String>,
    },
    /// Spawning or connecting a worker failed outright.
    Spawn {
        /// The shard whose worker could not be brought up.
        shard: usize,
        /// The OS error.
        error: String,
    },
    /// A worker sent bytes that are not a valid reply — a version
    /// mismatch, not a death, so it is not retried.
    Protocol {
        /// The offending shard.
        shard: usize,
        /// What was wrong.
        what: String,
    },
    /// A shard exhausted its respawn budget.
    ShardDead {
        /// The shard that will not come back.
        shard: usize,
        /// The superstep it died at.
        superstep: u32,
        /// Respawns consumed before giving up.
        respawns: u32,
    },
    /// A replayed worker's snapshot disagrees with the one the dead
    /// worker shipped — rehydration would continue from corrupt state.
    RehydrateDiverged {
        /// The shard whose replay diverged.
        shard: usize,
        /// The superstep at which the divergence surfaced.
        superstep: u32,
    },
}

impl std::fmt::Display for ProcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcError::WorkerBinMissing { tried } => {
                write!(f, "no shard-worker binary found (tried {})", tried.join(", "))
            }
            ProcError::Spawn { shard, error } => {
                write!(f, "shard {shard}: worker failed to start: {error}")
            }
            ProcError::Protocol { shard, what } => {
                write!(f, "shard {shard}: protocol violation: {what}")
            }
            ProcError::ShardDead {
                shard,
                superstep,
                respawns,
            } => write!(
                f,
                "shard {shard} died at superstep {superstep} and stayed dead after {respawns} respawns"
            ),
            ProcError::RehydrateDiverged { shard, superstep } => write!(
                f,
                "shard {shard}: replay rehydration diverged at superstep {superstep}"
            ),
        }
    }
}

impl std::error::Error for ProcError {}

/// Monotonic disambiguator for socket paths within one process.
static SOCKET_SERIAL: AtomicU64 = AtomicU64::new(0);

/// Locates the worker binary; see [`ProcOptions::worker_bin`].
fn resolve_worker_bin(proc: &ProcOptions) -> Result<PathBuf, ProcError> {
    let mut tried = Vec::new();
    let mut candidates: Vec<PathBuf> = Vec::new();
    if let Some(explicit) = &proc.worker_bin {
        candidates.push(explicit.clone());
    } else {
        if let Some(env) = std::env::var_os("LCL_SHARD_WORKER") {
            candidates.push(PathBuf::from(env));
        }
        if let Ok(exe) = std::env::current_exe() {
            if let Some(dir) = exe.parent() {
                candidates.push(dir.join("shard-worker"));
                if let Some(parent) = dir.parent() {
                    candidates.push(parent.join("shard-worker"));
                }
            }
        }
    }
    for candidate in candidates {
        if candidate.is_file() {
            return Ok(candidate);
        }
        tried.push(candidate.display().to_string());
    }
    Err(ProcError::WorkerBinMissing { tried })
}

/// A live connection to one worker child.
struct Conn {
    child: Child,
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Conn {
    /// SIGKILLs and reaps the child; errors are ignored because the
    /// child may already be gone, which is the desired end state.
    fn kill_and_reap(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One shard's seat in the fleet: its connection (if alive), the full
/// command history for replay rehydration, and the latest totals its
/// replies reported.
struct Seat {
    range_start: usize,
    conn: Option<Conn>,
    history: Vec<String>,
    /// The snapshot JSON from the last `stepped` reply — the replay
    /// integrity anchor.
    last_snapshot: Option<String>,
    respawns: u32,
    /// Kill/death faults queued for the next `f_crash` merge point.
    pending_faults: Vec<NodeFault>,
    all_done: bool,
    crashes: u64,
    rebuilds: u64,
    checkpoints: u64,
    supersteps: u64,
    halo_messages: u64,
    halo_bytes: u64,
}

/// How a reply read ended when it did not produce fields.
enum ReadFail {
    /// EOF, broken pipe, or an expired deadline: the worker is dead
    /// (or as good as dead) and the seat must be revived.
    Dead,
    /// The bytes parsed as garbage: escalate, do not respawn.
    Garbage(String),
}

/// The worker fleet plus everything needed to respawn its members.
struct Fleet<'l> {
    worker_bin: PathBuf,
    socket_path: PathBuf,
    listener: UnixListener,
    io_timeout_ms: u64,
    accept_timeout_ms: u64,
    policy: RetryPolicy,
    respawn_cap: u32,
    log: Option<&'l lcl_obs::EventLog>,
    seats: Vec<Seat>,
}

impl Drop for Fleet<'_> {
    fn drop(&mut self) {
        for seat in &mut self.seats {
            if let Some(conn) = seat.conn.as_mut() {
                conn.kill_and_reap();
            }
        }
        let _ = std::fs::remove_file(&self.socket_path);
    }
}

impl<'l> Fleet<'l> {
    fn new(map: &ShardMap, opts: &RunOptions<'l>, proc: &ProcOptions) -> Result<Self, ProcError> {
        let worker_bin = resolve_worker_bin(proc)?;
        let serial = SOCKET_SERIAL.fetch_add(1, Ordering::Relaxed);
        let socket_path = std::env::temp_dir().join(format!(
            "lcl-procshard-{}-{serial}.sock",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&socket_path);
        let listener = UnixListener::bind(&socket_path).map_err(|e| ProcError::Spawn {
            shard: 0,
            error: format!("bind {}: {e}", socket_path.display()),
        })?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ProcError::Spawn {
                shard: 0,
                error: e.to_string(),
            })?;
        let io_timeout_ms = opts.io_timeout_ms().unwrap_or(10_000);
        let seats = (0..map.num_shards())
            .map(|s| Seat {
                range_start: map.range(s).start,
                conn: None,
                history: Vec::new(),
                last_snapshot: None,
                respawns: 0,
                pending_faults: Vec::new(),
                all_done: false,
                crashes: 0,
                rebuilds: 0,
                checkpoints: 0,
                supersteps: 0,
                halo_messages: 0,
                halo_bytes: 0,
            })
            .collect();
        Ok(Self {
            worker_bin,
            socket_path,
            listener,
            io_timeout_ms,
            accept_timeout_ms: io_timeout_ms.max(5_000),
            policy: RetryPolicy::default(),
            respawn_cap: proc.respawn_cap(),
            log: opts.event_log(),
            seats,
        })
    }

    /// Spawns one worker child and completes its handshake: accept the
    /// connection (bounded poll on the nonblocking listener), arm the
    /// socket deadlines, and verify the `hello`.
    fn spawn_worker(&self, shard: usize) -> Result<Conn, ProcError> {
        let spawn_err = |error: String| ProcError::Spawn { shard, error };
        let mut child = Command::new(&self.worker_bin)
            .arg("--socket")
            .arg(&self.socket_path)
            .arg("--shard")
            .arg(shard.to_string())
            .stdin(Stdio::null())
            .spawn()
            .map_err(|e| spawn_err(e.to_string()))?;
        let started = Instant::now();
        let stream = loop {
            match self.listener.accept() {
                Ok((stream, _)) => break stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if let Ok(Some(status)) = child.try_wait() {
                        return Err(spawn_err(format!("worker exited at startup: {status}")));
                    }
                    if started.elapsed() > Duration::from_millis(self.accept_timeout_ms) {
                        let _ = child.kill();
                        let _ = child.wait();
                        return Err(spawn_err(format!(
                            "worker did not connect within {}ms",
                            self.accept_timeout_ms
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(spawn_err(e.to_string()));
                }
            }
        };
        arm_deadlines(&stream, self.io_timeout_ms).map_err(|e| spawn_err(e.to_string()))?;
        let writer = stream.try_clone().map_err(|e| spawn_err(e.to_string()))?;
        let mut conn = Conn {
            child,
            reader: BufReader::new(stream),
            writer,
        };
        match read_reply(&mut conn) {
            Ok(fields) => {
                let claimed = want_num(&fields, "shard")
                    .map_err(|e| ProcError::Protocol { shard, what: e })?;
                if claimed != shard as u64 {
                    conn.kill_and_reap();
                    return Err(ProcError::Protocol {
                        shard,
                        what: format!("worker introduced itself as shard {claimed}"),
                    });
                }
                Ok(conn)
            }
            Err(ReadFail::Dead) => {
                conn.kill_and_reap();
                Err(spawn_err("worker died before its hello".to_string()))
            }
            Err(ReadFail::Garbage(what)) => {
                conn.kill_and_reap();
                Err(ProcError::Protocol { shard, what })
            }
        }
    }

    /// Records `line` in the seat's replay history and ships it if the
    /// worker is alive. A write failure downgrades the seat to dead;
    /// the next [`Fleet::collect`] revives it and resends the line.
    fn send(&mut self, shard: usize, line: String) {
        let seat = &mut self.seats[shard];
        let failed = match seat.conn.as_mut() {
            Some(conn) => write_line(&mut conn.writer, &line).is_err(),
            None => false,
        };
        seat.history.push(line);
        if failed {
            if let Some(mut conn) = seat.conn.take() {
                conn.kill_and_reap();
            }
        }
    }

    /// Delivers a planned `SIGKILL`: the child dies mid-superstep and
    /// the seat is left dead for [`Fleet::collect`] to revive.
    fn kill_now(&mut self, shard: usize) {
        if let Some(mut conn) = self.seats[shard].conn.take() {
            conn.kill_and_reap();
        }
    }

    /// Reads the pending reply from `shard`, reviving the worker (and
    /// replaying its history) as many times as the respawn budget
    /// allows. `superstep` attributes any death to the current round.
    fn collect(
        &mut self,
        shard: usize,
        superstep: u32,
    ) -> Result<Vec<(String, Scalar)>, ProcError> {
        loop {
            if let Some(conn) = self.seats[shard].conn.as_mut() {
                match read_reply(conn) {
                    Ok(fields) => return Ok(fields),
                    Err(ReadFail::Garbage(what)) => {
                        return Err(ProcError::Protocol { shard, what })
                    }
                    Err(ReadFail::Dead) => {
                        if let Some(mut conn) = self.seats[shard].conn.take() {
                            conn.kill_and_reap();
                        }
                    }
                }
            }
            self.revive(shard, superstep)?;
        }
    }

    /// One respawn attempt: budget check, retry bookkeeping, fresh
    /// worker, replay of everything but the last command, snapshot
    /// integrity check, and a resend of the last command (whose reply
    /// the caller's read loop picks up). A death *during* replay
    /// leaves the seat dead so the caller loops back in here, burning
    /// another respawn.
    fn revive(&mut self, shard: usize, superstep: u32) -> Result<(), ProcError> {
        let cap = self.respawn_cap;
        let seat = &mut self.seats[shard];
        if seat.respawns >= cap {
            return Err(ProcError::ShardDead {
                shard,
                superstep,
                respawns: seat.respawns,
            });
        }
        seat.respawns += 1;
        let attempt = seat.respawns;
        seat.pending_faults.push(NodeFault {
            node: seat.range_start as u64,
            round: u64::from(superstep),
            payload: format!(
                "shard {shard} worker killed at superstep {superstep}; respawn {attempt} of {cap}"
            ),
        });
        if let Some(log) = self.log {
            log.record(Event::Fault {
                node: seat.range_start as u64,
                round: u64::from(superstep),
                fault: "shard-kill",
            });
            log.record(Event::Retry {
                stage: format!("shard/{shard}"),
                attempt: u64::from(attempt),
                // Deterministic, recorded, never slept: respawning
                // immediately is safe (the dead process held no locks),
                // so the schedule is evidence, not delay.
                backoff_ms: self.policy.backoff_ms(attempt),
            });
        }
        let mut conn = self.spawn_worker(shard)?;
        let seat = &mut self.seats[shard];
        let (prefix, last) = match seat.history.split_last() {
            Some((last, prefix)) => (prefix, last),
            None => {
                seat.conn = Some(conn);
                return Ok(());
            }
        };
        let mut replayed_snapshot: Option<String> = None;
        for line in prefix {
            if write_line(&mut conn.writer, line).is_err() {
                conn.kill_and_reap();
                return Ok(());
            }
            match read_reply(&mut conn) {
                Ok(fields) => {
                    if let Ok(op) = want_str(&fields, "op") {
                        if op == "stepped" {
                            if let Ok(snap) = want_str(&fields, "snapshot") {
                                replayed_snapshot = Some(snap);
                            }
                        }
                    }
                }
                Err(ReadFail::Garbage(what)) => {
                    conn.kill_and_reap();
                    return Err(ProcError::Protocol { shard, what });
                }
                Err(ReadFail::Dead) => {
                    conn.kill_and_reap();
                    return Ok(());
                }
            }
        }
        if replayed_snapshot != seat.last_snapshot {
            conn.kill_and_reap();
            return Err(ProcError::RehydrateDiverged { shard, superstep });
        }
        if write_line(&mut conn.writer, last).is_err() {
            conn.kill_and_reap();
            return Ok(());
        }
        seat.conn = Some(conn);
        Ok(())
    }
}

/// Reads and parses one reply line from a worker connection.
fn read_reply(conn: &mut Conn) -> Result<Vec<(String, Scalar)>, ReadFail> {
    let mut line = String::new();
    match conn.reader.read_line(&mut line) {
        Ok(0) => Err(ReadFail::Dead),
        Ok(_) => {
            while line.ends_with('\n') || line.ends_with('\r') {
                line.pop();
            }
            parse_flat_object(&line).map_err(|e| ReadFail::Garbage(e.to_string()))
        }
        Err(_) => Err(ReadFail::Dead),
    }
}

/// Shorthand for reply-shape failures.
fn proto(shard: usize) -> impl Fn(String) -> ProcError {
    move |what| ProcError::Protocol { shard, what }
}

/// Runs `job` on the process-per-shard substrate.
///
/// The shard count comes from [`RunOptions::shard_count`] (default 1);
/// unlike the in-process executor there is no unsharded delegation —
/// one shard means one worker process. Socket deadlines come from
/// [`RunOptions::io_timeout`] (default 10 000 ms) and double as the
/// per-superstep heartbeat. For plans without kills or whole-shard
/// losses the returned outcome, fault list, and round/message counts
/// are equal to `simulate_sharded_with` and the unsharded executor;
/// kills are output-transparent (respawn + replay) and surface only as
/// `"shard-kill"` faults, retry events, and the `retries` counter.
pub fn run_proc_sharded(
    job: &ProcJob,
    opts: RunOptions<'_>,
    proc: &ProcOptions,
) -> Result<RunReport<Degraded<SyncRun>>, ProcError> {
    let graph = job.graph.build();
    assert_eq!(job.ids.len(), graph.node_count(), "ids cover the graph");
    let empty_plan;
    let plan: &FaultPlan = match opts.fault_plan() {
        Some(plan) => plan,
        None => {
            empty_plan = FaultPlan::new(0);
            &empty_plan
        }
    };
    let plan_text = plan.to_text();
    let log = opts.event_log();
    let budget = opts.run_budget();
    let effective = budget.max_rounds.map_or(job.max_rounds, |cap| {
        job.max_rounds.min(u32::try_from(cap).unwrap_or(u32::MAX))
    });
    let ids: Vec<u64> = match plan.permutation(graph.node_count()) {
        Some(perm) => IdAssignment::from_vec(job.ids.clone())
            .permuted(&perm)
            .iter()
            .collect(),
        None => job.ids.clone(),
    };
    let n = job.n_announced.unwrap_or_else(|| graph.node_count());
    let requested = opts.shard_count().unwrap_or(1);
    let map = ShardMap::new(graph.node_count(), requested);
    let m = map.num_shards();
    let crash_at: Vec<Vec<u32>> = (0..m).map(|s| plan.shard_crashes(s)).collect();
    let kill_at: Vec<Vec<u32>> = (0..m).map(|s| plan.shard_kills(s)).collect();

    let mut fleet = Fleet::new(&map, &opts, proc)?;
    for s in 0..m {
        let conn = fleet.spawn_worker(s)?;
        fleet.seats[s].conn = Some(conn);
        let cmd = InitCmd {
            graph: job.graph.clone(),
            alg: job.alg.clone(),
            input: job.input.clone(),
            ids: ids.clone(),
            n,
            shards: m,
            shard: s,
            plan_text: plan_text.clone(),
            hang_at: proc
                .hang_at
                .and_then(|(hung, at)| (hung == s).then_some(at)),
        };
        fleet.send(s, cmd.encode());
    }

    let mut faults: Vec<NodeFault> = Vec::new();
    let mut alg_name = String::from("shard-worker");
    let mut init_faults: Vec<(Vec<NodeFault>, Vec<NodeFault>)> = Vec::with_capacity(m);
    for s in 0..m {
        let reply = fleet.collect(s, 0)?;
        expect_op(&reply, "ready", s)?;
        alg_name = want_str(&reply, "alg_name").map_err(proto(s))?;
        let f_init =
            decode_faults(&want_str(&reply, "f_init").map_err(proto(s))?).map_err(proto(s))?;
        let f_recv =
            decode_faults(&want_str(&reply, "f_recv").map_err(proto(s))?).map_err(proto(s))?;
        init_faults.push((f_init, f_recv));
    }
    for (f_init, _) in &mut init_faults {
        faults.append(f_init);
    }
    for (_, f_recv) in &mut init_faults {
        faults.append(f_recv);
    }

    let mut span = Span::start(format!("shard/sync/{alg_name}"));
    let mut messages = 0u64;
    let mut rounds = 0u32;

    loop {
        for s in 0..m {
            let mut line = open_line("begin");
            push_num_field(&mut line, "round", u64::from(rounds));
            line.push('}');
            fleet.send(s, line);
        }
        let mut all_done = true;
        for s in 0..m {
            let reply = fleet.collect(s, rounds)?;
            expect_op(&reply, "begun", s)?;
            let done = want_bool(&reply, "all_done").map_err(proto(s))?;
            fleet.seats[s].all_done = done;
            all_done &= done;
        }
        if all_done {
            break;
        }
        if rounds >= effective {
            for s in 0..m {
                let mut line = open_line("finish");
                push_num_field(&mut line, "round", u64::from(rounds));
                push_num_field(&mut line, "effective", u64::from(effective));
                line.push('}');
                fleet.send(s, line);
            }
            let mut finish_faults: Vec<Vec<NodeFault>> = Vec::with_capacity(m);
            for s in 0..m {
                let reply = fleet.collect(s, rounds)?;
                expect_op(&reply, "finished", s)?;
                finish_faults.push(
                    decode_faults(&want_str(&reply, "f_recv").map_err(proto(s))?)
                        .map_err(proto(s))?,
                );
            }
            for f in &mut finish_faults {
                faults.append(f);
            }
            break;
        }
        if let Some(log) = log {
            log.record(Event::RoundStart {
                round: u64::from(rounds),
            });
        }
        let crashed: Vec<bool> = (0..m)
            .map(|s| crash_at[s].binary_search(&rounds).is_ok())
            .collect();
        let crashed_text = encode_flags(&crashed);
        for s in 0..m {
            let mut line = open_line("compute");
            push_num_field(&mut line, "round", u64::from(rounds));
            push_text_field(&mut line, "crashed", &crashed_text);
            line.push('}');
            fleet.send(s, line);
        }
        // Planned kills land after the command fan-out: the worker is
        // mid-superstep (or about to be) when the SIGKILL arrives.
        for (s, kills) in kill_at.iter().enumerate() {
            if kills.binary_search(&rounds).is_ok() {
                fleet.kill_now(s);
            }
        }
        let mut round_messages = 0u64;
        // Receiver shard → (sender shard → encoded entries).
        let mut routed: Vec<BTreeMap<usize, String>> = vec![BTreeMap::new(); m];
        let mut crash_send_faults: Vec<(Vec<NodeFault>, Vec<NodeFault>)> = Vec::with_capacity(m);
        for s in 0..m {
            let reply = fleet.collect(s, rounds)?;
            expect_op(&reply, "computed", s)?;
            round_messages += want_num(&reply, "round_messages").map_err(proto(s))?;
            let halos = want_str(&reply, "halos").map_err(proto(s))?;
            if !halos.is_empty() {
                for chunk in halos.split('|') {
                    let (dst, entries) = chunk.split_once('>').ok_or_else(|| {
                        proto(s)(format!("halo batch {chunk:?} lacks a peer prefix"))
                    })?;
                    let dst: usize = dst
                        .parse()
                        .map_err(|_| proto(s)(format!("halo peer {dst:?}")))?;
                    if dst >= m {
                        return Err(proto(s)(format!("halo peer {dst} out of range")));
                    }
                    routed[dst].insert(s, entries.to_string());
                }
            }
            let f_crash =
                decode_faults(&want_str(&reply, "f_crash").map_err(proto(s))?).map_err(proto(s))?;
            let f_send =
                decode_faults(&want_str(&reply, "f_send").map_err(proto(s))?).map_err(proto(s))?;
            crash_send_faults.push((f_crash, f_send));
            let seat = &mut fleet.seats[s];
            seat.crashes = want_num(&reply, "crashes").map_err(proto(s))?;
            seat.rebuilds = want_num(&reply, "rebuilds").map_err(proto(s))?;
            seat.checkpoints = want_num(&reply, "checkpoints").map_err(proto(s))?;
        }
        messages += round_messages;
        for (s, (f_crash, _)) in crash_send_faults.iter_mut().enumerate() {
            faults.append(&mut fleet.seats[s].pending_faults);
            faults.append(f_crash);
        }
        for (_, f_send) in &mut crash_send_faults {
            faults.append(f_send);
        }
        for (s, batches) in routed.iter().enumerate() {
            let halos = batches
                .iter()
                .map(|(src, entries)| format!("{src}>{entries}"))
                .collect::<Vec<_>>()
                .join("|");
            let mut line = open_line("deliver");
            push_num_field(&mut line, "round", u64::from(rounds));
            push_text_field(&mut line, "crashed", &crashed_text);
            push_text_field(&mut line, "halos", &halos);
            line.push('}');
            fleet.send(s, line);
        }
        let mut recv_faults: Vec<Vec<NodeFault>> = Vec::with_capacity(m);
        for s in 0..m {
            let reply = fleet.collect(s, rounds)?;
            expect_op(&reply, "stepped", s)?;
            recv_faults.push(
                decode_faults(&want_str(&reply, "f_recv").map_err(proto(s))?).map_err(proto(s))?,
            );
            let snapshot = want_str(&reply, "snapshot").map_err(proto(s))?;
            ShardSnapshot::parse(&snapshot)
                .map_err(|e| proto(s)(format!("stepped snapshot: {e}")))?;
            let seat = &mut fleet.seats[s];
            seat.last_snapshot = Some(snapshot);
            seat.supersteps = want_num(&reply, "supersteps").map_err(proto(s))?;
            seat.halo_messages = want_num(&reply, "halo_messages").map_err(proto(s))?;
            seat.halo_bytes = want_num(&reply, "halo_bytes").map_err(proto(s))?;
        }
        for f in &mut recv_faults {
            faults.append(f);
        }
        if let Some(log) = log {
            log.record(Event::RoundEnd {
                round: u64::from(rounds),
                messages: round_messages,
            });
        }
        rounds += 1;
    }
    // Residual: deaths observed after the last compute merge point.
    for s in 0..m {
        faults.append(&mut fleet.seats[s].pending_faults);
    }

    for s in 0..m {
        let mut line = open_line("output");
        push_num_field(&mut line, "rounds", u64::from(rounds));
        line.push('}');
        fleet.send(s, line);
    }
    let mut outputs: Vec<Vec<Vec<OutLabel>>> = Vec::with_capacity(m);
    let mut out_faults: Vec<(Vec<NodeFault>, Vec<NodeFault>)> = Vec::with_capacity(m);
    let mut streams: Vec<Vec<Event>> = Vec::with_capacity(m);
    for s in 0..m {
        let reply = fleet.collect(s, rounds)?;
        expect_op(&reply, "outputs", s)?;
        let labels =
            decode_labels(&want_str(&reply, "labels").map_err(proto(s))?).map_err(proto(s))?;
        if labels.len() != map.range(s).len() {
            return Err(proto(s)(format!(
                "worker labeled {} of {} owned nodes",
                labels.len(),
                map.range(s).len()
            )));
        }
        outputs.push(labels);
        let f_out =
            decode_faults(&want_str(&reply, "f_out").map_err(proto(s))?).map_err(proto(s))?;
        let f_recv =
            decode_faults(&want_str(&reply, "f_recv").map_err(proto(s))?).map_err(proto(s))?;
        out_faults.push((f_out, f_recv));
        streams
            .push(decode_events(&want_str(&reply, "events").map_err(proto(s))?).map_err(proto(s))?);
    }
    for (f_out, _) in &mut out_faults {
        faults.append(f_out);
    }
    for (_, f_recv) in &mut out_faults {
        faults.append(f_recv);
    }

    let output = HalfEdgeLabeling::from_node_fn(&graph, |v: NodeId| {
        let s = map.shard_of(v);
        let local = v.index() - map.range(s).start;
        let degree = graph.degree(v) as usize;
        let labels = std::mem::take(&mut outputs[s][local]);
        if labels.len() == degree {
            labels
        } else {
            vec![OutLabel(0); degree]
        }
    });

    if let Some(log) = log {
        for stream in &streams {
            for event in stream {
                log.record(event.clone());
            }
        }
    }

    span.set(Counter::Nodes, graph.node_count() as u64);
    span.set(Counter::Edges, graph.edge_count() as u64);
    span.set(Counter::Rounds, u64::from(rounds));
    span.set(Counter::Messages, messages);
    span.set(Counter::Faults, faults.len() as u64);
    span.set(Counter::Shards, m as u64);
    let seats = &fleet.seats;
    span.set(
        Counter::Supersteps,
        seats.iter().map(|s| s.supersteps).sum(),
    );
    span.set(
        Counter::HaloMessages,
        seats.iter().map(|s| s.halo_messages).sum(),
    );
    span.set(Counter::HaloBytes, seats.iter().map(|s| s.halo_bytes).sum());
    span.set(Counter::ShardCrashes, seats.iter().map(|s| s.crashes).sum());
    span.set(
        Counter::ShardRebuilds,
        seats.iter().map(|s| s.rebuilds).sum(),
    );
    span.set(
        Counter::Checkpoints,
        seats.iter().map(|s| s.checkpoints).sum(),
    );
    span.set(
        Counter::Retries,
        seats
            .iter()
            .map(|s| s.rebuilds + u64::from(s.respawns))
            .sum(),
    );
    let degraded = Degraded {
        outcome: SyncRun { output, rounds },
        faults,
    };
    Ok(RunReport::new(degraded, Trace::new(span.finish())))
}

/// Asserts a reply's `op`.
fn expect_op(fields: &[(String, Scalar)], want: &str, shard: usize) -> Result<(), ProcError> {
    let got = want_str(fields, "op").map_err(proto(shard))?;
    if got != want {
        return Err(ProcError::Protocol {
            shard,
            what: format!("expected a {want:?} reply, got {got:?}"),
        });
    }
    Ok(())
}
