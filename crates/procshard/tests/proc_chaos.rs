//! Kill chaos: a `ShardKill` delivers a real `SIGKILL` to a worker
//! process mid-superstep. The supervisor must notice (socket EOF or a
//! missed superstep deadline), respawn the worker under the capped
//! retry policy, rehydrate it by deterministic command replay, and
//! finish the run with output **bit-identical** to the clean run —
//! kills are output-transparent, surfacing only as `"shard-kill"`
//! faults, retry events, and the `Retries` counter. When the respawn
//! budget is exhausted the run fails with the typed
//! [`ProcError::ShardDead`] escalation instead of hanging.

use lcl_core::{tree_speedup, SpeedupOptions, SpeedupOutcome};
use lcl_faults::{Fault, FaultPlan, RunOptions};
use lcl_local::simulate_sync_with;
use lcl_obs::{Counter, Event, EventLog};
use lcl_problems::anti_matching;
use lcl_procshard::{
    run_proc_sharded, AlgSpec, GraphSpec, GuardedFlood, InputSpec, ProcError, ProcJob, ProcOptions,
};
use lcl_recover::RepairOptions;
use lcl_shard::repair_sharded;

fn ids_for(n: usize, seed: u64) -> Vec<u64> {
    (0..n as u64).map(|i| i * 31 + seed * 7 + 1).collect()
}

fn proc_options() -> ProcOptions {
    ProcOptions {
        worker_bin: Some(env!("CARGO_BIN_EXE_shard-worker").into()),
        ..ProcOptions::default()
    }
}

/// One SIGKILL mid-superstep: the killed worker is respawned and
/// replayed, the run degrades (the kill is on the record) but the
/// computed output — and every other field of the run — is
/// bit-identical to the clean run.
#[test]
fn sigkill_mid_superstep_respawns_and_matches_the_clean_run() {
    let n = 40;
    let alg = GuardedFlood { k: 3 };
    let spec = GraphSpec::Path { n };
    let g = spec.build();
    let input = lcl::uniform_input(&g);
    let ids = ids_for(n, 11);
    let clean = simulate_sync_with(&alg, &g, &input, &ids, None, 10, RunOptions::new());
    assert!(clean.outcome.faults.is_empty());

    let job = ProcJob {
        graph: spec,
        alg: AlgSpec::GuardedFlood { k: 3 },
        input: InputSpec::Uniform,
        ids,
        n_announced: None,
        max_rounds: 10,
    };
    let plan = FaultPlan::new(7).with(Fault::ShardKill {
        shard: 1,
        superstep: 0,
    });
    let log = EventLog::new(4096);
    let run = run_proc_sharded(
        &job,
        RunOptions::new().sharded(4).faults(&plan).events(&log),
        &proc_options(),
    )
    .expect("a killed worker is respawned, not fatal");

    assert_eq!(
        run.outcome.outcome, clean.outcome.outcome,
        "the kill is output-transparent"
    );
    assert!(run.outcome.is_degraded(), "the kill is on the record");
    assert!(
        run.outcome
            .faults
            .iter()
            .any(|f| f.payload.contains("worker killed at superstep 0")
                && f.payload.contains("respawn 1 of 3")),
        "faults: {:?}",
        run.outcome.faults
    );
    assert!(run.trace.total(Counter::Retries) >= 1);
    assert_eq!(
        run.trace.total(Counter::ShardCrashes),
        0,
        "no planned crashes"
    );

    let events = log.events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, Event::Fault { fault, .. } if *fault == "shard-kill")),
        "the supervisor records the kill in the event log"
    );
    assert!(
        events.iter().any(
            |e| matches!(e, Event::Retry { stage, attempt, .. } if stage == "shard/1" && *attempt == 1)
        ),
        "the supervisor records the respawn as a retry"
    );
}

/// A worker that hangs forever at its first compute burns the whole
/// respawn budget — replay faithfully reproduces the hang — and the
/// supervisor escalates with the typed `ShardDead` error instead of
/// waiting forever. The socket deadline is the heartbeat.
#[test]
fn respawn_storm_exhausts_the_budget_and_escalates() {
    let n = 16;
    let job = ProcJob {
        graph: GraphSpec::Path { n },
        alg: AlgSpec::GuardedFlood { k: 2 },
        input: InputSpec::Uniform,
        ids: ids_for(n, 1),
        n_announced: None,
        max_rounds: 8,
    };
    let proc = ProcOptions {
        max_respawns: Some(2),
        hang_at: Some((1, 0)),
        ..proc_options()
    };
    let got = run_proc_sharded(&job, RunOptions::new().sharded(4).io_timeout(150), &proc);
    assert_eq!(
        got.err(),
        Some(ProcError::ShardDead {
            shard: 1,
            superstep: 0,
            respawns: 2,
        })
    );
}

/// `seeds` seeded kill-chaos cases: kill ⌈m/4⌉ of m = 8 worker
/// processes at superstep 0 of the synthesized E1 pipeline run. Every
/// run must produce output bit-identical to the clean unsharded run,
/// and `repair_sharded` must certify it without patching a node.
fn run_kill_soak(seeds: u64, n_base: usize) {
    let problem = anti_matching(3);
    let outcome = tree_speedup(&problem, SpeedupOptions::default());
    let SpeedupOutcome::ConstantRound { steps, .. } = &outcome else {
        panic!("anti-matching synthesizes a constant-round algorithm");
    };
    let steps = *steps as u32;
    let alg = outcome.algorithm();
    let shards: usize = 8;
    let kills = shards.div_ceil(4);
    let proc = proc_options();
    for seed in 0..seeds {
        let n = n_base + (seed as usize % 5) * 17;
        let spec = GraphSpec::RandomTree {
            n,
            max_degree: 3,
            seed,
        };
        let g = spec.build();
        let input = lcl::uniform_input(&g);
        let ids = ids_for(n, seed);
        let clean = simulate_sync_with(&alg, &g, &input, &ids, None, 10, RunOptions::new());
        let plan = FaultPlan::random_kill_chaos(seed, shards, kills, 0);
        let job = ProcJob {
            graph: spec,
            alg: AlgSpec::AntiMatchingE1 { delta: 3 },
            input: InputSpec::Uniform,
            ids: ids.clone(),
            n_announced: None,
            max_rounds: 10,
        };
        let run = run_proc_sharded(&job, RunOptions::new().sharded(shards).faults(&plan), &proc)
            .unwrap_or_else(|e| panic!("seed {seed}: kills must be survivable, got {e}"));
        assert_eq!(
            run.outcome.outcome, clean.outcome.outcome,
            "seed {seed}: kills are output-transparent"
        );
        let killed = run
            .outcome
            .faults
            .iter()
            .filter(|f| f.payload.contains("worker killed"))
            .count();
        assert_eq!(killed, kills, "seed {seed}: every kill is on the record");
        assert_eq!(
            run.trace.total(Counter::Retries),
            kills as u64,
            "seed {seed}: one respawn per kill"
        );

        let (certified, report, patched) = repair_sharded(
            &problem,
            &alg,
            &g,
            &input,
            &ids,
            None,
            steps,
            run.outcome.outcome.output.clone(),
            RepairOptions { max_rounds: 3 },
        )
        .unwrap_or_else(|e| panic!("seed {seed}: a kill-chaos run must end Certified, got {e}"));
        assert_eq!(
            report.patched_nodes, 0,
            "seed {seed}: rehydration left nothing to mend"
        );
        assert!(patched.is_empty(), "seed {seed}");
        assert_eq!(
            certified.get(),
            &clean.outcome.outcome.output,
            "seed {seed}"
        );
    }
}

/// Always-on smoke: a couple of seeded SIGKILL storms end `Certified`.
#[test]
fn kill_chaos_smoke() {
    run_kill_soak(2, 60);
}

/// The full soak (gated in `scripts/check.sh` via `--include-ignored`):
/// 20 seeds × 2 SIGKILLs across 8 worker processes each, every run
/// bit-identical to clean and certified with zero patched nodes.
#[test]
#[ignore = "20-seed SIGKILL soak; release gate via scripts/check.sh"]
fn kill_chaos_soak() {
    run_kill_soak(20, 120);
}
