//! Substrate equivalence across the process boundary: a clean
//! proc-sharded run — real child processes, line-JSON over Unix
//! sockets — must be bit-identical to the in-process sharded executor
//! and to the unsharded executor on the golden catalog, for every
//! shard count. Moving a shard into its own address space changes
//! *where* a run executes, never *what* it computes.

use lcl_core::{tree_speedup, SpeedupOptions};
use lcl_faults::RunOptions;
use lcl_graph::Graph;
use lcl_local::{simulate_sync_with, SyncAlgorithm};
use lcl_obs::Counter;
use lcl_problems::anti_matching;
use lcl_procshard::{
    run_proc_sharded, AlgSpec, GraphSpec, GuardedFlood, InputSpec, ProcJob, ProcOptions,
};
use lcl_shard::simulate_sharded_with;

const SHARD_COUNTS: [usize; 3] = [1, 4, 16];

fn ids_for(g: &Graph, seed: u64) -> Vec<u64> {
    (0..g.node_count() as u64)
        .map(|i| i * 31 + seed * 7 + 1)
        .collect()
}

fn golden_specs() -> Vec<(&'static str, GraphSpec)> {
    vec![
        ("path", GraphSpec::Path { n: 33 }),
        (
            "tree",
            GraphSpec::RandomTree {
                n: 64,
                max_degree: 3,
                seed: 5,
            },
        ),
        ("caterpillar", GraphSpec::Caterpillar { spine: 6, legs: 1 }),
        ("star", GraphSpec::Star { leaves: 3 }),
    ]
}

fn proc_options() -> ProcOptions {
    ProcOptions {
        worker_bin: Some(env!("CARGO_BIN_EXE_shard-worker").into()),
        ..ProcOptions::default()
    }
}

/// Runs one (algorithm spec, local algorithm) pair over the golden
/// catalog at every shard count and asserts the three-way identity:
/// unsharded == in-process sharded == proc-sharded.
fn assert_equivalence<A>(alg_spec: AlgSpec, alg: &A)
where
    A: SyncAlgorithm + Sync,
    A::State: Send,
    A::Msg: Send,
{
    let proc = proc_options();
    for (name, spec) in golden_specs() {
        let g = spec.build();
        let input = lcl::uniform_input(&g);
        let ids = ids_for(&g, 3);
        let baseline = simulate_sync_with(alg, &g, &input, &ids, None, 10, RunOptions::new());
        assert!(baseline.outcome.faults.is_empty(), "{name}: clean baseline");
        let job = ProcJob {
            graph: spec,
            alg: alg_spec.clone(),
            input: InputSpec::Uniform,
            ids: ids.clone(),
            n_announced: None,
            max_rounds: 10,
        };
        for shards in SHARD_COUNTS {
            let inproc = simulate_sharded_with(
                alg,
                &g,
                &input,
                &ids,
                None,
                10,
                2,
                RunOptions::new().sharded(shards),
            );
            assert_eq!(inproc.outcome, baseline.outcome, "{name}: shards={shards}");
            let run = run_proc_sharded(&job, RunOptions::new().sharded(shards), &proc)
                .unwrap_or_else(|e| panic!("{name}: shards={shards}: {e}"));
            assert_eq!(
                run.outcome, baseline.outcome,
                "{name}: proc shards={shards}"
            );
            for counter in [Counter::Rounds, Counter::Messages] {
                assert_eq!(
                    run.trace.total(counter),
                    baseline.trace.total(counter),
                    "{name}: proc shards={shards}: {counter:?}"
                );
            }
            for counter in [
                Counter::Supersteps,
                Counter::HaloMessages,
                Counter::HaloBytes,
            ] {
                assert_eq!(
                    run.trace.total(counter),
                    inproc.trace.total(counter),
                    "{name}: proc shards={shards}: {counter:?}"
                );
            }
            assert_eq!(run.trace.total(Counter::ShardCrashes), 0);
            assert_eq!(run.trace.total(Counter::Retries), 0, "{name}: no respawns");
        }
    }
}

/// The guarded flood (`Msg = u64`) across the process boundary.
#[test]
fn guarded_flood_matches_both_in_process_substrates() {
    assert_equivalence(AlgSpec::GuardedFlood { k: 3 }, &GuardedFlood { k: 3 });
}

/// The synthesized constant-round E1 pipeline (`Msg = (u64, u32)`):
/// the worker process reruns `tree_speedup` from the problem name and
/// must land on the identical lifted algorithm.
#[test]
fn lifted_e1_matches_both_in_process_substrates() {
    let outcome = tree_speedup(&anti_matching(3), SpeedupOptions::default());
    assert_equivalence(AlgSpec::AntiMatchingE1 { delta: 3 }, &outcome.algorithm());
}

/// A missing worker binary is a typed error, not a hang.
#[test]
fn missing_worker_binary_is_a_typed_error() {
    let job = ProcJob {
        graph: GraphSpec::Path { n: 4 },
        alg: AlgSpec::GuardedFlood { k: 1 },
        input: InputSpec::Uniform,
        ids: vec![1, 2, 3, 4],
        n_announced: None,
        max_rounds: 4,
    };
    let proc = ProcOptions {
        worker_bin: Some("/nonexistent/shard-worker".into()),
        ..ProcOptions::default()
    };
    match run_proc_sharded(&job, RunOptions::new(), &proc) {
        Err(lcl_procshard::ProcError::WorkerBinMissing { tried }) => {
            assert_eq!(tried, vec!["/nonexistent/shard-worker".to_string()]);
        }
        other => panic!("expected WorkerBinMissing, got {other:?}"),
    }
}
