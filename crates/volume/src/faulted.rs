//! Fault-injected VOLUME/LCA execution with graceful degradation.
//!
//! The opt-in counterparts of [`simulate`](crate::simulate) and
//! [`simulate_lca`](crate::simulate_lca): a [`FaultPlan`] is applied
//! deterministically, each query's `answer` invocation runs
//! panic-isolated, and every fault becomes a typed [`NodeFault`] record
//! plus an [`lcl_obs::Event::Fault`] in the event log.
//!
//! Fault semantics in the query model (nodes are queried independently,
//! so "rounds" degenerate to the probe sequence):
//!
//! * **Crash-stop** — the queried node is unreachable; its query goes
//!   unanswered and placeholder labels are emitted.
//! * **View corruption** — the queried node's own `t_v` identifier is
//!   perturbed before the algorithm sees it; the query still answers.
//! * **Probe lie** — the `nth` probe of that query returns (and
//!   records into the transcript) a perturbed identifier.
//! * **Panics** — isolated; the query degrades to placeholder labels.
//! * **Probe errors under a plan** — a [`ProbeError`](crate::ProbeError) hit while a fault
//!   plan is active degrades that single query instead of failing the
//!   whole run, so chaos soaks observe the trichotomy (valid output /
//!   typed error / typed degradation) rather than an abort. The plain
//!   entrypoints keep the typed-error leg.

use lcl::{HalfEdgeLabeling, InLabel, OutLabel};
use lcl_faults::{inject_panic, isolate, Degraded, FaultPlan, NodeFault};
use lcl_graph::Graph;
use lcl_obs::{Counter, Event, EventLog, RunReport, Span, Trace};

use lcl_local::IdAssignment;

use crate::algorithm::{ProbeSession, VolumeAlgorithm};
use crate::lca::{LcaAlgorithm, LcaSession};
use crate::run::VolumeRun;

fn record_fault(
    faults: &mut Vec<NodeFault>,
    log: Option<&EventLog>,
    node: u64,
    round: u64,
    tag: &'static str,
    payload: String,
) {
    if let Some(log) = log {
        log.record(Event::Fault {
            node,
            round,
            fault: tag,
        });
    }
    faults.push(NodeFault {
        node,
        round,
        payload,
    });
}

/// Shared per-query fault scaffolding for the VOLUME and LCA executors:
/// applies crash/panic/lie faults around `answer`, converts panics and
/// probe errors into [`NodeFault`]s, and enforces the arity contract.
#[allow(clippy::too_many_arguments)]
fn answer_faulted<'a, F>(
    graph: &'a Graph,
    input: &'a HalfEdgeLabeling<InLabel>,
    ids: &'a IdAssignment,
    v: lcl_graph::NodeId,
    budget: usize,
    n: usize,
    plan: &FaultPlan,
    log: Option<&'a EventLog>,
    faults: &mut Vec<NodeFault>,
    answer: F,
) -> (Vec<OutLabel>, usize)
where
    F: FnOnce(&mut ProbeSession<'a>) -> Result<Vec<OutLabel>, crate::ProbeError>,
{
    let degree = graph.degree(v) as usize;
    let node = v.index() as u64;
    if let Some(round) = plan.crash_round(v.index()) {
        record_fault(
            faults,
            log,
            node,
            u64::from(round),
            "crash-stop",
            "crash-stop".into(),
        );
        return (vec![OutLabel(0); degree], 0);
    }
    let mut session = ProbeSession::new(graph, input, ids, v, budget, n, log);
    if let Some(salt) = plan.corrupt_salt(v.index()) {
        if let Some(log) = log {
            log.record(Event::Fault {
                node,
                round: 0,
                fault: "corrupt-view",
            });
        }
        session.corrupt_queried(salt);
    }
    if let Some(nth) = plan.probe_lie(v.index()) {
        session.set_probe_lie(nth, plan.seed() ^ node);
    }
    let result = if plan.panics(v.index()) {
        isolate(|| inject_panic(node))
    } else {
        isolate(|| answer(&mut session))
    };
    let probes = session.probes_used();
    match result {
        Ok(Ok(labels)) if labels.len() == degree => (labels, probes),
        Ok(Ok(labels)) => {
            let payload = format!(
                "returned {} labels for a degree-{degree} query",
                labels.len()
            );
            record_fault(faults, log, node, 0, "wrong-arity", payload);
            (vec![OutLabel(0); degree], probes)
        }
        Ok(Err(probe_error)) => {
            record_fault(faults, log, node, 0, "probe-error", probe_error.to_string());
            (vec![OutLabel(0); degree], probes)
        }
        Err(payload) => {
            record_fault(faults, log, node, 0, "panic", payload);
            (vec![OutLabel(0); degree], probes)
        }
    }
}

/// Runs a VOLUME algorithm under a [`FaultPlan`], degrading instead of
/// failing: crashed queries, panics, and probe errors each cost only
/// that query (placeholder labels plus a [`NodeFault`]); probe lies and
/// corrupted `t_v` views silently skew the answers, which the verifier
/// then localizes. The plan's ID permutation (if any) applies first.
#[deprecated(
    since = "0.1.0",
    note = "use `simulate_with(..., RunOptions::new().faults(plan).events(log))`"
)]
pub fn simulate_faulted(
    alg: &(impl VolumeAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
    n_announced: Option<usize>,
    plan: &FaultPlan,
    log: Option<&EventLog>,
) -> RunReport<Degraded<VolumeRun>> {
    simulate_faulted_impl(alg, graph, input, ids, n_announced, plan, log)
}

pub(crate) fn simulate_faulted_impl(
    alg: &(impl VolumeAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
    n_announced: Option<usize>,
    plan: &FaultPlan,
    log: Option<&EventLog>,
) -> RunReport<Degraded<VolumeRun>> {
    assert_eq!(ids.len(), graph.node_count(), "ids cover the graph");
    let permuted;
    let ids = match plan.permutation(graph.node_count()) {
        Some(perm) => {
            permuted = ids.permuted(&perm);
            &permuted
        }
        None => ids,
    };
    let n = n_announced.unwrap_or_else(|| graph.node_count());
    let budget = alg.probe_budget(n);
    let mut span = Span::start(format!("volume/faulted/{}", alg.name()));
    let mut faults = Vec::new();
    let mut max_probes = 0usize;
    let mut total_probes = 0usize;
    let output = HalfEdgeLabeling::from_node_fn(graph, |v| {
        assert!(
            graph.degree(v) > 0,
            "the VOLUME model excludes isolated nodes"
        );
        let (labels, probes) = answer_faulted(
            graph,
            input,
            ids,
            v,
            budget,
            n,
            plan,
            log,
            &mut faults,
            |session| alg.answer(session),
        );
        max_probes = max_probes.max(probes);
        total_probes += probes;
        span.observe(Counter::Probes, probes as u64);
        labels
    });
    span.set(Counter::Nodes, graph.node_count() as u64);
    span.set(Counter::Edges, graph.edge_count() as u64);
    span.set(Counter::Queries, graph.node_count() as u64);
    span.set(Counter::Probes, total_probes as u64);
    span.set(Counter::MaxProbes, max_probes as u64);
    span.set(Counter::Faults, faults.len() as u64);
    let degraded = Degraded {
        outcome: VolumeRun {
            output,
            max_probes,
            total_probes,
        },
        faults,
    };
    RunReport::new(degraded, Trace::new(span.finish()))
}

/// Runs an LCA under a [`FaultPlan`] with the same degradation semantics
/// as [`simulate_faulted`]; far probes are unaffected by probe lies
/// (the lie corrupts the adaptive near-probe transcript).
///
/// # Panics
///
/// Panics unless `ids` is a permutation of `1..=n` (the LCA identifier
/// promise); a plan's ID permutation preserves that multiset, so
/// permuted runs remain valid LCA instances.
#[deprecated(
    since = "0.1.0",
    note = "use `simulate_lca_with(..., RunOptions::new().faults(plan).events(log))`"
)]
pub fn simulate_lca_faulted(
    alg: &(impl LcaAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
    plan: &FaultPlan,
    log: Option<&EventLog>,
) -> RunReport<Degraded<VolumeRun>> {
    simulate_lca_faulted_impl(alg, graph, input, ids, plan, log)
}

pub(crate) fn simulate_lca_faulted_impl(
    alg: &(impl LcaAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
    plan: &FaultPlan,
    log: Option<&EventLog>,
) -> RunReport<Degraded<VolumeRun>> {
    let n = graph.node_count();
    assert_eq!(ids.len(), n, "ids cover the graph");
    let mut sorted: Vec<u64> = ids.iter().collect();
    sorted.sort_unstable();
    assert!(
        sorted == (1..=n as u64).collect::<Vec<_>>(),
        "LCA identifiers must be exactly 1..=n"
    );
    let permuted;
    let ids = match plan.permutation(n) {
        Some(perm) => {
            permuted = ids.permuted(&perm);
            &permuted
        }
        None => ids,
    };
    let budget = alg.probe_budget(n);
    let mut span = Span::start(format!("lca/faulted/{}", alg.name()));
    let mut faults = Vec::new();
    let mut max_probes = 0usize;
    let mut total_probes = 0usize;
    let mut far_probes = 0usize;
    let output = HalfEdgeLabeling::from_node_fn(graph, |v| {
        assert!(
            graph.degree(v) > 0,
            "the VOLUME model excludes isolated nodes"
        );
        let mut far_used = 0usize;
        let (labels, probes) = answer_faulted(
            graph,
            input,
            ids,
            v,
            budget,
            n,
            plan,
            log,
            &mut faults,
            |session| {
                let mut lca = LcaSession::new(session, graph, input, ids);
                let out = alg.answer(&mut lca);
                far_used = lca.far_probes_used();
                out
            },
        );
        let used = probes + far_used;
        far_probes += far_used;
        max_probes = max_probes.max(used);
        total_probes += used;
        span.observe(Counter::Probes, used as u64);
        labels
    });
    span.set(Counter::Nodes, graph.node_count() as u64);
    span.set(Counter::Edges, graph.edge_count() as u64);
    span.set(Counter::Queries, graph.node_count() as u64);
    span.set(Counter::Probes, total_probes as u64);
    span.set(Counter::MaxProbes, max_probes as u64);
    span.set(Counter::FarProbes, far_probes as u64);
    span.set(Counter::Faults, faults.len() as u64);
    let degraded = Degraded {
        outcome: VolumeRun {
            output,
            max_probes,
            total_probes,
        },
        faults,
    };
    RunReport::new(degraded, Trace::new(span.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::FnVolumeAlgorithm;
    use crate::lca::VolumeAsLca;
    use lcl_faults::Fault;
    use lcl_graph::gen;

    #[allow(clippy::type_complexity)] // `impl Trait` closure types cannot be aliased
    fn neighbor_id_alg() -> FnVolumeAlgorithm<
        impl Fn(usize) -> usize,
        impl Fn(&mut ProbeSession<'_>) -> Result<Vec<OutLabel>, crate::ProbeError>,
    > {
        FnVolumeAlgorithm::new(
            "first-neighbor",
            |_| 1,
            |s| {
                let d = s.queried().degree as usize;
                let n0 = s.probe(0, 0)?;
                Ok(vec![OutLabel((n0.id % 1000) as u32); d])
            },
        )
    }

    #[test]
    fn empty_plan_matches_the_unfaulted_run() {
        let g = gen::cycle(6);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(6);
        let plan = FaultPlan::new(5);
        let report = simulate_faulted_impl(&neighbor_id_alg(), &g, &input, &ids, None, &plan, None);
        assert!(!report.outcome.is_degraded());
        let plain =
            crate::run::run_volume(&neighbor_id_alg(), &g, &input, &ids, None).expect("in budget");
        assert_eq!(report.outcome.outcome, plain);
    }

    #[test]
    fn crash_panic_and_probe_errors_degrade_per_query() {
        let g = gen::cycle(6);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(6);
        let plan = FaultPlan::new(0)
            .with(Fault::Crash { node: 1, round: 0 })
            .with(Fault::PanicNode { node: 3 });
        let log = EventLog::new(64);
        let report = simulate_faulted_impl(
            &neighbor_id_alg(),
            &g,
            &input,
            &ids,
            None,
            &plan,
            Some(&log),
        );
        let degraded = &report.outcome;
        assert_eq!(degraded.faults.len(), 2);
        assert_eq!(degraded.faults[0].payload, "crash-stop");
        assert!(degraded.faults[1]
            .payload
            .contains("injected panic at node 3"));
        assert_eq!(report.trace.total(Counter::Faults), 2);
        // Crashed and panicked queries spent no probes; the four healthy
        // queries probed once each.
        assert_eq!(report.outcome.outcome.total_probes, 4);
    }

    #[test]
    fn probe_errors_under_a_plan_degrade_instead_of_failing() {
        let g = gen::path(4);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(4);
        let alg = FnVolumeAlgorithm::new(
            "over-budget",
            |_| 1,
            |s: &mut ProbeSession<'_>| loop {
                let _ = s.probe(0, 0)?;
            },
        );
        let plan = FaultPlan::new(1);
        let report = simulate_faulted_impl(&alg, &g, &input, &ids, None, &plan, None);
        let degraded = &report.outcome;
        assert_eq!(degraded.faults.len(), 4, "every query over-probes");
        assert!(degraded.faults[0]
            .payload
            .contains("probe budget 1 exhausted"));
    }

    #[test]
    fn probe_lie_perturbs_the_answer_deterministically() {
        let g = gen::cycle(6);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(6);
        let plan = FaultPlan::new(11).with(Fault::ProbeLie { query: 2, nth: 0 });
        let honest = simulate_faulted_impl(
            &neighbor_id_alg(),
            &g,
            &input,
            &ids,
            None,
            &FaultPlan::new(11),
            None,
        );
        let lied = simulate_faulted_impl(&neighbor_id_alg(), &g, &input, &ids, None, &plan, None);
        // The lie is silent corruption: no fault record, but query 2's
        // answer changed while every other query is untouched.
        assert!(!lied.outcome.is_degraded());
        let h2 = g.half_edge(lcl_graph::NodeId(2), 0);
        assert_ne!(
            lied.outcome.outcome.output.get(h2),
            honest.outcome.outcome.output.get(h2)
        );
        let h0 = g.half_edge(lcl_graph::NodeId(0), 0);
        assert_eq!(
            lied.outcome.outcome.output.get(h0),
            honest.outcome.outcome.output.get(h0)
        );
        let again = simulate_faulted_impl(&neighbor_id_alg(), &g, &input, &ids, None, &plan, None);
        assert_eq!(lied.outcome, again.outcome);
    }

    #[test]
    fn corrupt_view_perturbs_the_queried_id() {
        let g = gen::cycle(5);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(5);
        let alg = FnVolumeAlgorithm::new(
            "own-id",
            |_| 0,
            |s: &mut ProbeSession<'_>| {
                Ok(vec![
                    OutLabel((s.queried().id % 1000) as u32);
                    s.queried().degree as usize
                ])
            },
        );
        let plan = FaultPlan::new(0).with(Fault::CorruptView { node: 2, salt: 7 });
        let report = simulate_faulted_impl(&alg, &g, &input, &ids, None, &plan, None);
        assert!(!report.outcome.is_degraded(), "silent corruption");
        let h2 = g.half_edge(lcl_graph::NodeId(2), 0);
        assert_ne!(report.outcome.outcome.output.get(h2), OutLabel(2));
        let h1 = g.half_edge(lcl_graph::NodeId(1), 0);
        assert_eq!(report.outcome.outcome.output.get(h1), OutLabel(1));
    }

    #[test]
    fn lca_faulted_counts_far_probes_and_degrades() {
        let g = gen::path(5);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::from_vec((1..=5).collect());
        struct FarDegree;
        impl LcaAlgorithm for FarDegree {
            fn probe_budget(&self, _n: usize) -> usize {
                0
            }
            fn answer(
                &self,
                s: &mut LcaSession<'_, '_>,
            ) -> Result<Vec<OutLabel>, crate::ProbeError> {
                let info = s.far_probe(1).expect("id 1 exists");
                let d = s.near().queried().degree as usize;
                Ok(vec![OutLabel(u32::from(info.degree)); d])
            }
        }
        let plan = FaultPlan::new(0).with(Fault::PanicNode { node: 4 });
        let report = simulate_lca_faulted_impl(&FarDegree, &g, &input, &ids, &plan, None);
        let degraded = &report.outcome;
        assert_eq!(degraded.faults.len(), 1);
        assert!(degraded.faults[0]
            .payload
            .contains("injected panic at node 4"));
        // Four healthy queries each spent one far probe.
        assert_eq!(report.trace.total(Counter::FarProbes), 4);
    }

    #[test]
    fn lca_id_permutation_stays_a_valid_lca_instance() {
        let g = gen::cycle(6);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::from_vec((1..=6).collect());
        let alg = VolumeAsLca(neighbor_id_alg());
        let plan = FaultPlan::new(21).with_permuted_ids();
        let a = simulate_lca_faulted_impl(&alg, &g, &input, &ids, &plan, None);
        let b = simulate_lca_faulted_impl(&alg, &g, &input, &ids, &plan, None);
        assert!(!a.outcome.is_degraded());
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.trace.fingerprint(), b.trace.fingerprint());
    }
}
