//! Order invariance in the VOLUME model (Definition 2.10).
//!
//! Two probe transcripts are *almost identical* when they agree on
//! everything except identifier values, with the same relative order. An
//! order-invariant VOLUME algorithm answers identically on almost-identical
//! transcripts. The Theorem 4.1 pipeline (in `lcl-core`) canonicalizes a
//! suspected-order-invariant algorithm through [`RankedSession`], which
//! replaces raw identifiers by their ranks among the ids discovered so far.

use lcl::{HalfEdgeLabeling, InLabel};
use lcl_graph::Graph;

use lcl_local::IdAssignment;

use crate::algorithm::{NodeInfo, ProbeError, ProbeSession, VolumeAlgorithm};

/// A [`NodeInfo`] with the identifier replaced by its *rank* among the ids
/// discovered so far in the session.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RankedInfo {
    /// Rank of this node's id among all currently discovered ids
    /// (0 = smallest). Ranks of earlier nodes can shift as probes reveal
    /// new ids; use [`RankedSession::ranks`] for the current picture.
    pub rank: u32,
    /// The node's degree.
    pub degree: u8,
    /// Input labels in port order.
    pub inputs: Vec<InLabel>,
}

/// A probe session that only exposes identifier *order*, for implementing
/// order-invariant VOLUME algorithms (Definition 2.10).
#[derive(Debug)]
pub struct RankedSession<'a, 'b> {
    inner: &'b mut ProbeSession<'a>,
}

impl<'a, 'b> RankedSession<'a, 'b> {
    /// Wraps a raw session.
    pub fn new(inner: &'b mut ProbeSession<'a>) -> Self {
        Self { inner }
    }

    /// The announced number of nodes.
    pub fn n(&self) -> usize {
        self.inner.n()
    }

    /// Remaining probe budget.
    pub fn probes_left(&self) -> usize {
        self.inner.probes_left()
    }

    /// Number of discovered nodes.
    pub fn discovered_count(&self) -> usize {
        self.inner.discovered_count()
    }

    fn rank_of(&self, j: usize) -> u32 {
        let my_id = self.inner.info(j).id;
        (0..self.inner.discovered_count())
            .filter(|&k| self.inner.info(k).id < my_id)
            .count() as u32
    }

    /// The queried node's ranked information.
    pub fn queried(&self) -> RankedInfo {
        self.ranked(0)
    }

    /// Ranked information of the `j`-th discovered node.
    pub fn ranked(&self, j: usize) -> RankedInfo {
        let info = self.inner.info(j);
        RankedInfo {
            rank: self.rank_of(j),
            degree: info.degree,
            inputs: info.inputs.clone(),
        }
    }

    /// Current ranks of all discovered nodes, in discovery order.
    pub fn ranks(&self) -> Vec<u32> {
        (0..self.inner.discovered_count())
            .map(|j| self.rank_of(j))
            .collect()
    }

    /// Performs a probe and returns the new node's ranked information.
    ///
    /// # Errors
    ///
    /// Propagates the [`ProbeError`]s of [`ProbeSession::probe`].
    pub fn probe(&mut self, j: usize, port: u8) -> Result<RankedInfo, ProbeError> {
        let _ = self.inner.probe(j, port)?;
        Ok(self.ranked(self.inner.discovered_count() - 1))
    }
}

/// Empirically checks Definition 2.10: reruns the algorithm under
/// `samples` order-preserving resamplings of the identifiers and compares
/// outputs. `false` is a definite counterexample; `true` is evidence.
///
/// # Errors
///
/// Propagates the first [`ProbeError`] of any run.
pub fn is_empirically_order_invariant_volume(
    alg: &(impl VolumeAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    base_ids: &IdAssignment,
    samples: usize,
    seed: u64,
) -> Result<bool, ProbeError> {
    let baseline = crate::run::run_volume(alg, graph, input, base_ids, None)?;
    for s in 0..samples {
        let fresh = base_ids.resample_order_preserving(3, seed.wrapping_add(s as u64));
        let run = crate::run::run_volume(alg, graph, input, &fresh, None)?;
        if run.output != baseline.output {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Exposes the raw info of a node (used by adapters that mix ranked and
/// raw access for testing).
pub fn raw_info(session: &ProbeSession<'_>, j: usize) -> NodeInfo {
    session.info(j).clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::FnVolumeAlgorithm;
    use lcl::OutLabel;
    use lcl_graph::{gen, NodeId};

    #[test]
    fn ranked_session_tracks_order() {
        let g = gen::path(4);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::from_vec(vec![40, 10, 30, 20]);
        let mut raw = ProbeSession::new(&g, &input, &ids, NodeId(1), 3, 4, None);
        let mut s = RankedSession::new(&mut raw);
        // Only the queried node (id 10) discovered: rank 0.
        assert_eq!(s.queried().rank, 0);
        // Discover node 0 (id 40): it ranks above.
        let left = s.probe(0, 0).expect("in budget");
        assert_eq!(left.rank, 1);
        // Discover node 2 (id 30): ranks shift.
        let right = s.probe(0, 1).expect("in budget");
        assert_eq!(right.rank, 1);
        assert_eq!(s.ranks(), vec![0, 2, 1]);
    }

    #[test]
    fn rank_based_algorithm_passes_the_checker() {
        let g = gen::cycle(7);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::random_polynomial(7, 3, 1);
        let alg = FnVolumeAlgorithm::new(
            "rank",
            |_| 1,
            |raw| {
                let d = raw.queried().degree as usize;
                let mut s = RankedSession::new(raw);
                let neighbor = s.probe(0, 0)?;
                Ok(vec![OutLabel(u32::from(neighbor.rank == 0)); d])
            },
        );
        assert!(
            is_empirically_order_invariant_volume(&alg, &g, &input, &ids, 8, 3).expect("in budget")
        );
    }

    #[test]
    fn value_based_algorithm_fails_the_checker() {
        let g = gen::cycle(7);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::random_polynomial(7, 3, 1);
        let alg = FnVolumeAlgorithm::new(
            "parity",
            |_| 0,
            |s| {
                Ok(vec![
                    OutLabel((s.queried().id % 2) as u32);
                    s.queried().degree as usize
                ])
            },
        );
        assert!(
            !is_empirically_order_invariant_volume(&alg, &g, &input, &ids, 16, 3)
                .expect("zero probes")
        );
    }
}
