//! The VOLUME model (Rosenbaum–Suomela) and the LCA model, as executable
//! simulators — Definitions 2.8–2.10 of the paper.
//!
//! In the VOLUME model a node answers a query about its own half-edges by
//! *adaptively probing* the graph: each probe reveals one node's local
//! information (identifier, degree, input labels — a `Tuples_S` entry in
//! the paper's notation), and the complexity measure is the **number of
//! probes**, not the radius. This is the model in which the paper proves
//! the clean `ω(1) – o(log* n)` gap of Theorem 4.1/4.3.
//!
//! * [`VolumeAlgorithm`] + [`ProbeSession`] — the adaptive probe
//!   interface; the session enforces the probe budget `T(n)` and records
//!   the transcript `t^{(i)}`.
//! * [`run_volume`] — answers the query of every node and reports the
//!   worst-case probe count.
//! * [`order_invariant`] — Definition 2.10 order invariance plus the
//!   empirical checker used by the Theorem 4.1 pipeline.
//! * [`lca`] — the LCA variant: identifiers are exactly `{1, ..., n}` and
//!   far probes are available (Theorem 2.12 shows they do not help below
//!   `o(√log n)`; the adapter here makes that concrete).
//!
//! # Examples
//!
//! A 1-probe algorithm that reports whether the queried node's identifier
//! is larger than its first neighbor's:
//!
//! ```
//! use lcl::OutLabel;
//! use lcl_local::IdAssignment;
//! use lcl_volume::{run_volume, FnVolumeAlgorithm};
//! use lcl_graph::gen;
//!
//! let g = gen::cycle(5);
//! let alg = FnVolumeAlgorithm::new("bigger", |_n| 1, |session| {
//!     let me = session.queried().id;
//!     let neighbor = session.probe(0, 0)?.id;
//!     Ok(vec![OutLabel(u32::from(me > neighbor)); session.queried().degree as usize])
//! });
//! let input = lcl::uniform_input(&g);
//! let ids = IdAssignment::sequential(5);
//! let run = run_volume(&alg, &g, &input, &ids, None)?;
//! assert_eq!(run.max_probes, 1);
//! # Ok::<(), lcl_volume::ProbeError>(())
//! ```
//!
//! An out-of-contract probe — over budget, undiscovered target,
//! nonexistent port — surfaces as a typed [`ProbeError`] instead of a
//! panic, so a buggy algorithm yields a reportable failure.

pub mod algorithm;
pub mod faulted;
pub mod lca;
pub mod order_invariant;
pub mod run;

pub use algorithm::{FnVolumeAlgorithm, NodeInfo, ProbeError, ProbeSession, VolumeAlgorithm};
#[allow(deprecated)]
pub use faulted::{simulate_faulted, simulate_lca_faulted};
pub use lca::{run_lca, simulate_lca_with, LcaAlgorithm, LcaSession};
#[allow(deprecated)]
pub use lca::{simulate_lca, simulate_lca_logged};
pub use order_invariant::{is_empirically_order_invariant_volume, RankedInfo, RankedSession};
pub use run::{minimal_probe_budget, run_volume, simulate_with, VolumeRun};
#[allow(deprecated)]
pub use run::{simulate, simulate_logged};
