//! Executing VOLUME algorithms over whole graphs.

use lcl::{HalfEdgeLabeling, InLabel, OutLabel};
use lcl_faults::{Degraded, RunOptions};
use lcl_graph::Graph;
use lcl_obs::{Counter, EventLog, RunReport, Span, Trace};

use lcl_local::IdAssignment;

use crate::algorithm::{ProbeError, ProbeSession, VolumeAlgorithm};

/// The result of answering every node's query.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VolumeRun {
    /// The produced half-edge labeling.
    pub output: HalfEdgeLabeling<OutLabel>,
    /// The maximum number of probes any single query used — the VOLUME
    /// complexity actually exercised.
    pub max_probes: usize,
    /// The total number of probes across all queries.
    pub total_probes: usize,
}

/// Runs a VOLUME algorithm by querying every node (each query gets a fresh
/// session, as in the model: queries do not share state), reporting the
/// execution trace: total and worst-case probes (plus a per-query probe
/// histogram) and the instance shape. With `log` set, every probe is
/// recorded as an [`lcl_obs::Event::Probe`].
///
/// # Errors
///
/// Returns the first [`ProbeError`] an over-eager query runs into —
/// budget exhaustion, undiscovered targets, nonexistent ports.
///
/// # Panics
///
/// Panics if the graph contains an isolated node (excluded by
/// Definition 2.9) or the algorithm mislabels the queried node's arity —
/// both are instance/algorithm contract violations, not runtime
/// conditions an algorithm can trigger adaptively.
#[deprecated(
    since = "0.1.0",
    note = "use `simulate_with(..., RunOptions::new().events(log))`"
)]
pub fn simulate_logged(
    alg: &(impl VolumeAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
    n_announced: Option<usize>,
    log: Option<&EventLog>,
) -> Result<RunReport<VolumeRun>, ProbeError> {
    simulate_impl(alg, graph, input, ids, n_announced, log)
}

/// Runs a VOLUME algorithm under [`RunOptions`]: optional event capture,
/// optional fault plan. With a fault plan the run is the degrading
/// executor of [`crate::faulted`] — probe errors cost only their query —
/// and the `Err` leg is never taken; without one an out-of-contract
/// probe surfaces as the typed [`ProbeError`] and a clean run returns
/// [`Degraded::clean`]. The probe budget is the algorithm's own
/// `probe_budget(n)`; a `RunOptions` budget has no probe dimension and
/// is ignored here.
///
/// # Errors
///
/// As [`simulate_logged`], on the plan-free path only.
pub fn simulate_with(
    alg: &(impl VolumeAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
    n_announced: Option<usize>,
    opts: RunOptions<'_>,
) -> Result<RunReport<Degraded<VolumeRun>>, ProbeError> {
    match opts.fault_plan() {
        Some(plan) => Ok(crate::faulted::simulate_faulted_impl(
            alg,
            graph,
            input,
            ids,
            n_announced,
            plan,
            opts.event_log(),
        )),
        None => Ok(
            simulate_impl(alg, graph, input, ids, n_announced, opts.event_log())?
                .map(Degraded::clean),
        ),
    }
}

pub(crate) fn simulate_impl(
    alg: &(impl VolumeAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
    n_announced: Option<usize>,
    log: Option<&EventLog>,
) -> Result<RunReport<VolumeRun>, ProbeError> {
    let n = n_announced.unwrap_or_else(|| graph.node_count());
    let budget = alg.probe_budget(n);
    let mut span = Span::start(format!("volume/{}", alg.name()));
    let mut max_probes = 0usize;
    let mut total_probes = 0usize;
    // `from_node_fn` closures are infallible; stash the first error and
    // emit correctly-shaped placeholder labels for the remaining nodes.
    let mut failure: Option<ProbeError> = None;
    let output = HalfEdgeLabeling::from_node_fn(graph, |v| {
        assert!(
            graph.degree(v) > 0,
            "the VOLUME model excludes isolated nodes"
        );
        if failure.is_some() {
            return vec![OutLabel(0); graph.degree(v) as usize];
        }
        let mut session = ProbeSession::new(graph, input, ids, v, budget, n, log);
        match alg.answer(&mut session) {
            Ok(labels) => {
                assert_eq!(
                    labels.len(),
                    graph.degree(v) as usize,
                    "algorithm {} must label each half-edge of the queried node",
                    alg.name()
                );
                max_probes = max_probes.max(session.probes_used());
                total_probes += session.probes_used();
                span.observe(Counter::Probes, session.probes_used() as u64);
                labels
            }
            Err(e) => {
                failure = Some(e);
                vec![OutLabel(0); graph.degree(v) as usize]
            }
        }
    });
    if let Some(e) = failure {
        return Err(e);
    }
    span.set(Counter::Nodes, graph.node_count() as u64);
    span.set(Counter::Edges, graph.edge_count() as u64);
    span.set(Counter::Queries, graph.node_count() as u64);
    span.set(Counter::Probes, total_probes as u64);
    span.set(Counter::MaxProbes, max_probes as u64);
    let run = VolumeRun {
        output,
        max_probes,
        total_probes,
    };
    Ok(RunReport::new(run, Trace::new(span.finish())))
}

/// [`simulate_logged`] without an event log — the instrumented
/// entrypoint behind the facade's `Simulation` trait; [`run_volume`]
/// forwards here and discards the trace.
///
/// # Errors
///
/// As [`simulate_logged`].
#[deprecated(since = "0.1.0", note = "use `simulate_with(..., RunOptions::new())`")]
pub fn simulate(
    alg: &(impl VolumeAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
    n_announced: Option<usize>,
) -> Result<RunReport<VolumeRun>, ProbeError> {
    simulate_impl(alg, graph, input, ids, n_announced, None)
}

/// Runs a VOLUME algorithm over every node, discarding the trace.
///
/// Note: superseded by [`simulate`], which additionally reports the
/// execution trace; this thin wrapper remains for source compatibility.
///
/// # Errors
///
/// As [`simulate_logged`].
pub fn run_volume(
    alg: &(impl VolumeAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
    n_announced: Option<usize>,
) -> Result<VolumeRun, ProbeError> {
    Ok(simulate_impl(alg, graph, input, ids, n_announced, None)?.outcome)
}

/// Finds the minimal probe budget `T ≤ max_budget` under which the
/// algorithm family solves `problem` on `graph`, or `None`. The VOLUME
/// analogue of [`lcl_local::minimal_solving_radius`]; assumes solvability
/// is monotone in the budget (gather-style probing). A budget whose run
/// fails with a [`ProbeError`] counts as not solving.
pub fn minimal_probe_budget<A, F>(
    problem: &(impl lcl::Problem + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
    max_budget: usize,
    make: F,
) -> Option<usize>
where
    A: VolumeAlgorithm,
    F: Fn(usize) -> A,
{
    let solves = |budget: usize| {
        let alg = make(budget);
        run_volume(&alg, graph, input, ids, None)
            .map(|run| lcl::verify(problem, graph, input, &run.output).is_empty())
            .unwrap_or(false)
    };
    if solves(0) {
        return Some(0);
    }
    let mut hi = 1usize;
    while hi < max_budget && !solves(hi) {
        hi = (hi * 2).min(max_budget);
    }
    if !solves(hi) {
        return None;
    }
    let mut lo = hi / 2;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if solves(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::FnVolumeAlgorithm;
    use lcl_graph::gen;
    use lcl_obs::Event;

    #[test]
    fn zero_probe_algorithm() {
        let g = gen::cycle(6);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(6);
        let alg = FnVolumeAlgorithm::new(
            "const",
            |_| 0,
            |s| Ok(vec![OutLabel(7); s.queried().degree as usize]),
        );
        let run = run_volume(&alg, &g, &input, &ids, None).expect("zero probes");
        assert_eq!(run.max_probes, 0);
        assert_eq!(run.total_probes, 0);
        assert!(run.output.as_slice().iter().all(|&l| l == OutLabel(7)));
    }

    #[test]
    fn probe_counts_are_aggregated() {
        let g = gen::path(4);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(4);
        // Probe each of the queried node's ports once.
        let alg = FnVolumeAlgorithm::new(
            "scan",
            |_| 2,
            |s| {
                let d = s.queried().degree;
                for p in 0..d {
                    let _ = s.probe(0, p)?;
                }
                Ok(vec![OutLabel(0); d as usize])
            },
        );
        let run = run_volume(&alg, &g, &input, &ids, None).expect("in budget");
        assert_eq!(run.max_probes, 2); // interior nodes probe twice
        assert_eq!(run.total_probes, 2 + 2 + 1 + 1);
    }

    #[test]
    fn probe_errors_surface_instead_of_panicking() {
        let g = gen::path(4);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(4);
        let alg = FnVolumeAlgorithm::new(
            "over-budget",
            |_| 1,
            |s| loop {
                let _ = s.probe(0, 0)?;
            },
        );
        assert_eq!(
            run_volume(&alg, &g, &input, &ids, None),
            Err(ProbeError::BudgetExhausted { budget: 1 })
        );
    }

    #[test]
    fn minimal_budget_finds_walk_length() {
        // "Certify an endpoint": every node must output Yes; the
        // algorithm walks left with its budget and answers Yes iff it
        // reached a degree-1 node. The minimal budget is the distance of
        // the rightmost node to the left endpoint = n - 1.
        let problem = lcl::LclProblem::builder("all-yes", 2)
            .outputs(["No", "Yes"])
            .node_pattern(&["Yes*"])
            .edge(&["Yes", "Yes"])
            .build()
            .unwrap();
        for n in [4usize, 9, 16] {
            let g = gen::path(n);
            let input = lcl::uniform_input(&g);
            let ids = IdAssignment::sequential(n);
            let t = minimal_probe_budget(&problem, &g, &input, &ids, 2 * n, |budget| {
                FnVolumeAlgorithm::new(
                    "walk-left",
                    move |_| budget,
                    move |s| {
                        let degree = s.queried().degree as usize;
                        let mut current = s.queried().clone();
                        let mut j = 0usize;
                        let mut found = current.degree == 1 && degree == 1;
                        while s.probes_left() > 0 && current.degree == 2 {
                            current = s.probe(j, 0)?;
                            j = s.discovered_count() - 1;
                            if current.degree == 1 {
                                found = true;
                                break;
                            }
                        }
                        if degree == 1 {
                            found = true; // an endpoint certifies itself
                        }
                        Ok(vec![lcl::OutLabel(u32::from(found)); degree])
                    },
                )
            });
            assert_eq!(t, Some(n - 2), "n = {n}");
        }
    }

    #[test]
    fn simulate_reports_probe_counters() {
        let g = gen::path(4);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(4);
        let alg = FnVolumeAlgorithm::new(
            "scan",
            |_| 2,
            |s| {
                let d = s.queried().degree;
                for p in 0..d {
                    let _ = s.probe(0, p)?;
                }
                Ok(vec![OutLabel(0); d as usize])
            },
        );
        let report =
            simulate_with(&alg, &g, &input, &ids, None, RunOptions::new()).expect("in budget");
        assert!(!report.outcome.is_degraded());
        assert_eq!(report.trace.total(Counter::Probes), 6);
        assert_eq!(report.trace.total(Counter::MaxProbes), 2);
        assert_eq!(report.trace.total(Counter::Queries), 4);
        assert_eq!(
            report.trace.total(Counter::Probes),
            report.outcome.outcome.total_probes as u64
        );
        // Per-query distribution: two endpoint queries (1 probe each),
        // two interior queries (2 probes each).
        let hist = report
            .trace
            .root()
            .histogram(Counter::Probes)
            .expect("probe histogram");
        assert_eq!(hist.count(), 4);
        assert_eq!(hist.sum(), 6);
    }

    #[test]
    fn simulate_logged_records_probe_events() {
        let g = gen::path(3);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(3);
        let alg = FnVolumeAlgorithm::new(
            "one-probe",
            |_| 1,
            |s| {
                let _ = s.probe(0, 0)?;
                Ok(vec![OutLabel(0); s.queried().degree as usize])
            },
        );
        let log = EventLog::new(64);
        let report = simulate_with(&alg, &g, &input, &ids, None, RunOptions::new().events(&log))
            .expect("in budget");
        assert_eq!(log.len(), report.outcome.outcome.total_probes);
        assert!(log
            .events()
            .iter()
            .all(|e| matches!(e, Event::Probe { port: 0, .. })));
    }

    #[test]
    fn cost_model_matches_probe_counters() {
        use lcl_obs::CostKind;
        let g = gen::path(4);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(4);
        let alg = FnVolumeAlgorithm::new(
            "scan",
            |_| 2,
            |s| {
                let d = s.queried().degree;
                for p in 0..d {
                    let _ = s.probe(0, p)?;
                }
                Ok(vec![OutLabel(0); d as usize])
            },
        );
        // Zero capacity: a pure cost tally, no stored events.
        let log = EventLog::new(0);
        let report = simulate_with(&alg, &g, &input, &ids, None, RunOptions::new().events(&log))
            .expect("in budget");
        let cost = log.cost_model();
        assert_eq!(
            cost.get(CostKind::Probe),
            report.trace.total(Counter::Probes)
        );
        assert_eq!(cost.get(CostKind::Probe), 6);
        // Probes are charged to their querying node: two endpoints at
        // 1, two interior nodes at 2, averaging 1.5.
        assert_eq!(cost.node_count(), 4);
        assert_eq!(cost.node_averaged(), Some(1.5));
    }

    #[test]
    #[should_panic(expected = "isolated")]
    fn isolated_nodes_are_rejected() {
        let g = lcl_graph::GraphBuilder::new(1).build().unwrap();
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(1);
        let alg = FnVolumeAlgorithm::new(
            "const",
            |_| 0,
            |s| Ok(vec![OutLabel(0); s.queried().degree as usize]),
        );
        let _ = run_volume(&alg, &g, &input, &ids, None);
    }
}
