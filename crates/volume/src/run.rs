//! Executing VOLUME algorithms over whole graphs.

use lcl::{HalfEdgeLabeling, InLabel, OutLabel};
use lcl_graph::Graph;
use lcl_obs::{Counter, RunReport, Span, Trace};

use lcl_local::IdAssignment;

use crate::algorithm::{ProbeSession, VolumeAlgorithm};

/// The result of answering every node's query.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VolumeRun {
    /// The produced half-edge labeling.
    pub output: HalfEdgeLabeling<OutLabel>,
    /// The maximum number of probes any single query used — the VOLUME
    /// complexity actually exercised.
    pub max_probes: usize,
    /// The total number of probes across all queries.
    pub total_probes: usize,
}

/// Runs a VOLUME algorithm by querying every node (each query gets a fresh
/// session, as in the model: queries do not share state), reporting the
/// execution trace: total and worst-case probes, plus the instance shape.
///
/// This is the instrumented entrypoint behind the facade's `Simulation`
/// trait; [`run_volume`] forwards here and discards the trace.
///
/// # Panics
///
/// Panics if the graph contains an isolated node (excluded by
/// Definition 2.9) or the algorithm exceeds its own probe budget.
pub fn simulate(
    alg: &(impl VolumeAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
    n_announced: Option<usize>,
) -> RunReport<VolumeRun> {
    let n = n_announced.unwrap_or_else(|| graph.node_count());
    let budget = alg.probe_budget(n);
    let mut span = Span::start(format!("volume/{}", alg.name()));
    let mut max_probes = 0usize;
    let mut total_probes = 0usize;
    let output = HalfEdgeLabeling::from_node_fn(graph, |v| {
        assert!(
            graph.degree(v) > 0,
            "the VOLUME model excludes isolated nodes"
        );
        let mut session = ProbeSession::new(graph, input, ids, v, budget, n);
        let labels = alg.answer(&mut session);
        assert_eq!(
            labels.len(),
            graph.degree(v) as usize,
            "algorithm {} must label each half-edge of the queried node",
            alg.name()
        );
        max_probes = max_probes.max(session.probes_used());
        total_probes += session.probes_used();
        labels
    });
    span.set(Counter::Nodes, graph.node_count() as u64);
    span.set(Counter::Edges, graph.edge_count() as u64);
    span.set(Counter::Queries, graph.node_count() as u64);
    span.set(Counter::Probes, total_probes as u64);
    span.set(Counter::MaxProbes, max_probes as u64);
    let run = VolumeRun {
        output,
        max_probes,
        total_probes,
    };
    RunReport::new(run, Trace::new(span.finish()))
}

/// Runs a VOLUME algorithm over every node, discarding the trace.
///
/// Note: superseded by [`simulate`], which additionally reports the
/// execution trace; this thin wrapper remains for source compatibility.
///
/// # Panics
///
/// As [`simulate`].
pub fn run_volume(
    alg: &(impl VolumeAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
    n_announced: Option<usize>,
) -> VolumeRun {
    simulate(alg, graph, input, ids, n_announced).outcome
}

/// Finds the minimal probe budget `T ≤ max_budget` under which the
/// algorithm family solves `problem` on `graph`, or `None`. The VOLUME
/// analogue of [`lcl_local::minimal_solving_radius`]; assumes solvability
/// is monotone in the budget (gather-style probing).
pub fn minimal_probe_budget<A, F>(
    problem: &(impl lcl::Problem + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
    max_budget: usize,
    make: F,
) -> Option<usize>
where
    A: VolumeAlgorithm,
    F: Fn(usize) -> A,
{
    let solves = |budget: usize| {
        let alg = make(budget);
        let run = run_volume(&alg, graph, input, ids, None);
        lcl::verify(problem, graph, input, &run.output).is_empty()
    };
    if solves(0) {
        return Some(0);
    }
    let mut hi = 1usize;
    while hi < max_budget && !solves(hi) {
        hi = (hi * 2).min(max_budget);
    }
    if !solves(hi) {
        return None;
    }
    let mut lo = hi / 2;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if solves(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::FnVolumeAlgorithm;
    use lcl_graph::gen;

    #[test]
    fn zero_probe_algorithm() {
        let g = gen::cycle(6);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(6);
        let alg = FnVolumeAlgorithm::new(
            "const",
            |_| 0,
            |s| vec![OutLabel(7); s.queried().degree as usize],
        );
        let run = run_volume(&alg, &g, &input, &ids, None);
        assert_eq!(run.max_probes, 0);
        assert_eq!(run.total_probes, 0);
        assert!(run.output.as_slice().iter().all(|&l| l == OutLabel(7)));
    }

    #[test]
    fn probe_counts_are_aggregated() {
        let g = gen::path(4);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(4);
        // Probe each of the queried node's ports once.
        let alg = FnVolumeAlgorithm::new(
            "scan",
            |_| 2,
            |s| {
                let d = s.queried().degree;
                for p in 0..d {
                    let _ = s.probe(0, p);
                }
                vec![OutLabel(0); d as usize]
            },
        );
        let run = run_volume(&alg, &g, &input, &ids, None);
        assert_eq!(run.max_probes, 2); // interior nodes probe twice
        assert_eq!(run.total_probes, 2 + 2 + 1 + 1);
    }

    #[test]
    fn minimal_budget_finds_walk_length() {
        // "Certify an endpoint": every node must output Yes; the
        // algorithm walks left with its budget and answers Yes iff it
        // reached a degree-1 node. The minimal budget is the distance of
        // the rightmost node to the left endpoint = n - 1.
        let problem = lcl::LclProblem::builder("all-yes", 2)
            .outputs(["No", "Yes"])
            .node_pattern(&["Yes*"])
            .edge(&["Yes", "Yes"])
            .build()
            .unwrap();
        for n in [4usize, 9, 16] {
            let g = gen::path(n);
            let input = lcl::uniform_input(&g);
            let ids = IdAssignment::sequential(n);
            let t = minimal_probe_budget(&problem, &g, &input, &ids, 2 * n, |budget| {
                FnVolumeAlgorithm::new(
                    "walk-left",
                    move |_| budget,
                    move |s| {
                        let degree = s.queried().degree as usize;
                        let mut current = s.queried().clone();
                        let mut j = 0usize;
                        let mut found = current.degree == 1 && degree == 1;
                        while s.probes_left() > 0 && current.degree == 2 {
                            current = s.probe(j, 0);
                            j = s.discovered_count() - 1;
                            if current.degree == 1 {
                                found = true;
                                break;
                            }
                        }
                        if degree == 1 {
                            found = true; // an endpoint certifies itself
                        }
                        vec![lcl::OutLabel(u32::from(found)); degree]
                    },
                )
            });
            assert_eq!(t, Some(n - 2), "n = {n}");
        }
    }

    #[test]
    fn simulate_reports_probe_counters() {
        let g = gen::path(4);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(4);
        let alg = FnVolumeAlgorithm::new(
            "scan",
            |_| 2,
            |s| {
                let d = s.queried().degree;
                for p in 0..d {
                    let _ = s.probe(0, p);
                }
                vec![OutLabel(0); d as usize]
            },
        );
        let report = simulate(&alg, &g, &input, &ids, None);
        assert_eq!(report.trace.total(Counter::Probes), 6);
        assert_eq!(report.trace.total(Counter::MaxProbes), 2);
        assert_eq!(report.trace.total(Counter::Queries), 4);
        assert_eq!(
            report.trace.total(Counter::Probes),
            report.outcome.total_probes as u64
        );
    }

    #[test]
    #[should_panic(expected = "isolated")]
    fn isolated_nodes_are_rejected() {
        let g = lcl_graph::GraphBuilder::new(1).build().unwrap();
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(1);
        let alg = FnVolumeAlgorithm::new(
            "const",
            |_| 0,
            |s| vec![OutLabel(0); s.queried().degree as usize],
        );
        let _ = run_volume(&alg, &g, &input, &ids, None);
    }
}
