//! The adaptive probe interface of the VOLUME model (Definition 2.9).

use lcl::{HalfEdgeLabeling, InLabel, OutLabel};
use lcl_graph::{Graph, NodeId};

use lcl_local::IdAssignment;
use lcl_obs::{Event, EventLog};

/// The local information of one node — the paper's `Tuples_S` entry
/// `(id, deg, in)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NodeInfo {
    /// The node's identifier.
    pub id: u64,
    /// The node's degree.
    pub degree: u8,
    /// Input labels of the node's half-edges, in port order.
    pub inputs: Vec<InLabel>,
}

/// A rejected probe: the typed failure modes of [`ProbeSession::probe`].
///
/// A buggy VOLUME algorithm used to tear down the simulator thread with
/// a panic; now it yields a reportable error that the facade surfaces
/// through `LandscapeError`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeError {
    /// The probe budget `T(n)` was already spent.
    BudgetExhausted {
        /// The budget the session was opened with.
        budget: usize,
    },
    /// The probe targeted a node index not yet in the transcript.
    TargetNotDiscovered {
        /// The requested discovery index.
        j: usize,
        /// Number of nodes discovered so far.
        discovered: usize,
    },
    /// The probe named a port the target node does not have.
    PortOutOfRange {
        /// The discovery index of the target node.
        j: usize,
        /// The requested port.
        port: u8,
        /// The target node's actual degree.
        degree: u8,
    },
}

impl std::fmt::Display for ProbeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProbeError::BudgetExhausted { budget } => {
                write!(f, "probe budget {budget} exhausted")
            }
            ProbeError::TargetNotDiscovered { j, discovered } => {
                write!(
                    f,
                    "probe target {j} not discovered (transcript has {discovered} nodes)"
                )
            }
            ProbeError::PortOutOfRange { j, port, degree } => {
                write!(
                    f,
                    "port {port} out of range at discovered node {j} (degree {degree})"
                )
            }
        }
    }
}

impl std::error::Error for ProbeError {}

/// One query's probe session: starts at the queried node `v` with
/// transcript `t^{(0)} = (t_v)` and grows by one discovered node per probe.
///
/// The session enforces the probe budget; exceeding it — or probing an
/// undiscovered node or a nonexistent port — returns a [`ProbeError`].
#[derive(Debug)]
pub struct ProbeSession<'a> {
    graph: &'a Graph,
    input: &'a HalfEdgeLabeling<InLabel>,
    ids: &'a IdAssignment,
    /// Discovered nodes, in discovery order; index 0 is the queried node.
    discovered: Vec<NodeId>,
    infos: Vec<NodeInfo>,
    budget: usize,
    probes_used: usize,
    /// Announced number of nodes.
    n: usize,
    log: Option<&'a EventLog>,
    /// Fault injection: the `nth` successful probe answers with a lie
    /// derived from `salt` (the VOLUME adversary corrupting a reply).
    lie: Option<(u64, u64)>,
}

impl<'a> ProbeSession<'a> {
    pub(crate) fn new(
        graph: &'a Graph,
        input: &'a HalfEdgeLabeling<InLabel>,
        ids: &'a IdAssignment,
        start: NodeId,
        budget: usize,
        n: usize,
        log: Option<&'a EventLog>,
    ) -> Self {
        let mut session = Self {
            graph,
            input,
            ids,
            discovered: Vec::with_capacity(budget + 1),
            infos: Vec::with_capacity(budget + 1),
            budget,
            probes_used: 0,
            n,
            log,
            lie: None,
        };
        session.push(start);
        session
    }

    /// Arms a probe-answer fault: the `nth` successful probe of this
    /// session returns an identifier perturbed by a mask derived from
    /// `salt`. The lie lands in the transcript too, so later
    /// [`info`](Self::info) reads are consistent with the answer.
    pub(crate) fn set_probe_lie(&mut self, nth: u64, salt: u64) {
        self.lie = Some((nth, salt));
    }

    /// Fault injection: perturbs the queried node's own identifier (a
    /// corrupted `t_v`), as if the adversary rewrote the query's view.
    pub(crate) fn corrupt_queried(&mut self, salt: u64) {
        self.infos[0].id ^= lcl_faults::plan::perturb(salt, 0);
    }

    fn push(&mut self, v: NodeId) -> &NodeInfo {
        self.discovered.push(v);
        self.infos.push(NodeInfo {
            id: self.ids.id(v),
            degree: self.graph.degree(v),
            inputs: self
                .graph
                .half_edges_of(v)
                .map(|h| self.input.get(h))
                .collect(),
        });
        self.infos
            .last()
            .expect("why: push() appended this info one line above")
    }

    /// The announced number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The queried node's information (`t_v`; free of charge).
    pub fn queried(&self) -> &NodeInfo {
        &self.infos[0]
    }

    /// The information of the `j`-th discovered node (0 = queried node).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn info(&self, j: usize) -> &NodeInfo {
        &self.infos[j]
    }

    /// Number of nodes discovered so far (including the queried node).
    pub fn discovered_count(&self) -> usize {
        self.infos.len()
    }

    /// Number of probes spent so far.
    pub fn probes_used(&self) -> usize {
        self.probes_used
    }

    /// Remaining probe budget.
    pub fn probes_left(&self) -> usize {
        self.budget - self.probes_used
    }

    /// Performs the adaptive probe `(j, port)`: reveals the node behind
    /// port `port` of the `j`-th discovered node, appends it to the
    /// transcript, and returns its information.
    ///
    /// # Errors
    ///
    /// [`ProbeError::BudgetExhausted`] once `probe_budget(n)` probes are
    /// spent, [`ProbeError::TargetNotDiscovered`] if `j` is not in the
    /// transcript, [`ProbeError::PortOutOfRange`] if `port` exceeds the
    /// degree of node `j` (the paper assumes algorithms only probe
    /// existing ports; a real algorithm can check `degree` first).
    pub fn probe(&mut self, j: usize, port: u8) -> Result<NodeInfo, ProbeError> {
        if self.probes_used >= self.budget {
            return Err(ProbeError::BudgetExhausted {
                budget: self.budget,
            });
        }
        if j >= self.discovered.len() {
            return Err(ProbeError::TargetNotDiscovered {
                j,
                discovered: self.discovered.len(),
            });
        }
        let v = self.discovered[j];
        if port >= self.graph.degree(v) {
            return Err(ProbeError::PortOutOfRange {
                j,
                port,
                degree: self.graph.degree(v),
            });
        }
        if let Some(log) = self.log {
            log.record(Event::Probe {
                query: self.infos[0].id,
                j: j as u64,
                port,
            });
        }
        self.probes_used += 1;
        let h = self.graph.half_edge(v, port);
        let w = self.graph.neighbor(h);
        let nth = (self.probes_used - 1) as u64;
        self.push(w);
        if let Some((lie_nth, salt)) = self.lie {
            if nth == lie_nth {
                let info = self
                    .infos
                    .last_mut()
                    .expect("why: push() appended this info one line above");
                info.id ^= lcl_faults::plan::perturb(salt, nth);
                if let Some(log) = self.log {
                    log.record(Event::Fault {
                        node: w.index() as u64,
                        round: nth,
                        fault: "probe-lie",
                    });
                }
            }
        }
        Ok(self
            .infos
            .last()
            .expect("why: push() appended this info one line above")
            .clone())
    }

    /// Like [`probe`](Self::probe), but also reveals through which port of
    /// the discovered node the probed edge arrives (the twin port) —
    /// standard in VOLUME algorithms that walk along paths.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`probe`](Self::probe).
    pub fn probe_with_arrival(&mut self, j: usize, port: u8) -> Result<(NodeInfo, u8), ProbeError> {
        if j >= self.discovered.len() {
            return Err(ProbeError::TargetNotDiscovered {
                j,
                discovered: self.discovered.len(),
            });
        }
        let v = self.discovered[j];
        if port >= self.graph.degree(v) {
            return Err(ProbeError::PortOutOfRange {
                j,
                port,
                degree: self.graph.degree(v),
            });
        }
        let h = self.graph.half_edge(v, port);
        let arrival = self.graph.port_of(self.graph.twin(h));
        Ok((self.probe(j, port)?, arrival))
    }
}

/// A VOLUME algorithm: answers the query for one node's half-edge outputs
/// using at most `probe_budget(n)` adaptive probes.
pub trait VolumeAlgorithm {
    /// The probe budget `T(n)`.
    fn probe_budget(&self, n: usize) -> usize;

    /// Answers the query: output labels for the queried node's half-edges,
    /// in port order.
    ///
    /// # Errors
    ///
    /// Propagates any [`ProbeError`] from the session — the simulator
    /// reports it instead of panicking.
    fn answer(&self, session: &mut ProbeSession<'_>) -> Result<Vec<OutLabel>, ProbeError>;

    /// A short name for diagnostics.
    fn name(&self) -> &str {
        "anonymous"
    }
}

/// A [`VolumeAlgorithm`] built from closures.
pub struct FnVolumeAlgorithm<B, F> {
    name: String,
    budget: B,
    answer: F,
}

impl<B, F> FnVolumeAlgorithm<B, F>
where
    B: Fn(usize) -> usize,
    F: Fn(&mut ProbeSession<'_>) -> Result<Vec<OutLabel>, ProbeError>,
{
    /// Creates an algorithm from a budget function and an answer function.
    pub fn new(name: &str, budget: B, answer: F) -> Self {
        Self {
            name: name.to_string(),
            budget,
            answer,
        }
    }
}

impl<B, F> VolumeAlgorithm for FnVolumeAlgorithm<B, F>
where
    B: Fn(usize) -> usize,
    F: Fn(&mut ProbeSession<'_>) -> Result<Vec<OutLabel>, ProbeError>,
{
    fn probe_budget(&self, n: usize) -> usize {
        (self.budget)(n)
    }

    fn answer(&self, session: &mut ProbeSession<'_>) -> Result<Vec<OutLabel>, ProbeError> {
        (self.answer)(session)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl<B, F> std::fmt::Debug for FnVolumeAlgorithm<B, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnVolumeAlgorithm")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::gen;

    #[test]
    fn session_reveals_neighbors() {
        let g = gen::path(4);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(4);
        let mut s = ProbeSession::new(&g, &input, &ids, NodeId(1), 3, 4, None);
        assert_eq!(s.queried().id, 1);
        assert_eq!(s.queried().degree, 2);
        let left = s.probe(0, 0).expect("in budget");
        assert_eq!(left.id, 0);
        let right = s.probe(0, 1).expect("in budget");
        assert_eq!(right.id, 2);
        assert_eq!(s.probes_used(), 2);
        assert_eq!(s.discovered_count(), 3);
    }

    #[test]
    fn probe_with_arrival_reports_twin_port() {
        let g = gen::cycle(5);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(5);
        let mut s = ProbeSession::new(&g, &input, &ids, NodeId(0), 5, 5, None);
        // Port 1 = successor; the edge arrives at the successor's port 0.
        let (info, arrival) = s.probe_with_arrival(0, 1).expect("in budget");
        assert_eq!(info.id, 1);
        assert_eq!(arrival, 0);
    }

    #[test]
    fn budget_is_enforced() {
        let g = gen::path(4);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(4);
        let mut s = ProbeSession::new(&g, &input, &ids, NodeId(1), 1, 4, None);
        assert!(s.probe(0, 0).is_ok());
        assert_eq!(
            s.probe(0, 1),
            Err(ProbeError::BudgetExhausted { budget: 1 })
        );
    }

    #[test]
    fn undiscovered_targets_are_rejected() {
        let g = gen::path(4);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(4);
        let mut s = ProbeSession::new(&g, &input, &ids, NodeId(1), 5, 4, None);
        assert_eq!(
            s.probe(3, 0),
            Err(ProbeError::TargetNotDiscovered {
                j: 3,
                discovered: 1
            })
        );
        assert_eq!(
            s.probe_with_arrival(3, 0),
            Err(ProbeError::TargetNotDiscovered {
                j: 3,
                discovered: 1
            })
        );
    }

    #[test]
    fn nonexistent_ports_are_rejected() {
        let g = gen::path(4);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(4);
        // Node 0 is a path endpoint: degree 1, so port 1 does not exist.
        let mut s = ProbeSession::new(&g, &input, &ids, NodeId(0), 5, 4, None);
        assert_eq!(
            s.probe(0, 1),
            Err(ProbeError::PortOutOfRange {
                j: 0,
                port: 1,
                degree: 1
            })
        );
        // A failed probe costs nothing.
        assert_eq!(s.probes_used(), 0);
    }

    #[test]
    fn probes_are_logged() {
        let g = gen::path(4);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(4);
        let log = EventLog::new(16);
        let mut s = ProbeSession::new(&g, &input, &ids, NodeId(1), 3, 4, Some(&log));
        let _ = s.probe(0, 0).expect("in budget");
        assert_eq!(
            log.events(),
            vec![Event::Probe {
                query: 1,
                j: 0,
                port: 0
            }]
        );
    }
}
