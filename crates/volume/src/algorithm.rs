//! The adaptive probe interface of the VOLUME model (Definition 2.9).

use lcl::{HalfEdgeLabeling, InLabel, OutLabel};
use lcl_graph::{Graph, NodeId};

use lcl_local::IdAssignment;

/// The local information of one node — the paper's `Tuples_S` entry
/// `(id, deg, in)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NodeInfo {
    /// The node's identifier.
    pub id: u64,
    /// The node's degree.
    pub degree: u8,
    /// Input labels of the node's half-edges, in port order.
    pub inputs: Vec<InLabel>,
}

/// One query's probe session: starts at the queried node `v` with
/// transcript `t^{(0)} = (t_v)` and grows by one discovered node per probe.
///
/// The session enforces the probe budget; exceeding it is a bug in the
/// algorithm and panics.
#[derive(Debug)]
pub struct ProbeSession<'a> {
    graph: &'a Graph,
    input: &'a HalfEdgeLabeling<InLabel>,
    ids: &'a IdAssignment,
    /// Discovered nodes, in discovery order; index 0 is the queried node.
    discovered: Vec<NodeId>,
    infos: Vec<NodeInfo>,
    budget: usize,
    probes_used: usize,
    /// Announced number of nodes.
    n: usize,
}

impl<'a> ProbeSession<'a> {
    pub(crate) fn new(
        graph: &'a Graph,
        input: &'a HalfEdgeLabeling<InLabel>,
        ids: &'a IdAssignment,
        start: NodeId,
        budget: usize,
        n: usize,
    ) -> Self {
        let mut session = Self {
            graph,
            input,
            ids,
            discovered: Vec::with_capacity(budget + 1),
            infos: Vec::with_capacity(budget + 1),
            budget,
            probes_used: 0,
            n,
        };
        session.push(start);
        session
    }

    fn push(&mut self, v: NodeId) -> &NodeInfo {
        self.discovered.push(v);
        self.infos.push(NodeInfo {
            id: self.ids.id(v),
            degree: self.graph.degree(v),
            inputs: self
                .graph
                .half_edges_of(v)
                .map(|h| self.input.get(h))
                .collect(),
        });
        self.infos.last().expect("just pushed")
    }

    /// The announced number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The queried node's information (`t_v`; free of charge).
    pub fn queried(&self) -> &NodeInfo {
        &self.infos[0]
    }

    /// The information of the `j`-th discovered node (0 = queried node).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn info(&self, j: usize) -> &NodeInfo {
        &self.infos[j]
    }

    /// Number of nodes discovered so far (including the queried node).
    pub fn discovered_count(&self) -> usize {
        self.infos.len()
    }

    /// Number of probes spent so far.
    pub fn probes_used(&self) -> usize {
        self.probes_used
    }

    /// Remaining probe budget.
    pub fn probes_left(&self) -> usize {
        self.budget - self.probes_used
    }

    /// Performs the adaptive probe `(j, port)`: reveals the node behind
    /// port `port` of the `j`-th discovered node, appends it to the
    /// transcript, and returns its information.
    ///
    /// # Panics
    ///
    /// Panics if the probe budget is exhausted, `j` is out of range, or
    /// `port` exceeds the degree of node `j` (the paper assumes algorithms
    /// only probe existing ports; a real algorithm can check `degree`
    /// first).
    pub fn probe(&mut self, j: usize, port: u8) -> NodeInfo {
        assert!(
            self.probes_used < self.budget,
            "probe budget {} exhausted",
            self.budget
        );
        assert!(j < self.discovered.len(), "probe target {j} not discovered");
        let v = self.discovered[j];
        assert!(
            port < self.graph.degree(v),
            "port {port} out of range at discovered node {j}"
        );
        self.probes_used += 1;
        let h = self.graph.half_edge(v, port);
        let w = self.graph.neighbor(h);
        self.push(w).clone()
    }

    /// Like [`probe`](Self::probe), but also reveals through which port of
    /// the discovered node the probed edge arrives (the twin port) —
    /// standard in VOLUME algorithms that walk along paths.
    pub fn probe_with_arrival(&mut self, j: usize, port: u8) -> (NodeInfo, u8) {
        let v = self.discovered[j];
        let h = self.graph.half_edge(v, port);
        let arrival = self.graph.port_of(self.graph.twin(h));
        (self.probe(j, port), arrival)
    }
}

/// A VOLUME algorithm: answers the query for one node's half-edge outputs
/// using at most `probe_budget(n)` adaptive probes.
pub trait VolumeAlgorithm {
    /// The probe budget `T(n)`.
    fn probe_budget(&self, n: usize) -> usize;

    /// Answers the query: output labels for the queried node's half-edges,
    /// in port order.
    fn answer(&self, session: &mut ProbeSession<'_>) -> Vec<OutLabel>;

    /// A short name for diagnostics.
    fn name(&self) -> &str {
        "anonymous"
    }
}

/// A [`VolumeAlgorithm`] built from closures.
pub struct FnVolumeAlgorithm<B, F> {
    name: String,
    budget: B,
    answer: F,
}

impl<B, F> FnVolumeAlgorithm<B, F>
where
    B: Fn(usize) -> usize,
    F: Fn(&mut ProbeSession<'_>) -> Vec<OutLabel>,
{
    /// Creates an algorithm from a budget function and an answer function.
    pub fn new(name: &str, budget: B, answer: F) -> Self {
        Self {
            name: name.to_string(),
            budget,
            answer,
        }
    }
}

impl<B, F> VolumeAlgorithm for FnVolumeAlgorithm<B, F>
where
    B: Fn(usize) -> usize,
    F: Fn(&mut ProbeSession<'_>) -> Vec<OutLabel>,
{
    fn probe_budget(&self, n: usize) -> usize {
        (self.budget)(n)
    }

    fn answer(&self, session: &mut ProbeSession<'_>) -> Vec<OutLabel> {
        (self.answer)(session)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl<B, F> std::fmt::Debug for FnVolumeAlgorithm<B, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnVolumeAlgorithm")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::gen;

    #[test]
    fn session_reveals_neighbors() {
        let g = gen::path(4);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(4);
        let mut s = ProbeSession::new(&g, &input, &ids, NodeId(1), 3, 4);
        assert_eq!(s.queried().id, 1);
        assert_eq!(s.queried().degree, 2);
        let left = s.probe(0, 0);
        assert_eq!(left.id, 0);
        let right = s.probe(0, 1);
        assert_eq!(right.id, 2);
        assert_eq!(s.probes_used(), 2);
        assert_eq!(s.discovered_count(), 3);
    }

    #[test]
    fn probe_with_arrival_reports_twin_port() {
        let g = gen::cycle(5);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(5);
        let mut s = ProbeSession::new(&g, &input, &ids, NodeId(0), 5, 5);
        // Port 1 = successor; the edge arrives at the successor's port 0.
        let (info, arrival) = s.probe_with_arrival(0, 1);
        assert_eq!(info.id, 1);
        assert_eq!(arrival, 0);
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn budget_is_enforced() {
        let g = gen::path(4);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(4);
        let mut s = ProbeSession::new(&g, &input, &ids, NodeId(1), 1, 4);
        let _ = s.probe(0, 0);
        let _ = s.probe(0, 1); // over budget
    }

    #[test]
    #[should_panic(expected = "not discovered")]
    fn undiscovered_targets_are_rejected() {
        let g = gen::path(4);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(4);
        let mut s = ProbeSession::new(&g, &input, &ids, NodeId(1), 5, 4);
        let _ = s.probe(3, 0);
    }
}
