//! The LCA (local computation algorithms) model.
//!
//! An LCA differs from a VOLUME algorithm in two ways (Section 2.2 of the
//! paper): identifiers are exactly `{1, ..., n}`, and *far probes* —
//! looking up an arbitrary identifier — are allowed. Theorem 2.12 (Göös,
//! Hirvonen, Levi, Medina, Suomela) shows far probes do not help below
//! `o(√log n)` probes, which is why the paper's VOLUME gap transfers to
//! LCAs; [`run_lca`] makes the model concrete so the suite can demonstrate
//! the transfer.

use lcl::{HalfEdgeLabeling, InLabel, OutLabel};
use lcl_graph::{Graph, NodeId};
use lcl_obs::{Counter, EventLog, RunReport, Span, Trace};

use lcl_local::IdAssignment;

use crate::algorithm::{NodeInfo, ProbeError, ProbeSession, VolumeAlgorithm};

/// A probe session extended with far probes (identifier lookup).
#[derive(Debug)]
pub struct LcaSession<'a, 'b> {
    inner: &'b mut ProbeSession<'a>,
    graph: &'a Graph,
    input: &'a HalfEdgeLabeling<InLabel>,
    ids: &'a IdAssignment,
    /// Far probes performed (counted separately, per Theorem 2.12's
    /// distinction).
    far_probes: usize,
}

impl<'a, 'b> LcaSession<'a, 'b> {
    pub(crate) fn new(
        inner: &'b mut ProbeSession<'a>,
        graph: &'a Graph,
        input: &'a HalfEdgeLabeling<InLabel>,
        ids: &'a IdAssignment,
    ) -> Self {
        Self {
            inner,
            graph,
            input,
            ids,
            far_probes: 0,
        }
    }

    /// The underlying near-probe session.
    pub fn near(&mut self) -> &mut ProbeSession<'a> {
        self.inner
    }

    /// Number of far probes performed.
    pub fn far_probes_used(&self) -> usize {
        self.far_probes
    }

    /// A far probe: looks up the node with identifier `id` (LCA ids are
    /// `1..=n`), returning its local information, or `None` if no node has
    /// that identifier.
    pub fn far_probe(&mut self, id: u64) -> Option<NodeInfo> {
        self.far_probes += 1;
        let v = self.graph.nodes().find(|&v| self.ids.id(v) == id)?;
        Some(NodeInfo {
            id,
            degree: self.graph.degree(v),
            inputs: self
                .graph
                .half_edges_of(v)
                .map(|h| self.input.get(h))
                .collect(),
        })
    }
}

/// An LCA: like a VOLUME algorithm, with far probes available.
pub trait LcaAlgorithm {
    /// The probe budget `T(n)` (near probes).
    fn probe_budget(&self, n: usize) -> usize;

    /// Answers the query for the queried node's half-edges.
    ///
    /// # Errors
    ///
    /// Propagates any [`ProbeError`] from the near-probe session.
    fn answer(&self, session: &mut LcaSession<'_, '_>) -> Result<Vec<OutLabel>, ProbeError>;

    /// A short name for diagnostics.
    fn name(&self) -> &str {
        "anonymous"
    }
}

/// Runs an LCA over every node of the graph, reporting the execution
/// trace: total and worst-case probes, the far probes counted separately
/// (Theorem 2.12's distinction), a per-query probe histogram, and the
/// instance shape. With `log` set, near probes are recorded as
/// [`lcl_obs::Event::Probe`]s.
///
/// # Errors
///
/// Returns the first [`ProbeError`] any query runs into.
///
/// # Panics
///
/// Panics unless `ids` is a permutation of `0..n` shifted by one
/// (`1..=n`), which is the LCA model's identifier promise.
#[deprecated(
    since = "0.1.0",
    note = "use `simulate_lca_with(..., RunOptions::new().events(log))`"
)]
pub fn simulate_lca_logged(
    alg: &(impl LcaAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
    log: Option<&EventLog>,
) -> Result<RunReport<crate::run::VolumeRun>, ProbeError> {
    simulate_lca_impl(alg, graph, input, ids, log)
}

/// Runs an LCA under [`RunOptions`](lcl_faults::RunOptions): optional
/// event capture, optional fault plan. With a fault plan the run is the
/// degrading executor of [`crate::faulted`] (per-query degradation, the
/// `Err` leg never taken); without one a [`ProbeError`] surfaces typed
/// and a clean run returns
/// [`Degraded::clean`](lcl_faults::Degraded::clean). The announced node
/// count is fixed by the LCA promise; a `RunOptions` budget has no
/// probe dimension and is ignored here.
///
/// # Errors
///
/// As [`simulate_lca_logged`], on the plan-free path only.
///
/// # Panics
///
/// As [`simulate_lca_logged`]: `ids` must be exactly `1..=n`.
pub fn simulate_lca_with(
    alg: &(impl LcaAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
    opts: lcl_faults::RunOptions<'_>,
) -> Result<RunReport<lcl_faults::Degraded<crate::run::VolumeRun>>, ProbeError> {
    match opts.fault_plan() {
        Some(plan) => Ok(crate::faulted::simulate_lca_faulted_impl(
            alg,
            graph,
            input,
            ids,
            plan,
            opts.event_log(),
        )),
        None => Ok(simulate_lca_impl(alg, graph, input, ids, opts.event_log())?
            .map(lcl_faults::Degraded::clean)),
    }
}

pub(crate) fn simulate_lca_impl(
    alg: &(impl LcaAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
    log: Option<&EventLog>,
) -> Result<RunReport<crate::run::VolumeRun>, ProbeError> {
    let n = graph.node_count();
    let mut sorted: Vec<u64> = ids.iter().collect();
    sorted.sort_unstable();
    assert!(
        sorted == (1..=n as u64).collect::<Vec<_>>(),
        "LCA identifiers must be exactly 1..=n"
    );
    let budget = alg.probe_budget(n);
    let mut span = Span::start(format!("lca/{}", alg.name()));
    let mut max_probes = 0usize;
    let mut total_probes = 0usize;
    let mut far_probes = 0usize;
    let mut failure: Option<ProbeError> = None;
    let output = HalfEdgeLabeling::from_node_fn(graph, |v: NodeId| {
        if failure.is_some() {
            return vec![OutLabel(0); graph.degree(v) as usize];
        }
        let mut inner = ProbeSession::new(graph, input, ids, v, budget, n, log);
        let mut session = LcaSession::new(&mut inner, graph, input, ids);
        match alg.answer(&mut session) {
            Ok(labels) => {
                assert_eq!(
                    labels.len(),
                    graph.degree(v) as usize,
                    "algorithm {} must label each half-edge of the queried node",
                    alg.name()
                );
                let far = session.far_probes_used();
                let used = far + inner.probes_used();
                far_probes += far;
                max_probes = max_probes.max(used);
                total_probes += used;
                span.observe(Counter::Probes, used as u64);
                labels
            }
            Err(e) => {
                failure = Some(e);
                vec![OutLabel(0); graph.degree(v) as usize]
            }
        }
    });
    if let Some(e) = failure {
        return Err(e);
    }
    span.set(Counter::Nodes, graph.node_count() as u64);
    span.set(Counter::Edges, graph.edge_count() as u64);
    span.set(Counter::Queries, graph.node_count() as u64);
    span.set(Counter::Probes, total_probes as u64);
    span.set(Counter::MaxProbes, max_probes as u64);
    span.set(Counter::FarProbes, far_probes as u64);
    let run = crate::run::VolumeRun {
        output,
        max_probes,
        total_probes,
    };
    Ok(RunReport::new(run, Trace::new(span.finish())))
}

/// [`simulate_lca_logged`] without an event log — the instrumented
/// entrypoint behind the facade's `Simulation` trait; [`run_lca`]
/// forwards here and discards the trace.
///
/// # Errors
///
/// As [`simulate_lca_logged`].
#[deprecated(
    since = "0.1.0",
    note = "use `simulate_lca_with(..., RunOptions::new())`"
)]
pub fn simulate_lca(
    alg: &(impl LcaAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
) -> Result<RunReport<crate::run::VolumeRun>, ProbeError> {
    simulate_lca_impl(alg, graph, input, ids, None)
}

/// Runs an LCA over every node of the graph, discarding the trace.
///
/// Note: superseded by [`simulate_lca`], which additionally reports the
/// execution trace; this thin wrapper remains for source compatibility.
///
/// # Errors
///
/// As [`simulate_lca_logged`].
pub fn run_lca(
    alg: &(impl LcaAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
) -> Result<crate::run::VolumeRun, ProbeError> {
    Ok(simulate_lca_impl(alg, graph, input, ids, None)?.outcome)
}

/// Adapts a VOLUME algorithm into an LCA that never uses far probes — the
/// direction of Theorem 2.12 that is immediate.
#[derive(Debug)]
pub struct VolumeAsLca<A>(pub A);

impl<A: VolumeAlgorithm> LcaAlgorithm for VolumeAsLca<A> {
    fn probe_budget(&self, n: usize) -> usize {
        self.0.probe_budget(n)
    }

    fn answer(&self, session: &mut LcaSession<'_, '_>) -> Result<Vec<OutLabel>, ProbeError> {
        self.0.answer(session.near())
    }

    fn name(&self) -> &str {
        self.0.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::FnVolumeAlgorithm;
    use lcl_graph::gen;

    fn lca_ids(n: usize) -> IdAssignment {
        IdAssignment::from_vec((1..=n as u64).collect())
    }

    #[test]
    fn far_probe_finds_nodes_by_id() {
        let g = gen::path(5);
        let input = lcl::uniform_input(&g);
        let ids = lca_ids(5);
        struct FarDegree;
        impl LcaAlgorithm for FarDegree {
            fn probe_budget(&self, _n: usize) -> usize {
                0
            }
            fn answer(&self, s: &mut LcaSession<'_, '_>) -> Result<Vec<OutLabel>, ProbeError> {
                // Look up node with id 1 and output its degree.
                let info = s.far_probe(1).expect("id 1 exists");
                let d = s.near().queried().degree as usize;
                Ok(vec![OutLabel(u32::from(info.degree)); d])
            }
        }
        let run = run_lca(&FarDegree, &g, &input, &ids).expect("far probes only");
        // Node with id 1 is node 0, an endpoint of degree 1.
        assert!(run.output.as_slice().iter().all(|&l| l == OutLabel(1)));
        assert_eq!(run.max_probes, 1); // the far probe is counted
    }

    #[test]
    fn missing_id_returns_none() {
        let g = gen::path(3);
        let input = lcl::uniform_input(&g);
        let ids = lca_ids(3);
        struct Missing;
        impl LcaAlgorithm for Missing {
            fn probe_budget(&self, _n: usize) -> usize {
                0
            }
            fn answer(&self, s: &mut LcaSession<'_, '_>) -> Result<Vec<OutLabel>, ProbeError> {
                let d = s.near().queried().degree as usize;
                Ok(vec![OutLabel(u32::from(s.far_probe(99).is_none())); d])
            }
        }
        let run = run_lca(&Missing, &g, &input, &ids).expect("far probes only");
        assert!(run.output.as_slice().iter().all(|&l| l == OutLabel(1)));
    }

    #[test]
    fn simulate_lca_counts_far_probes_separately() {
        let g = gen::path(5);
        let input = lcl::uniform_input(&g);
        let ids = lca_ids(5);
        struct FarDegree;
        impl LcaAlgorithm for FarDegree {
            fn probe_budget(&self, _n: usize) -> usize {
                0
            }
            fn answer(&self, s: &mut LcaSession<'_, '_>) -> Result<Vec<OutLabel>, ProbeError> {
                let info = s.far_probe(1).expect("id 1 exists");
                let d = s.near().queried().degree as usize;
                Ok(vec![OutLabel(u32::from(info.degree)); d])
            }
        }
        let report =
            simulate_lca_impl(&FarDegree, &g, &input, &ids, None).expect("far probes only");
        assert_eq!(report.trace.total(Counter::FarProbes), 5);
        assert_eq!(report.trace.total(Counter::Probes), 5);
        assert_eq!(report.trace.total(Counter::MaxProbes), 1);
    }

    #[test]
    fn cost_model_counts_near_probes() {
        use lcl_faults::RunOptions;
        use lcl_obs::{CostKind, EventLog};
        let g = gen::path(4);
        let input = lcl::uniform_input(&g);
        let ids = lca_ids(4);
        // One near probe per query, via the VOLUME embedding.
        let alg = VolumeAsLca(FnVolumeAlgorithm::new(
            "one-probe",
            |_| 1,
            |s| {
                let _ = s.probe(0, 0)?;
                Ok(vec![OutLabel(0); s.queried().degree as usize])
            },
        ));
        let log = EventLog::new(0);
        let report = simulate_lca_with(&alg, &g, &input, &ids, RunOptions::new().events(&log))
            .expect("in budget");
        let cost = log.cost_model();
        assert_eq!(
            cost.get(CostKind::Probe),
            report.trace.total(Counter::Probes)
        );
        assert_eq!(cost.get(CostKind::Probe), 4);
        assert_eq!(cost.node_averaged(), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "1..=n")]
    fn non_lca_ids_are_rejected() {
        let g = gen::path(3);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::from_vec(vec![0, 5, 9]);
        let alg = VolumeAsLca(FnVolumeAlgorithm::new(
            "const",
            |_| 0,
            |s| Ok(vec![OutLabel(0); s.queried().degree as usize]),
        ));
        let _ = run_lca(&alg, &g, &input, &ids);
    }

    #[test]
    fn probe_errors_surface_through_lca_runs() {
        let g = gen::path(3);
        let input = lcl::uniform_input(&g);
        let ids = lca_ids(3);
        let alg = VolumeAsLca(FnVolumeAlgorithm::new(
            "undiscovered",
            |_| 4,
            |s| {
                let _ = s.probe(7, 0)?;
                Ok(vec![OutLabel(0); s.queried().degree as usize])
            },
        ));
        assert_eq!(
            run_lca(&alg, &g, &input, &ids),
            Err(ProbeError::TargetNotDiscovered {
                j: 7,
                discovered: 1
            })
        );
    }

    #[test]
    fn volume_as_lca_matches_volume_run() {
        let g = gen::cycle(6);
        let input = lcl::uniform_input(&g);
        let ids = lca_ids(6);
        let alg = FnVolumeAlgorithm::new(
            "first-neighbor",
            |_| 1,
            |s| {
                let d = s.queried().degree as usize;
                let n0 = s.probe(0, 0)?;
                Ok(vec![OutLabel((n0.id % 2) as u32); d])
            },
        );
        let volume_run = crate::run::run_volume(&alg, &g, &input, &ids, None).expect("in budget");
        let lca_run = run_lca(&VolumeAsLca(alg), &g, &input, &ids).expect("in budget");
        assert_eq!(volume_run.output, lca_run.output);
        assert_eq!(volume_run.max_probes, lca_run.max_probes);
    }
}
