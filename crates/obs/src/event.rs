//! Event-sourced execution logs.
//!
//! A [`Trace`](crate::Trace) aggregates; an [`EventLog`] remembers the
//! *sequence*. Simulators emit typed [`Event`]s — round boundaries,
//! individual probes, view materializations, memo traffic, finished
//! round-elimination levels — into a bounded, thread-safe ring buffer.
//!
//! Logging is strictly opt-in: every instrumented entrypoint takes an
//! `Option<&EventLog>` (or an `Arc<EventLog>` setter) and the default is
//! `None`, so the uninstrumented hot path pays a single branch. A
//! sampling knob (`with_sampling`) thins high-frequency streams such as
//! memo lookups without losing the totals: `seen()` always counts every
//! emission, sampled or not.
//!
//! Events never participate in [`Trace::fingerprint`](crate::Trace::fingerprint):
//! under parallel execution their interleaving is scheduling-dependent,
//! so they are a debugging/visualization stream, not a determinism
//! oracle. The order-*independent* summary of the stream — the
//! [`CostModel`] each log accumulates before its
//! sampling and capacity filters — is deterministic, and is exposed via
//! [`EventLog::cost_model`].

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::cost::CostModel;

/// One thing that happened during a simulation, at event granularity.
///
/// Variants mirror the instrumented layers: the LOCAL sync executor
/// (rounds), the VOLUME/LCA probe session (probes), the LOCAL and
/// PROD-LOCAL view builders (view materializations), and the RE tower
/// (memo lookups, completed levels).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A synchronous round is about to run its send phase.
    RoundStart {
        /// Zero-based round index.
        round: u64,
    },
    /// A synchronous round finished delivering.
    RoundEnd {
        /// Zero-based round index.
        round: u64,
        /// Messages delivered during this round.
        messages: u64,
    },
    /// A probe issued through a VOLUME/LCA `ProbeSession`.
    Probe {
        /// Global id of the node answering the query.
        query: u64,
        /// Index of the probed node in the session's discovery order.
        j: u64,
        /// Port probed at that node.
        port: u8,
    },
    /// A radius-`T` view (ball or grid window) was materialized.
    ViewMaterialized {
        /// Global id (or index) of the view's center node.
        node: u64,
        /// View radius.
        radius: u64,
        /// Number of nodes in the view.
        size: u64,
    },
    /// The round-elimination node cache was consulted.
    MemoLookup {
        /// Whether the lookup hit.
        hit: bool,
    },
    /// A round-elimination level finished.
    LevelComplete {
        /// One-based level index in the tower.
        level: u64,
        /// Alphabet size after restriction/compaction.
        labels: u64,
        /// Allowed configurations at this level.
        configs: u64,
    },
    /// A fault was injected into (or caught during) a faulted run.
    Fault {
        /// Structural node index (or query index) that faulted.
        node: u64,
        /// Round at which the fault hit (0 for view-based executions).
        round: u64,
        /// Stable fault tag: `"crash-stop"`, `"panic"`, `"corrupt-view"`,
        /// `"probe-lie"`, ...
        fault: &'static str,
    },
    /// A retry supervisor is about to re-drive a failed stage.
    Retry {
        /// The supervised stage (e.g. `"re-tower/level-3"`).
        stage: String,
        /// One-based attempt number that just failed.
        attempt: u64,
        /// Deterministic backoff recorded for this retry, in
        /// milliseconds (advisory — recorded, not slept, by default).
        backoff_ms: u64,
    },
    /// A recovery checkpoint (e.g. a serialized tower snapshot) was
    /// taken and round-tripped.
    Checkpoint {
        /// The stage the checkpoint covers.
        stage: String,
        /// Completed work units captured by the checkpoint (tower
        /// levels built, rounds run, ...).
        completed: u64,
    },
    /// One shard finished one boundary-exchange superstep of a
    /// partitioned run. Tagged with the shard id so per-shard streams
    /// can be folded into one log while staying attributable; carries
    /// no cost semantics (the coordinator's round events already count
    /// the work), so merged [`CostModel`]s are bit-identical across
    /// shard and runner-thread counts.
    ShardStep {
        /// Shard id within the run's partition.
        shard: u64,
        /// Zero-based superstep index.
        superstep: u64,
        /// Messages this shard sent across shard boundaries this
        /// superstep.
        halo_messages: u64,
        /// Bytes of halo payload (message count × message size —
        /// count-derived, not measured).
        halo_bytes: u64,
    },
}

impl Event {
    /// Stable kebab-case tag for this event kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RoundStart { .. } => "round-start",
            Event::RoundEnd { .. } => "round-end",
            Event::Probe { .. } => "probe",
            Event::ViewMaterialized { .. } => "view-materialized",
            Event::MemoLookup { .. } => "memo-lookup",
            Event::LevelComplete { .. } => "level-complete",
            Event::Fault { .. } => "fault",
            Event::Retry { .. } => "retry",
            Event::Checkpoint { .. } => "checkpoint",
            Event::ShardStep { .. } => "shard-step",
        }
    }

    /// One-object JSON rendering (`{"kind": ..., fields...}`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"kind\": \"{}\"", self.kind());
        match self {
            Event::RoundStart { round } => {
                let _ = write!(out, ", \"round\": {round}");
            }
            Event::RoundEnd { round, messages } => {
                let _ = write!(out, ", \"round\": {round}, \"messages\": {messages}");
            }
            Event::Probe { query, j, port } => {
                let _ = write!(out, ", \"query\": {query}, \"j\": {j}, \"port\": {port}");
            }
            Event::ViewMaterialized { node, radius, size } => {
                let _ = write!(
                    out,
                    ", \"node\": {node}, \"radius\": {radius}, \"size\": {size}"
                );
            }
            Event::MemoLookup { hit } => {
                let _ = write!(out, ", \"hit\": {hit}");
            }
            Event::LevelComplete {
                level,
                labels,
                configs,
            } => {
                let _ = write!(
                    out,
                    ", \"level\": {level}, \"labels\": {labels}, \"configs\": {configs}"
                );
            }
            Event::Fault { node, round, fault } => {
                let _ = write!(
                    out,
                    ", \"node\": {node}, \"round\": {round}, \"fault\": \"{fault}\""
                );
            }
            Event::Retry {
                stage,
                attempt,
                backoff_ms,
            } => {
                let _ = write!(
                    out,
                    ", \"stage\": \"{}\", \"attempt\": {attempt}, \"backoff_ms\": {backoff_ms}",
                    escape(stage)
                );
            }
            Event::Checkpoint { stage, completed } => {
                let _ = write!(
                    out,
                    ", \"stage\": \"{}\", \"completed\": {completed}",
                    escape(stage)
                );
            }
            Event::ShardStep {
                shard,
                superstep,
                halo_messages,
                halo_bytes,
            } => {
                let _ = write!(
                    out,
                    ", \"shard\": {shard}, \"superstep\": {superstep}, \
                     \"halo_messages\": {halo_messages}, \"halo_bytes\": {halo_bytes}"
                );
            }
        }
        out.push('}');
        out
    }
}

/// Minimal JSON string escaping for stage names (quotes, backslashes,
/// and control characters; stages are ASCII identifiers in practice).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[derive(Debug, Default)]
struct Ring {
    buf: VecDeque<Event>,
    /// Every emission, whether sampled in or not.
    seen: u64,
    /// Emissions discarded by the sampling grid before storage.
    dropped_sampling: u64,
    /// Stored events evicted by a full ring, plus emissions discarded
    /// by a zero-capacity ring.
    dropped_capacity: u64,
    /// Exact operation counts, accumulated before any filtering.
    cost: CostModel,
}

/// A bounded, thread-safe log of [`Event`]s.
///
/// The log is a ring buffer: once `capacity` events are stored, each new
/// stored event evicts the oldest ([`EventLog::dropped_capacity`] counts
/// evictions). With a sampling period `p` (see
/// [`EventLog::with_sampling`]), only every `p`-th emission is stored
/// ([`EventLog::dropped_sampling`] counts the rest); `seen()` and the
/// [`CostModel`] still count all of them. [`EventLog::dropped`] is the
/// sum of both drop classes.
///
/// All methods take `&self`; the log is safe to share across the scoped
/// worker threads used by the parallel RE engine. A poisoned lock is
/// recovered, not propagated — an event log must never turn one
/// panicking worker into a cascade.
#[derive(Debug)]
pub struct EventLog {
    inner: Mutex<Ring>,
    capacity: usize,
    sample: u64,
}

impl EventLog {
    /// A log that stores every emitted event, up to `capacity`.
    pub fn new(capacity: usize) -> Self {
        Self::with_sampling(capacity, 1)
    }

    /// A log that stores every `sample`-th emission (the first, the
    /// `sample+1`-th, ...). A `sample` of 0 is treated as 1.
    pub fn with_sampling(capacity: usize, sample: u64) -> Self {
        Self {
            inner: Mutex::new(Ring::default()),
            capacity,
            sample: sample.max(1),
        }
    }

    fn ring(&self) -> std::sync::MutexGuard<'_, Ring> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Emits one event. Counted always (in `seen()` and in the cost
    /// model); stored if it falls on the sampling grid and (ring
    /// permitting) until evicted.
    pub fn record(&self, event: Event) {
        let mut ring = self.ring();
        let index = ring.seen;
        ring.seen += 1;
        // Cost accounting sees every emission: sampling and capacity
        // thin what is *stored*, never what is *counted*.
        ring.cost.record(&event);
        if !index.is_multiple_of(self.sample) {
            ring.dropped_sampling += 1;
            return;
        }
        if self.capacity == 0 {
            ring.dropped_capacity += 1;
            return;
        }
        if ring.buf.len() == self.capacity {
            ring.buf.pop_front();
            ring.dropped_capacity += 1;
        }
        ring.buf.push_back(event);
    }

    /// Number of events currently stored.
    pub fn len(&self) -> usize {
        self.ring().buf.len()
    }

    /// Whether no events are currently stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity this log was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sampling period (1 = store everything).
    pub fn sampling(&self) -> u64 {
        self.sample
    }

    /// Total emissions, stored or not.
    pub fn seen(&self) -> u64 {
        self.ring().seen
    }

    /// Every emission not retrievable from [`EventLog::events`]: the
    /// sum of [`EventLog::dropped_sampling`] and
    /// [`EventLog::dropped_capacity`].
    pub fn dropped(&self) -> u64 {
        let ring = self.ring();
        ring.dropped_sampling + ring.dropped_capacity
    }

    /// Emissions discarded by the sampling grid (never stored at all).
    pub fn dropped_sampling(&self) -> u64 {
        self.ring().dropped_sampling
    }

    /// Stored events later evicted by a full ring, plus emissions
    /// discarded by a zero-capacity ring.
    pub fn dropped_capacity(&self) -> u64 {
        self.ring().dropped_capacity
    }

    /// The exact operation counts accumulated from every emission —
    /// unaffected by sampling or eviction, and order-independent, so
    /// bit-identical across thread counts. See [`crate::cost`].
    pub fn cost_model(&self) -> CostModel {
        self.ring().cost.clone()
    }

    /// A snapshot of the stored events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.ring().buf.iter().cloned().collect()
    }

    /// JSON rendering: `{"seen": .., "dropped": .., "dropped_sampling":
    /// .., "dropped_capacity": .., "events": [..]}` (`dropped` stays
    /// the sum for backward compatibility).
    pub fn to_json(&self) -> String {
        let ring = self.ring();
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"seen\": {}, \"dropped\": {}, \"dropped_sampling\": {}, \
             \"dropped_capacity\": {}, \"events\": [",
            ring.seen,
            ring.dropped_sampling + ring.dropped_capacity,
            ring.dropped_sampling,
            ring.dropped_capacity
        );
        for (i, event) in ring.buf.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&event.to_json());
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_up_to_capacity() {
        let log = EventLog::new(3);
        for round in 0..5 {
            log.record(Event::RoundStart { round });
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.seen(), 5);
        assert_eq!(log.dropped(), 2);
        assert_eq!(
            log.events(),
            vec![
                Event::RoundStart { round: 2 },
                Event::RoundStart { round: 3 },
                Event::RoundStart { round: 4 },
            ]
        );
    }

    #[test]
    fn sampling_thins_but_counts_everything() {
        let log = EventLog::with_sampling(100, 3);
        for round in 0..10 {
            log.record(Event::RoundStart { round });
        }
        assert_eq!(log.seen(), 10);
        assert_eq!(
            log.events(),
            vec![
                Event::RoundStart { round: 0 },
                Event::RoundStart { round: 3 },
                Event::RoundStart { round: 6 },
                Event::RoundStart { round: 9 },
            ]
        );
        // Sampled-out emissions are drops, attributed to sampling.
        assert_eq!(log.dropped_sampling(), 6);
        assert_eq!(log.dropped_capacity(), 0);
        assert_eq!(log.dropped(), 6);
    }

    #[test]
    fn drop_classes_are_attributed_separately() {
        // Capacity 2 with sampling 2: of 8 emissions, 4 are sampled
        // out, 4 are stored, 2 of those evicted.
        let log = EventLog::with_sampling(2, 2);
        for round in 0..8 {
            log.record(Event::RoundStart { round });
        }
        assert_eq!(log.seen(), 8);
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped_sampling(), 4);
        assert_eq!(log.dropped_capacity(), 2);
        assert_eq!(log.dropped(), 6);
        let json = log.to_json();
        assert!(json.contains("\"dropped\": 6"), "{json}");
        assert!(json.contains("\"dropped_sampling\": 4"), "{json}");
        assert!(json.contains("\"dropped_capacity\": 2"), "{json}");
    }

    #[test]
    fn cost_model_counts_past_sampling_and_capacity() {
        use crate::cost::CostKind;
        // A zero-capacity, heavily sampled log still counts exactly.
        let log = EventLog::with_sampling(0, 7);
        for round in 0..5 {
            log.record(Event::RoundStart { round });
            log.record(Event::RoundEnd { round, messages: 3 });
        }
        log.record(Event::Probe {
            query: 1,
            j: 0,
            port: 0,
        });
        assert_eq!(log.len(), 0);
        let cost = log.cost_model();
        assert_eq!(cost.get(CostKind::Round), 5);
        assert_eq!(cost.get(CostKind::Message), 15);
        assert_eq!(cost.get(CostKind::Probe), 1);
    }

    #[test]
    fn shared_across_threads() {
        let log = EventLog::new(1024);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        log.record(Event::MemoLookup { hit: true });
                    }
                });
            }
        });
        assert_eq!(log.len(), 400);
        assert_eq!(log.seen(), 400);
    }

    #[test]
    fn survives_a_poisoned_lock() {
        let log = EventLog::new(8);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = log.inner.lock().expect("first lock");
            panic!("poison the event log deliberately");
        }));
        assert!(result.is_err());
        log.record(Event::MemoLookup { hit: false });
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn json_covers_every_variant() {
        let log = EventLog::new(16);
        log.record(Event::RoundStart { round: 0 });
        log.record(Event::RoundEnd {
            round: 0,
            messages: 12,
        });
        log.record(Event::Probe {
            query: 7,
            j: 2,
            port: 1,
        });
        log.record(Event::ViewMaterialized {
            node: 3,
            radius: 2,
            size: 5,
        });
        log.record(Event::MemoLookup { hit: true });
        log.record(Event::LevelComplete {
            level: 1,
            labels: 4,
            configs: 9,
        });
        log.record(Event::Fault {
            node: 2,
            round: 1,
            fault: "crash-stop",
        });
        log.record(Event::Retry {
            stage: "re-tower/level-3".to_string(),
            attempt: 1,
            backoff_ms: 20,
        });
        log.record(Event::Checkpoint {
            stage: "re-tower/level-3".to_string(),
            completed: 2,
        });
        log.record(Event::ShardStep {
            shard: 3,
            superstep: 2,
            halo_messages: 5,
            halo_bytes: 40,
        });
        let json = log.to_json();
        for kind in [
            "round-start",
            "round-end",
            "probe",
            "view-materialized",
            "memo-lookup",
            "level-complete",
            "fault",
            "retry",
            "checkpoint",
            "shard-step",
        ] {
            assert!(json.contains(kind), "missing {kind} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
