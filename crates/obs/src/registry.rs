//! A thread-safe collection of labeled traces.
//!
//! The bench harness records one trace per pipeline stage into a
//! [`Registry`] and serializes the whole collection to
//! `BENCH_obs.json`; any long-lived process can do the same.

use std::sync::Mutex;

use crate::trace::Trace;

/// A labeled, append-only collection of [`Trace`]s.
///
/// Interior mutability via a [`Mutex`], so one registry can be shared
/// by reference across worker threads. Traces are kept in recording
/// order; labels need not be unique (repeated runs of the same stage
/// simply append).
#[derive(Debug, Default)]
pub struct Registry {
    traces: Mutex<Vec<(String, Trace)>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the trace list, recovering from poison: appends always
    /// leave the vector consistent, so a worker that panicked mid-bench
    /// must not take every later recording down with it.
    fn traces(&self) -> std::sync::MutexGuard<'_, Vec<(String, Trace)>> {
        self.traces.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends a labeled trace.
    pub fn record(&self, label: impl Into<String>, trace: Trace) {
        self.traces().push((label.into(), trace));
    }

    /// Number of recorded traces.
    pub fn len(&self) -> usize {
        self.traces().len()
    }

    /// Whether no trace has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clones out the recorded `(label, trace)` pairs in recording order.
    pub fn snapshot(&self) -> Vec<(String, Trace)> {
        self.traces().clone()
    }

    /// Serializes every recorded trace as a JSON object keyed by its
    /// `panel/stage` label, with the recording order kept as an
    /// `"order"` field. Label-based keys make two registries diff
    /// cleanly even when stages are recorded in a different order;
    /// repeated labels are disambiguated with a `#2`, `#3`, ... suffix.
    pub fn to_json(&self) -> String {
        let traces = self.snapshot();
        let mut used = std::collections::HashMap::new();
        let mut out = String::from("{\n");
        for (i, (label, trace)) in traces.iter().enumerate() {
            let n = used.entry(label.clone()).or_insert(0u32);
            *n += 1;
            let key = if *n == 1 {
                label.clone()
            } else {
                format!("{label}#{n}")
            };
            out.push_str(&format!("\"{}\": {{\n", escape(&key)));
            out.push_str(&format!("\"order\": {i},\n"));
            out.push_str("\"trace\":\n");
            out.push_str(&trace.to_json());
            out.truncate(out.trim_end_matches('\n').len());
            out.push_str("\n}");
            if i + 1 < traces.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("}\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::Counter;
    use crate::trace::Span;

    fn tiny(name: &str, rounds: u64) -> Trace {
        let mut s = Span::start(name);
        s.set(Counter::Rounds, rounds);
        Trace::new(s.finish())
    }

    #[test]
    fn records_in_order_and_serializes() {
        let reg = Registry::new();
        assert!(reg.is_empty());
        reg.record("e1/trees", tiny("tower", 3));
        reg.record("e4/volume", tiny("probes", 9));
        assert_eq!(reg.len(), 2);
        let snap = reg.snapshot();
        assert_eq!(snap[0].0, "e1/trees");
        assert_eq!(snap[1].0, "e4/volume");
        let json = reg.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"e1/trees\""));
        assert!(json.contains("\"e4/volume\""));
        assert!(json.contains("\"order\": 0"));
        assert!(json.contains("\"order\": 1"));
        assert!(json.contains("\"rounds\": 9"));
    }

    #[test]
    fn repeated_labels_get_distinct_keys() {
        let reg = Registry::new();
        reg.record("e1/stage", tiny("first", 1));
        reg.record("e1/stage", tiny("second", 2));
        let json = reg.to_json();
        assert!(json.contains("\"e1/stage\""));
        assert!(json.contains("\"e1/stage#2\""));
    }

    #[test]
    fn shared_across_threads() {
        let reg = std::sync::Arc::new(Registry::new());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let reg = std::sync::Arc::clone(&reg);
                std::thread::spawn(move || reg.record(format!("t{i}"), tiny("work", i)))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.len(), 4);
    }

    #[test]
    fn records_after_a_poisoned_lock() {
        let reg = Registry::new();
        reg.record("before", tiny("a", 1));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = reg.traces.lock().expect("first lock");
            panic!("poison the registry deliberately");
        }));
        assert!(result.is_err());
        // The append path recovers the guard instead of cascading.
        reg.record("after", tiny("b", 2));
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[1].0, "after");
    }
}
