//! Tracing and metrics for every model simulator — the repository's
//! observability substrate.
//!
//! The paper's gap theorems are claims about *executions*: how many
//! rounds a LOCAL view expands (Theorems 3.10/3.11), how many probes a
//! VOLUME query spends (Theorems 4.1/4.3), how fast the derived label
//! universes grow under round elimination. This crate gives every
//! simulator and pipeline one shared vocabulary for recording exactly
//! those measures:
//!
//! * [`Counter`] — the typed counter taxonomy (rounds, probes, messages,
//!   view radii, memo traffic, labels interned, ...). A closed enum, so
//!   counter names cannot drift between crates.
//! * [`Span`] / [`SpanRecord`] — hierarchical spans with wall-clock
//!   timing. A [`Span`] is open and mutable; [`Span::finish`] seals it
//!   into an immutable [`SpanRecord`] that can be nested under a parent.
//! * [`Trace`] — a finished span tree. Serializes to JSON
//!   ([`Trace::to_json`]) and to a wall-clock-free canonical form
//!   ([`Trace::fingerprint`]) used to assert that parallel and
//!   sequential executions record identical counters.
//! * [`Registry`] — a thread-safe collection of labeled traces; the
//!   bench harness drains one into `BENCH_obs.json`.
//! * [`RunReport`] — the uniform return type of every instrumented
//!   simulator entrypoint: the model-specific outcome plus the trace of
//!   the execution that produced it, and optionally the event log that
//!   recorded it at event granularity.
//! * [`Event`] / [`EventLog`] — opt-in event sourcing: a bounded,
//!   thread-safe ring buffer of typed events (round boundaries, probes,
//!   view materializations, memo traffic, finished RE levels) with a
//!   sampling knob. The default is *off* and costs one branch.
//! * [`Histogram`] — per-span distributions (probe counts per query,
//!   view sizes per node) with deterministic power-of-two buckets and
//!   quantile estimates.
//! * [`CostModel`] / [`CostKind`] — deterministic operation counts
//!   folded from the event stream: the wall-clock-free cost metric the
//!   curve-fit harness regresses against theory (`lcl_bench::curves`).
//! * [`export`] — Chrome trace-event JSON, flamegraph folded stacks,
//!   and Prometheus-style text exposition.
//!
//! # Determinism contract
//!
//! Wall-clock time is the *only* nondeterministic quantity a trace may
//! contain. Counter values must be pure functions of the simulated
//! execution — never of thread scheduling — so that
//! [`Trace::fingerprint`] is bit-identical across thread counts. The
//! `tests/observability.rs` suite enforces this for every instrumented
//! subsystem.
//!
//! # Example
//!
//! ```
//! use lcl_obs::{Counter, Span, Trace};
//!
//! let mut root = Span::start("local/cole-vishkin");
//! root.set(Counter::Nodes, 128);
//! let mut step = Span::start("color-reduction");
//! step.set(Counter::Rounds, 3);
//! root.record(step.finish());
//! let trace = Trace::new(root.finish());
//! assert_eq!(trace.total(Counter::Rounds), 3);
//! assert!(trace.to_json().contains("\"rounds\": 3"));
//! ```

pub mod cost;
pub mod counter;
pub mod event;
pub mod export;
pub mod histogram;
pub mod registry;
pub mod trace;

pub use cost::{CostKind, CostModel};
pub use counter::Counter;
pub use event::{Event, EventLog};
pub use histogram::Histogram;
pub use registry::Registry;
pub use trace::{Span, SpanRecord, Trace};

use std::sync::Arc;

/// The uniform result of an instrumented simulator run: the
/// model-specific outcome plus the execution trace.
///
/// Every model entrypoint (`local::simulate`, `volume::simulate`,
/// `volume::simulate_lca`, `grid::simulate`) returns one of these, and
/// the facade's `Simulation` trait abstracts over them. When the run
/// was event-logged (the `*_logged` entrypoints), the log rides along
/// and [`RunReport::events`] exposes it.
#[derive(Clone, Debug)]
pub struct RunReport<T> {
    /// The model-specific run result (labeling, rounds, probes, ...).
    pub outcome: T,
    /// The trace of the execution that produced the outcome.
    pub trace: Trace,
    events: Option<Arc<EventLog>>,
}

impl<T> RunReport<T> {
    /// Pairs an outcome with its trace.
    pub fn new(outcome: T, trace: Trace) -> Self {
        Self {
            outcome,
            trace,
            events: None,
        }
    }

    /// Pairs an outcome with its trace and the event log that recorded
    /// the run.
    pub fn with_events(outcome: T, trace: Trace, events: Arc<EventLog>) -> Self {
        Self {
            outcome,
            trace,
            events: Some(events),
        }
    }

    /// The event log attached to this run, if logging was enabled.
    pub fn events(&self) -> Option<&EventLog> {
        self.events.as_deref()
    }

    /// The deterministic cost model of the run, folded from the
    /// attached event log — `None` when the run was not event-logged.
    /// Counts are exact even when the log sampled or evicted events.
    pub fn cost_model(&self) -> Option<CostModel> {
        self.events.as_deref().map(EventLog::cost_model)
    }

    /// Mean per-node work (probes issued plus view nodes touched) of
    /// the run — the node-averaged complexity axis. `None` when the run
    /// was not event-logged or no event carried a node id.
    pub fn node_averaged_cost(&self) -> Option<f64> {
        self.cost_model().and_then(|cost| cost.node_averaged())
    }

    /// Maps the outcome, keeping the trace and event log.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> RunReport<U> {
        RunReport {
            outcome: f(self.outcome),
            trace: self.trace,
            events: self.events,
        }
    }

    /// Splits the report into its parts (dropping any event log).
    pub fn into_parts(self) -> (T, Trace) {
        (self.outcome, self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_report_maps_outcome_and_keeps_trace() {
        let mut span = Span::start("root");
        span.set(Counter::Probes, 5);
        let report = RunReport::new(2usize, Trace::new(span.finish()));
        assert!(report.events().is_none());
        let mapped = report.map(|n| n * 10);
        assert_eq!(mapped.outcome, 20);
        assert_eq!(mapped.trace.total(Counter::Probes), 5);
    }

    #[test]
    fn run_report_carries_an_event_log() {
        let log = Arc::new(EventLog::new(4));
        log.record(Event::MemoLookup { hit: true });
        let report =
            RunReport::with_events((), Trace::new(Span::start("r").finish()), Arc::clone(&log));
        assert_eq!(report.events().map(EventLog::len), Some(1));
        let mapped = report.map(|()| 1u8);
        assert_eq!(mapped.events().map(EventLog::len), Some(1));
    }

    #[test]
    fn run_report_surfaces_cost_and_node_averages() {
        let plain = RunReport::new((), Trace::new(Span::start("r").finish()));
        assert!(plain.cost_model().is_none());
        assert!(plain.node_averaged_cost().is_none());

        let log = Arc::new(EventLog::new(4));
        log.record(Event::Probe {
            query: 1,
            j: 0,
            port: 0,
        });
        log.record(Event::Probe {
            query: 1,
            j: 1,
            port: 1,
        });
        log.record(Event::Probe {
            query: 2,
            j: 0,
            port: 0,
        });
        let report =
            RunReport::with_events((), Trace::new(Span::start("r").finish()), Arc::clone(&log));
        let cost = report.cost_model().expect("log attached");
        assert_eq!(cost.get(CostKind::Probe), 3);
        assert_eq!(report.node_averaged_cost(), Some(1.5));
    }
}
