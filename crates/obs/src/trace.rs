//! Hierarchical spans with wall-clock timing and typed counters.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use crate::counter::Counter;
use crate::histogram::Histogram;

/// An *open* span: mutable, timing since [`Span::start`].
///
/// Finish it with [`Span::finish`] to seal the wall clock and obtain an
/// immutable [`SpanRecord`] that can be attached to a parent span or
/// wrapped into a [`Trace`].
#[derive(Debug)]
pub struct Span {
    name: String,
    started: Instant,
    counters: BTreeMap<Counter, u64>,
    hists: BTreeMap<Counter, Histogram>,
    children: Vec<SpanRecord>,
}

impl Span {
    /// Opens a span and starts its clock.
    pub fn start(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            started: Instant::now(),
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
            children: Vec::new(),
        }
    }

    /// Adds to a counter (saturating).
    pub fn add(&mut self, counter: Counter, amount: u64) {
        let slot = self.counters.entry(counter).or_insert(0);
        *slot = slot.saturating_add(amount);
    }

    /// Sets a counter to an absolute value.
    pub fn set(&mut self, counter: Counter, value: u64) {
        self.counters.insert(counter, value);
    }

    /// Records one observation into this span's distribution for a
    /// counter (probe counts per query, view sizes per node, ...).
    /// Bucket boundaries are fixed, so the resulting histogram — and the
    /// fingerprint it feeds — is independent of observation order.
    pub fn observe(&mut self, counter: Counter, value: u64) {
        self.hists.entry(counter).or_default().observe(value);
    }

    /// Attaches a finished child span.
    pub fn record(&mut self, child: SpanRecord) {
        self.children.push(child);
    }

    /// Runs `f` inside a child span, attaching it when `f` returns.
    pub fn scope<T>(&mut self, name: impl Into<String>, f: impl FnOnce(&mut Span) -> T) -> T {
        let mut child = Span::start(name);
        let result = f(&mut child);
        self.record(child.finish());
        result
    }

    /// Seals the span: the wall clock stops here.
    pub fn finish(self) -> SpanRecord {
        SpanRecord {
            name: self.name,
            wall: self.started.elapsed(),
            counters: self.counters,
            hists: self.hists,
            children: self.children,
        }
    }
}

/// A finished span: name, wall time, counters, children.
///
/// Equality and hashing are deliberately not derived — wall-clock time
/// makes two otherwise-identical records differ. Compare executions with
/// [`Trace::fingerprint`], which excludes the clock.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    name: String,
    wall: Duration,
    counters: BTreeMap<Counter, u64>,
    hists: BTreeMap<Counter, Histogram>,
    children: Vec<SpanRecord>,
}

impl SpanRecord {
    /// Builds an aggregate record whose wall time is the sum of its
    /// children's — for assembling a trace from spans recorded at
    /// different times (e.g. a tower built level by level).
    pub fn aggregate(
        name: impl Into<String>,
        counters: impl IntoIterator<Item = (Counter, u64)>,
        children: Vec<SpanRecord>,
    ) -> Self {
        let wall = children.iter().map(|c| c.wall).sum();
        Self {
            name: name.into(),
            wall,
            counters: counters.into_iter().collect(),
            hists: BTreeMap::new(),
            children,
        }
    }

    /// Builds a record with an explicit, fixed wall time — for synthetic
    /// traces whose rendering must be reproducible (golden-fixture
    /// tests, documentation examples).
    pub fn with_wall(
        name: impl Into<String>,
        wall: Duration,
        counters: impl IntoIterator<Item = (Counter, u64)>,
        children: Vec<SpanRecord>,
    ) -> Self {
        Self {
            name: name.into(),
            wall,
            counters: counters.into_iter().collect(),
            hists: BTreeMap::new(),
            children,
        }
    }

    /// Attaches a histogram to this record (builder-style; synthetic
    /// traces only — live spans fill histograms via [`Span::observe`]).
    #[must_use]
    pub fn with_histogram(mut self, counter: Counter, hist: Histogram) -> Self {
        self.hists.insert(counter, hist);
        self
    }

    /// The span's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Wall-clock time between [`Span::start`] and [`Span::finish`].
    pub fn wall(&self) -> Duration {
        self.wall
    }

    /// This span's own value for a counter (not including children).
    pub fn get(&self, counter: Counter) -> Option<u64> {
        self.counters.get(&counter).copied()
    }

    /// This span's counters, in canonical order.
    pub fn counters(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        self.counters.iter().map(|(&c, &v)| (c, v))
    }

    /// This span's distribution for a counter, if one was observed.
    pub fn histogram(&self, counter: Counter) -> Option<&Histogram> {
        self.hists.get(&counter)
    }

    /// This span's histograms, in canonical counter order.
    pub fn histograms(&self) -> impl Iterator<Item = (Counter, &Histogram)> + '_ {
        self.hists.iter().map(|(&c, h)| (c, h))
    }

    /// Child spans in recording order.
    pub fn children(&self) -> &[SpanRecord] {
        &self.children
    }

    /// A counter summed over this span and all descendants.
    pub fn total(&self, counter: Counter) -> u64 {
        let own = self.get(counter).unwrap_or(0);
        self.children
            .iter()
            .fold(own, |acc, c| acc.saturating_add(c.total(counter)))
    }

    /// Depth-first search for the first descendant (or self) with the
    /// given name.
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Number of spans in this subtree (including self).
    pub fn span_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(SpanRecord::span_count)
            .sum::<usize>()
    }

    fn write_fingerprint(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push(' ');
        }
        out.push_str(&self.name);
        for (c, v) in &self.counters {
            let _ = write!(out, " {}={v}", c.as_str());
        }
        for (c, h) in &self.hists {
            let _ = write!(out, " {}~{}", c.as_str(), h.fingerprint());
        }
        out.push('\n');
        for child in &self.children {
            child.write_fingerprint(out, depth + 1);
        }
    }

    fn write_json(&self, out: &mut String, indent: usize) {
        let pad = " ".repeat(indent);
        let _ = writeln!(out, "{pad}{{");
        let _ = writeln!(out, "{pad}  \"name\": {},", json_string(&self.name));
        let _ = writeln!(out, "{pad}  \"wall_us\": {},", self.wall.as_micros());
        let _ = write!(out, "{pad}  \"counters\": {{");
        for (i, (c, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}\"{}\": {v}", c.as_str());
        }
        let _ = writeln!(out, "}},");
        if !self.hists.is_empty() {
            let _ = write!(out, "{pad}  \"hists\": {{");
            for (i, (c, h)) in self.hists.iter().enumerate() {
                let sep = if i == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}\"{}\": {}", c.as_str(), h.to_json());
            }
            let _ = writeln!(out, "}},");
        }
        if self.children.is_empty() {
            let _ = writeln!(out, "{pad}  \"children\": []");
        } else {
            let _ = writeln!(out, "{pad}  \"children\": [");
            for (i, child) in self.children.iter().enumerate() {
                child.write_json(out, indent + 4);
                if i + 1 < self.children.len() {
                    out.truncate(out.trim_end_matches('\n').len());
                    out.push_str(",\n");
                }
            }
            let _ = writeln!(out, "{pad}  ]");
        }
        let _ = writeln!(out, "{pad}}}");
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A finished span tree — what a simulator hands back inside a
/// [`RunReport`](crate::RunReport).
#[derive(Clone, Debug)]
pub struct Trace {
    root: SpanRecord,
}

impl Trace {
    /// Wraps a finished root span.
    pub fn new(root: SpanRecord) -> Self {
        Self { root }
    }

    /// Times `f` under a fresh root span and returns its result with the
    /// captured trace.
    pub fn capture<T>(name: impl Into<String>, f: impl FnOnce(&mut Span) -> T) -> (T, Trace) {
        let mut span = Span::start(name);
        let result = f(&mut span);
        (result, Trace::new(span.finish()))
    }

    /// The root span.
    pub fn root(&self) -> &SpanRecord {
        &self.root
    }

    /// A counter summed over the whole tree.
    pub fn total(&self, counter: Counter) -> u64 {
        self.root.total(counter)
    }

    /// Depth-first search for a span by name.
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        self.root.find(name)
    }

    /// Number of spans in the trace.
    pub fn span_count(&self) -> usize {
        self.root.span_count()
    }

    /// Whether the trace carries no information beyond its root name:
    /// no counters anywhere and no child spans.
    pub fn is_empty(&self) -> bool {
        self.span_count() == 1 && self.root.counters().next().is_none()
    }

    /// A canonical, wall-clock-free rendering: one line per span
    /// (`name counter=value ...`), children indented. Two executions
    /// that did the same work produce identical fingerprints — this is
    /// the determinism oracle of `tests/observability.rs`.
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        self.root.write_fingerprint(&mut out, 0);
        out
    }

    /// Serializes the span tree to JSON (`name`, `wall_us`, `counters`,
    /// `children`, recursively).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.root.write_json(&mut out, 0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut root = Span::start("root");
        root.set(Counter::Nodes, 10);
        root.scope("child-a", |s| {
            s.set(Counter::Probes, 3);
            s.add(Counter::Probes, 2);
        });
        root.scope("child-b", |s| {
            s.set(Counter::Probes, 1);
            s.scope("grandchild", |g| g.set(Counter::Rounds, 7));
        });
        Trace::new(root.finish())
    }

    #[test]
    fn totals_sum_over_the_tree() {
        let t = sample();
        assert_eq!(t.total(Counter::Probes), 6);
        assert_eq!(t.total(Counter::Rounds), 7);
        assert_eq!(t.total(Counter::Nodes), 10);
        assert_eq!(t.span_count(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    fn find_locates_nested_spans() {
        let t = sample();
        assert_eq!(t.find("grandchild").unwrap().get(Counter::Rounds), Some(7));
        assert!(t.find("missing").is_none());
    }

    #[test]
    fn fingerprint_excludes_wall_clock() {
        let a = sample();
        std::thread::sleep(Duration::from_millis(2));
        let b = sample();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(a.fingerprint().contains("child-a probes=5"));
    }

    #[test]
    fn json_is_balanced_and_contains_counters() {
        let t = sample();
        let json = t.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"probes\": 5"));
        assert!(json.contains("\"name\": \"grandchild\""));
        assert!(json.contains("\"wall_us\""));
    }

    #[test]
    fn json_escapes_special_characters() {
        let mut span = Span::start("quote\"back\\slash");
        span.set(Counter::Nodes, 1);
        let json = Trace::new(span.finish()).to_json();
        assert!(json.contains("quote\\\"back\\\\slash"));
    }

    #[test]
    fn aggregate_sums_child_walls() {
        let a = Span::start("a").finish();
        let b = Span::start("b").finish();
        let wall = a.wall() + b.wall();
        let agg = SpanRecord::aggregate("parent", [(Counter::Steps, 2)], vec![a, b]);
        assert_eq!(agg.wall(), wall);
        assert_eq!(agg.get(Counter::Steps), Some(2));
        assert_eq!(agg.children().len(), 2);
    }

    #[test]
    fn empty_trace_is_empty() {
        let t = Trace::new(Span::start("nothing").finish());
        assert!(t.is_empty());
    }

    #[test]
    fn histograms_flow_into_fingerprint_and_json() {
        let build = || {
            let mut span = Span::start("queries");
            for v in [1u64, 2, 2, 5] {
                span.observe(Counter::Probes, v);
            }
            Trace::new(span.finish())
        };
        let t = build();
        let hist = t.root().histogram(Counter::Probes).expect("observed");
        assert_eq!(hist.count(), 4);
        assert_eq!(hist.sum(), 10);
        assert!(t.fingerprint().contains("probes~[1:1 3:2 7:1]|4|10"));
        assert!(t.to_json().contains("\"hists\""));
        assert_eq!(t.fingerprint(), build().fingerprint());
    }

    #[test]
    fn with_wall_fixes_the_clock() {
        let child = SpanRecord::with_wall(
            "child",
            Duration::from_micros(40),
            [(Counter::Probes, 3)],
            vec![],
        );
        let root = SpanRecord::with_wall(
            "root",
            Duration::from_micros(100),
            [(Counter::Nodes, 2)],
            vec![child],
        );
        assert_eq!(root.wall(), Duration::from_micros(100));
        assert_eq!(root.children()[0].wall(), Duration::from_micros(40));
        let json = Trace::new(root).to_json();
        assert!(json.contains("\"wall_us\": 100"));
        assert!(json.contains("\"wall_us\": 40"));
    }
}
