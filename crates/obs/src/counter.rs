//! The typed counter taxonomy.
//!
//! A closed enum rather than free-form strings: every instrumented crate
//! draws from the same vocabulary, so traces from different models can
//! be aggregated, diffed, and asserted on without name drift.

use std::fmt;

/// A typed execution counter.
///
/// The taxonomy groups into four families (see `DESIGN.md`,
/// "Observability"):
///
/// * **Complexity measures** — the quantities the paper's theorems are
///   about: [`Rounds`](Counter::Rounds), [`Radius`](Counter::Radius),
///   [`Probes`](Counter::Probes), [`MaxProbes`](Counter::MaxProbes),
///   [`FarProbes`](Counter::FarProbes), [`Messages`](Counter::Messages).
/// * **Instance shape** — [`Nodes`](Counter::Nodes),
///   [`Edges`](Counter::Edges), [`Queries`](Counter::Queries),
///   [`ViewNodes`](Counter::ViewNodes).
/// * **Engine internals** — [`MemoHits`](Counter::MemoHits),
///   [`MemoMisses`](Counter::MemoMisses),
///   [`LabelsInterned`](Counter::LabelsInterned),
///   [`LabelsAlive`](Counter::LabelsAlive),
///   [`Configurations`](Counter::Configurations),
///   [`Steps`](Counter::Steps), [`FixpointOf`](Counter::FixpointOf).
/// * **Classifier quantities** — [`States`](Counter::States),
///   [`Trials`](Counter::Trials), [`Violations`](Counter::Violations).
/// * **Robustness** — [`Faults`](Counter::Faults), the per-run fault
///   count of a degraded (fault-injected) execution.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Counter {
    /// Communication rounds used (synchronous executors) or implied by
    /// the view radius (view-based executors).
    Rounds,
    /// The view radius `T(n)` an algorithm requested.
    Radius,
    /// Total probes spent across all queries (VOLUME/LCA).
    Probes,
    /// The worst single query's probe count — the VOLUME complexity
    /// actually exercised.
    MaxProbes,
    /// Far probes (identifier lookups) in the LCA model, counted
    /// separately per Theorem 2.12's distinction.
    FarProbes,
    /// Messages sent by synchronous executors.
    Messages,
    /// Nodes of the simulated graph or grid.
    Nodes,
    /// Edges of the simulated graph.
    Edges,
    /// Queries answered (one per node in whole-graph runs).
    Queries,
    /// Total nodes materialized across all views/balls/windows — the
    /// simulator's actual work, which for a radius-`T` run on a tree is
    /// the paper's `O(Δ^T)` view-size bound made measurable.
    ViewNodes,
    /// Node-query memo hits (round-elimination engine).
    MemoHits,
    /// Node-query memo misses.
    MemoMisses,
    /// Labels interned into a derived universe before restriction.
    LabelsInterned,
    /// Labels surviving the usefulness restriction.
    LabelsAlive,
    /// Candidate node configurations enumerated by the restriction.
    Configurations,
    /// Pipeline steps taken (`f`-steps of a tower, sparsification
    /// levels of a synthesized algorithm, ...).
    Steps,
    /// The earliest level whose extensional table equals this one —
    /// present only when a round-elimination fixpoint was certified.
    FixpointOf,
    /// Automaton states (path/cycle classifier).
    States,
    /// Monte-Carlo trials run.
    Trials,
    /// Constraint violations found by a verifier.
    Violations,
    /// Node faults recorded by a fault-injected (degraded) run.
    Faults,
    /// Attempts re-driven by a retry supervisor after a failure.
    Retries,
    /// Tower snapshots taken (and round-tripped) by the recovery layer.
    Checkpoints,
    /// Mending rounds spent by a certify/repair pass (0 when the
    /// labeling verified on the first try).
    Repairs,
    /// Nodes whose half-edge labels a repair pass rewrote from the
    /// fault-free reference run.
    RepairedNodes,
    /// Shards the partitioned executor split the graph into.
    Shards,
    /// Boundary-exchange supersteps executed across all shards (one per
    /// shard per round, so `Supersteps = Shards × Rounds` on a clean
    /// run).
    Supersteps,
    /// Messages that crossed a shard boundary (a subset of
    /// [`Messages`](Counter::Messages)).
    HaloMessages,
    /// Bytes of halo payload exchanged, derived as message count ×
    /// message size — a count, not a measurement.
    HaloBytes,
    /// Whole-shard losses injected (or caught) during a sharded run.
    ShardCrashes,
    /// Crashed shards rebuilt from their snapshot plus retained halos.
    ShardRebuilds,
}

impl Counter {
    /// Every counter, in canonical (serialization) order.
    pub const ALL: &'static [Counter] = &[
        Counter::Rounds,
        Counter::Radius,
        Counter::Probes,
        Counter::MaxProbes,
        Counter::FarProbes,
        Counter::Messages,
        Counter::Nodes,
        Counter::Edges,
        Counter::Queries,
        Counter::ViewNodes,
        Counter::MemoHits,
        Counter::MemoMisses,
        Counter::LabelsInterned,
        Counter::LabelsAlive,
        Counter::Configurations,
        Counter::Steps,
        Counter::FixpointOf,
        Counter::States,
        Counter::Trials,
        Counter::Violations,
        Counter::Faults,
        Counter::Retries,
        Counter::Checkpoints,
        Counter::Repairs,
        Counter::RepairedNodes,
        Counter::Shards,
        Counter::Supersteps,
        Counter::HaloMessages,
        Counter::HaloBytes,
        Counter::ShardCrashes,
        Counter::ShardRebuilds,
    ];

    /// The stable kebab-case name used in JSON and fingerprints.
    pub fn as_str(self) -> &'static str {
        match self {
            Counter::Rounds => "rounds",
            Counter::Radius => "radius",
            Counter::Probes => "probes",
            Counter::MaxProbes => "max-probes",
            Counter::FarProbes => "far-probes",
            Counter::Messages => "messages",
            Counter::Nodes => "nodes",
            Counter::Edges => "edges",
            Counter::Queries => "queries",
            Counter::ViewNodes => "view-nodes",
            Counter::MemoHits => "memo-hits",
            Counter::MemoMisses => "memo-misses",
            Counter::LabelsInterned => "labels-interned",
            Counter::LabelsAlive => "labels-alive",
            Counter::Configurations => "configurations",
            Counter::Steps => "steps",
            Counter::FixpointOf => "fixpoint-of",
            Counter::States => "states",
            Counter::Trials => "trials",
            Counter::Violations => "violations",
            Counter::Faults => "faults",
            Counter::Retries => "retries",
            Counter::Checkpoints => "checkpoints",
            Counter::Repairs => "repairs",
            Counter::RepairedNodes => "repaired-nodes",
            Counter::Shards => "shards",
            Counter::Supersteps => "supersteps",
            Counter::HaloMessages => "halo-messages",
            Counter::HaloBytes => "halo-bytes",
            Counter::ShardCrashes => "shard-crashes",
            Counter::ShardRebuilds => "shard-rebuilds",
        }
    }

    /// The counter with the given kebab-case name (the inverse of
    /// [`Counter::as_str`]), used when reading serialized spans back in.
    pub fn from_name(name: &str) -> Option<Counter> {
        Counter::ALL.iter().copied().find(|c| c.as_str() == name)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn all_covers_every_counter_with_unique_names() {
        let names: BTreeSet<&str> = Counter::ALL.iter().map(|c| c.as_str()).collect();
        assert_eq!(names.len(), Counter::ALL.len(), "duplicate counter name");
        for c in Counter::ALL {
            assert_eq!(format!("{c}"), c.as_str());
        }
    }

    #[test]
    fn canonical_order_is_sorted_by_declaration() {
        let mut sorted = Counter::ALL.to_vec();
        sorted.sort();
        assert_eq!(sorted.as_slice(), Counter::ALL);
    }

    #[test]
    fn from_name_round_trips_every_counter() {
        for &c in Counter::ALL {
            assert_eq!(Counter::from_name(c.as_str()), Some(c));
        }
        assert_eq!(Counter::from_name("no-such-counter"), None);
    }
}
