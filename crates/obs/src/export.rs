//! Render traces and event logs for external tooling.
//!
//! Three formats, all hand-rolled (the workspace is dependency-free):
//!
//! * [`chrome_trace`] — Chrome trace-event JSON, loadable in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev): spans
//!   become complete (`"ph": "X"`) slices, event-log entries become
//!   instant (`"ph": "i"`) markers spread across the root slice.
//! * [`folded_stacks`] — flamegraph folded-stacks text
//!   (`root;child;leaf value`), one line per span, weighted by
//!   *self* time so a flamegraph renders inclusive time correctly.
//! * [`prometheus_text`] — Prometheus-style text exposition of every
//!   counter and histogram in a [`Registry`], labeled by stage and
//!   span path.
//!
//! # Determinism
//!
//! Wall clocks are the only nondeterministic quantity in a trace, so
//! each exporter takes an [`ExportMode`]: [`ExportMode::Wall`] uses
//! measured micro­seconds, [`ExportMode::Deterministic`] derives every
//! duration from the counters instead (a span's self-weight is
//! `1 + Σ counter values`, its duration the self-weight plus its
//! children's). Deterministic output is a pure function of the trace
//! fingerprint — that is what the golden fixtures under `fixtures/`
//! pin down. Prometheus exposition contains no times at all and needs
//! no mode.

use std::fmt::Write as _;

use crate::counter::Counter;
use crate::event::EventLog;
use crate::registry::Registry;
use crate::trace::{SpanRecord, Trace};

/// How exported durations are derived.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExportMode {
    /// Measured wall-clock microseconds. Faithful, not reproducible.
    Wall,
    /// Counter-derived synthetic durations: reproducible across runs,
    /// machines, and thread counts. A span's self-weight is
    /// `1 + Σ own counter values`; its duration adds its children's.
    Deterministic,
}

/// A span's own weight (excluding children) in export ticks.
fn self_weight(span: &SpanRecord, mode: ExportMode) -> u64 {
    match mode {
        ExportMode::Wall => {
            let own = span.wall().as_micros() as u64;
            let children: u64 = span
                .children()
                .iter()
                .map(|c| c.wall().as_micros() as u64)
                .sum();
            own.saturating_sub(children)
        }
        ExportMode::Deterministic => {
            1 + span.counters().map(|(_, v)| v).sum::<u64>()
                + span.histograms().map(|(_, h)| h.count()).sum::<u64>()
        }
    }
}

/// A span's full duration (including children) in export ticks.
fn duration(span: &SpanRecord, mode: ExportMode) -> u64 {
    match mode {
        ExportMode::Wall => span.wall().as_micros() as u64,
        ExportMode::Deterministic => {
            self_weight(span, mode)
                + span
                    .children()
                    .iter()
                    .map(|c| duration(c, mode))
                    .sum::<u64>()
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn emit_slice(out: &mut Vec<String>, span: &SpanRecord, start: u64, budget: u64, mode: ExportMode) {
    let mut args = String::new();
    for (i, (c, v)) in span.counters().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(args, "{sep}\"{}\": {v}", c.as_str());
    }
    out.push(format!(
        "{{\"name\": \"{}\", \"ph\": \"X\", \"ts\": {start}, \"dur\": {budget}, \
         \"pid\": 0, \"tid\": 0, \"args\": {{{args}}}}}",
        json_escape(span.name()),
    ));
    // Children are laid out sequentially from the parent's start, each
    // clamped to the time remaining in the parent — so every slice nests
    // inside its parent's interval by construction.
    let mut cursor = start;
    let end = start + budget;
    for child in span.children() {
        let want = duration(child, mode);
        let avail = end.saturating_sub(cursor);
        let slot = want.min(avail);
        emit_slice(out, child, cursor, slot, mode);
        cursor += slot;
    }
}

/// Renders a trace (and optionally its event log) as Chrome trace-event
/// JSON: `{"traceEvents": [...]}`. Load the output in `chrome://tracing`
/// or drop it onto <https://ui.perfetto.dev>.
pub fn chrome_trace(trace: &Trace, events: Option<&EventLog>, mode: ExportMode) -> String {
    let root = trace.root();
    let total = duration(root, mode).max(1);
    let mut slices = Vec::new();
    emit_slice(&mut slices, root, 0, total, mode);
    if let Some(log) = events {
        let stored = log.events();
        let n = stored.len() as u64;
        for (i, event) in stored.iter().enumerate() {
            // Spread instants across the root slice in log order.
            let ts = if n <= 1 {
                0
            } else {
                (i as u64).saturating_mul(total.saturating_sub(1)) / (n - 1)
            };
            slices.push(format!(
                "{{\"name\": \"{}\", \"ph\": \"i\", \"ts\": {ts}, \"s\": \"g\", \
                 \"pid\": 0, \"tid\": 0, \"args\": {}}}",
                event.kind(),
                event.to_json(),
            ));
        }
    }
    let mut out = String::from("{\"traceEvents\": [\n");
    for (i, slice) in slices.iter().enumerate() {
        out.push_str(slice);
        if i + 1 < slices.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("], \"displayTimeUnit\": \"ms\"}\n");
    out
}

fn emit_folded(out: &mut String, span: &SpanRecord, stack: &mut String, mode: ExportMode) {
    let before = stack.len();
    if !stack.is_empty() {
        stack.push(';');
    }
    // ';' separates stack frames in the folded format.
    stack.push_str(&span.name().replace(';', ":"));
    let _ = writeln!(out, "{stack} {}", self_weight(span, mode));
    for child in span.children() {
        emit_folded(out, child, stack, mode);
    }
    stack.truncate(before);
}

/// Renders a trace as flamegraph folded stacks: one line per span,
/// `root;child;leaf self-weight`. Feed the output to any
/// `flamegraph.pl`-compatible renderer (or Perfetto's flamegraph view).
pub fn folded_stacks(trace: &Trace, mode: ExportMode) -> String {
    let mut out = String::new();
    let mut stack = String::new();
    emit_folded(&mut out, trace.root(), &mut stack, mode);
    out
}

fn prom_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn metric_name(counter: Counter) -> String {
    format!("lcl_{}", counter.as_str().replace('-', "_"))
}

type Series = Vec<(String, String, u64)>;

fn collect_series(
    span: &SpanRecord,
    stage: &str,
    path: &mut String,
    counters: &mut std::collections::BTreeMap<Counter, Series>,
    hists: &mut std::collections::BTreeMap<Counter, Vec<(String, String, crate::Histogram)>>,
) {
    let before = path.len();
    if !path.is_empty() {
        path.push('>');
    }
    path.push_str(span.name());
    for (c, v) in span.counters() {
        counters
            .entry(c)
            .or_default()
            .push((stage.to_string(), path.clone(), v));
    }
    for (c, h) in span.histograms() {
        hists
            .entry(c)
            .or_default()
            .push((stage.to_string(), path.clone(), h.clone()));
    }
    for child in span.children() {
        collect_series(child, stage, path, counters, hists);
    }
    path.truncate(before);
}

/// Renders every counter and histogram in a [`Registry`] as
/// Prometheus-style text exposition. Each series is labeled with its
/// registry `stage` and the `>`-joined `span` path; histograms follow
/// the cumulative `_bucket`/`_sum`/`_count` convention.
pub fn prometheus_text(registry: &Registry) -> String {
    prometheus_text_with_events(registry, &[])
}

/// Like [`prometheus_text`], additionally exposing the health of the
/// given labeled [`EventLog`]s: total emissions (`lcl_event_log_seen`),
/// events not retrievable (`lcl_event_log_dropped`, split into
/// `lcl_event_log_dropped_sampling` and
/// `lcl_event_log_dropped_capacity` by cause), and events currently
/// stored (`lcl_event_log_stored`). A chaos soak that overflows its
/// ring is visible here rather than silently truncated — scrape
/// `lcl_event_log_dropped_capacity` and alert on growth (sampling
/// drops are configured, not pathological).
pub fn prometheus_text_with_events(registry: &Registry, logs: &[(&str, &EventLog)]) -> String {
    let mut out = prometheus_registry_text(registry);
    if logs.is_empty() {
        return out;
    }
    type Series = fn(&EventLog) -> u64;
    let series: [(&str, &str, Series); 5] = [
        (
            "lcl_event_log_seen",
            "Events emitted into the log, stored or not.",
            |log| log.seen(),
        ),
        (
            "lcl_event_log_dropped",
            "Events not retrievable from the log (dropped_sampling plus dropped_capacity).",
            |log| log.dropped(),
        ),
        (
            "lcl_event_log_dropped_sampling",
            "Emissions discarded by the sampling grid before storage.",
            |log| log.dropped_sampling(),
        ),
        (
            "lcl_event_log_dropped_capacity",
            "Stored events evicted by a full ring (or discarded by a zero-capacity ring).",
            |log| log.dropped_capacity(),
        ),
        (
            "lcl_event_log_stored",
            "Events currently held in the ring.",
            |log| log.len() as u64,
        ),
    ];
    for (name, help, value) in series {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} gauge");
        for (label, log) in logs {
            let _ = writeln!(
                out,
                "{name}{{log=\"{}\"}} {}",
                prom_escape(label),
                value(log)
            );
        }
    }
    out
}

fn prometheus_registry_text(registry: &Registry) -> String {
    let snapshot = registry.snapshot();
    let mut counters: std::collections::BTreeMap<Counter, Series> = Default::default();
    let mut hists: std::collections::BTreeMap<Counter, Vec<(String, String, crate::Histogram)>> =
        Default::default();
    for (stage, trace) in &snapshot {
        let mut path = String::new();
        collect_series(trace.root(), stage, &mut path, &mut counters, &mut hists);
    }
    let mut out = String::new();
    for &counter in Counter::ALL {
        if let Some(series) = counters.get(&counter) {
            let name = metric_name(counter);
            let _ = writeln!(
                out,
                "# HELP {name} Per-span value of the `{}` counter.",
                counter.as_str()
            );
            let _ = writeln!(out, "# TYPE {name} counter");
            for (stage, span, value) in series {
                let _ = writeln!(
                    out,
                    "{name}{{stage=\"{}\",span=\"{}\"}} {value}",
                    prom_escape(stage),
                    prom_escape(span),
                );
            }
        }
        if let Some(series) = hists.get(&counter) {
            let name = format!("{}_dist", metric_name(counter));
            let _ = writeln!(
                out,
                "# HELP {name} Distribution of per-observation `{}` values.",
                counter.as_str()
            );
            let _ = writeln!(out, "# TYPE {name} histogram");
            for (stage, span, hist) in series {
                let labels = format!(
                    "stage=\"{}\",span=\"{}\"",
                    prom_escape(stage),
                    prom_escape(span)
                );
                let mut cumulative = 0u64;
                for (le, count) in hist.buckets() {
                    cumulative += count;
                    let _ = writeln!(out, "{name}_bucket{{{labels},le=\"{le}\"}} {cumulative}");
                }
                let _ = writeln!(
                    out,
                    "{name}_bucket{{{labels},le=\"+Inf\"}} {}",
                    hist.count()
                );
                let _ = writeln!(out, "{name}_sum{{{labels}}} {}", hist.sum());
                let _ = writeln!(out, "{name}_count{{{labels}}} {}", hist.count());
            }
            // Quantile estimates as a companion summary: values are the
            // power-of-two bucket upper bounds (see
            // `Histogram::quantile`), so they round up to a boundary.
            let qname = format!("{}_q", metric_name(counter));
            let _ = writeln!(
                out,
                "# HELP {qname} Quantile estimates of per-observation `{}` values \
                 (power-of-two bucket upper bounds).",
                counter.as_str()
            );
            let _ = writeln!(out, "# TYPE {qname} summary");
            for (stage, span, hist) in series {
                let labels = format!(
                    "stage=\"{}\",span=\"{}\"",
                    prom_escape(stage),
                    prom_escape(span)
                );
                for (q, tag) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                    if let Some(v) = hist.quantile(q) {
                        let _ = writeln!(out, "{qname}{{{labels},quantile=\"{tag}\"}} {v}");
                    }
                }
                let _ = writeln!(out, "{qname}_sum{{{labels}}} {}", hist.sum());
                let _ = writeln!(out, "{qname}_count{{{labels}}} {}", hist.count());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::trace::Span;
    use std::time::Duration;

    fn two_level() -> Trace {
        let child_a = SpanRecord::with_wall(
            "phase-a",
            Duration::from_micros(30),
            [(Counter::Probes, 4)],
            vec![],
        );
        let child_b = SpanRecord::with_wall(
            "phase-b",
            Duration::from_micros(50),
            [(Counter::Rounds, 2)],
            vec![],
        );
        let root = SpanRecord::with_wall(
            "run",
            Duration::from_micros(100),
            [(Counter::Nodes, 8)],
            vec![child_a, child_b],
        );
        Trace::new(root)
    }

    #[test]
    fn chrome_trace_is_valid_shaped_json() {
        let log = EventLog::new(8);
        log.record(Event::RoundStart { round: 0 });
        log.record(Event::RoundEnd {
            round: 0,
            messages: 3,
        });
        let json = chrome_trace(&two_level(), Some(&log), ExportMode::Wall);
        assert!(json.starts_with("{\"traceEvents\": ["));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 3);
        assert_eq!(json.matches("\"ph\": \"i\"").count(), 2);
        assert!(json.contains("\"name\": \"phase-b\""));
    }

    #[test]
    fn deterministic_mode_ignores_the_clock() {
        let slow = || {
            let mut s = Span::start("root");
            s.set(Counter::Probes, 3);
            std::thread::sleep(Duration::from_millis(1));
            Trace::new(s.finish())
        };
        let a = chrome_trace(&slow(), None, ExportMode::Deterministic);
        let b = chrome_trace(&slow(), None, ExportMode::Deterministic);
        assert_eq!(a, b);
        assert_eq!(
            folded_stacks(&slow(), ExportMode::Deterministic),
            folded_stacks(&slow(), ExportMode::Deterministic)
        );
    }

    #[test]
    fn folded_stacks_weight_is_self_time() {
        let text = folded_stacks(&two_level(), ExportMode::Wall);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines, vec!["run 20", "run;phase-a 30", "run;phase-b 50"]);
    }

    #[test]
    fn prometheus_exposition_lists_counters_and_histograms() {
        let reg = Registry::new();
        reg.record("e9/test", two_level());
        let mut span = Span::start("queries");
        for v in [1u64, 2, 2] {
            span.observe(Counter::Probes, v);
        }
        reg.record("e9/hist", Trace::new(span.finish()));
        let text = prometheus_text(&reg);
        assert!(text.contains("# TYPE lcl_probes counter"));
        assert!(text.contains("lcl_probes{stage=\"e9/test\",span=\"run>phase-a\"} 4"));
        assert!(text.contains("# TYPE lcl_probes_dist histogram"));
        assert!(
            text.contains("lcl_probes_dist_bucket{stage=\"e9/hist\",span=\"queries\",le=\"1\"} 1")
        );
        assert!(
            text.contains("lcl_probes_dist_bucket{stage=\"e9/hist\",span=\"queries\",le=\"3\"} 3")
        );
        assert!(text.contains("lcl_probes_dist_count{stage=\"e9/hist\",span=\"queries\"} 3"));
        assert!(text.contains("lcl_probes_dist_sum{stage=\"e9/hist\",span=\"queries\"} 5"));
        // Quantile summary lines: observations 1, 2, 2 -> p50 is the
        // second value (2), reported as its bucket bound 3.
        assert!(text.contains("# TYPE lcl_probes_q summary"));
        assert!(
            text.contains("lcl_probes_q{stage=\"e9/hist\",span=\"queries\",quantile=\"0.5\"} 3")
        );
        assert!(
            text.contains("lcl_probes_q{stage=\"e9/hist\",span=\"queries\",quantile=\"0.99\"} 3")
        );
        assert!(text.contains("lcl_probes_q_count{stage=\"e9/hist\",span=\"queries\"} 3"));
    }

    #[test]
    fn prometheus_exposes_event_log_drops() {
        let reg = Registry::new();
        reg.record("chaos/e1", two_level());
        let log = EventLog::new(2);
        for round in 0..5 {
            log.record(Event::RoundStart { round });
        }
        let text = prometheus_text_with_events(&reg, &[("chaos", &log)]);
        assert!(text.contains("# TYPE lcl_event_log_dropped gauge"));
        assert!(text.contains("lcl_event_log_seen{log=\"chaos\"} 5"));
        assert!(text.contains("lcl_event_log_dropped{log=\"chaos\"} 3"));
        assert!(text.contains("lcl_event_log_dropped_sampling{log=\"chaos\"} 0"));
        assert!(text.contains("lcl_event_log_dropped_capacity{log=\"chaos\"} 3"));
        assert!(text.contains("lcl_event_log_stored{log=\"chaos\"} 2"));

        // A sampled log attributes its drops to the sampling grid.
        let sampled = EventLog::with_sampling(16, 2);
        for round in 0..6 {
            sampled.record(Event::RoundStart { round });
        }
        let text = prometheus_text_with_events(&reg, &[("sampled", &sampled)]);
        assert!(text.contains("lcl_event_log_dropped_sampling{log=\"sampled\"} 3"));
        assert!(text.contains("lcl_event_log_dropped_capacity{log=\"sampled\"} 0"));
        // The registry half is unchanged from the plain exposition.
        assert!(text.starts_with(&prometheus_text(&reg)));
        // No logs -> bit-identical to the plain exposition (fixtures).
        assert_eq!(
            prometheus_text_with_events(&reg, &[]),
            prometheus_text(&reg)
        );
    }
}
