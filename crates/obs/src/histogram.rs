//! Distribution counters with deterministic power-of-two buckets.
//!
//! Totals hide shape: "400 probes over 100 queries" could be a uniform
//! 4-per-query or one pathological 301-probe query. A [`Histogram`]
//! keeps the distribution — observed values land in buckets with fixed
//! boundaries `0, 1, 2, 4, 8, ...` (bucket `i ≥ 1` covers
//! `[2^(i-1), 2^i - 1]`), so the rendering is a pure function of the
//! multiset of observations. Order of observation never matters, which
//! keeps [`Trace::fingerprint`](crate::Trace::fingerprint)
//! scheduling-independent when histograms are attached to spans.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A bucketed distribution of `u64` observations.
///
/// Buckets are powers of two: bucket 0 holds exactly the value 0 and
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i - 1]`. Boundaries are
/// fixed at the type level — merging or re-observing in any order yields
/// the identical histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Bucket index → count. Sparse: only non-empty buckets are stored.
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`.
    fn bucket_index(value: u64) -> u32 {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros()
        }
    }

    /// Inclusive upper bound of a bucket (`0, 1, 3, 7, 15, ...`).
    pub fn bucket_upper_bound(index: u32) -> u64 {
        if index == 0 {
            0
        } else if index >= 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        *self.buckets.entry(Self::bucket_index(value)).or_insert(0) += 1;
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Whether nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Non-empty buckets as `(inclusive upper bound, count)`, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .map(|(&i, &c)| (Self::bucket_upper_bound(i), c))
    }

    /// Quantile estimate: the inclusive upper bound of the bucket
    /// containing the `ceil(q·count)`-th smallest observation (1-based),
    /// or `None` when the histogram is empty. Since only bucket
    /// membership survives observation, the estimate rounds *up* to the
    /// bucket boundary — p50 of `[1, 2, 3]` reports 3, the top of the
    /// `[2, 3]` bucket. `q` is clamped to `[0, 1]`; `q = 0` reports the
    /// smallest bucket's bound.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut cumulative = 0u64;
        for (le, c) in self.buckets() {
            cumulative += c;
            if cumulative >= rank {
                return Some(le);
            }
        }
        // Unreachable in practice: the buckets always sum to `count`.
        None
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (&i, &c) in &other.buckets {
            *self.buckets.entry(i).or_insert(0) += c;
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Canonical one-line rendering used inside trace fingerprints:
    /// `[le0:c0 le1:c1 ...]|count|sum`.
    pub fn fingerprint(&self) -> String {
        let mut out = String::from("[");
        for (i, (le, c)) in self.buckets().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            let _ = write!(out, "{le}:{c}");
        }
        let _ = write!(out, "]|{}|{}", self.count, self.sum);
        out
    }

    /// JSON rendering: `{"count": .., "sum": .., "buckets": {"le": n}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"count\": {}, \"sum\": {}, \"buckets\": {{",
            self.count, self.sum
        );
        for (i, (le, c)) in self.buckets().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{le}\": {c}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        let pairs = [
            (0u64, 0u64),
            (1, 1),
            (2, 3),
            (3, 3),
            (4, 7),
            (7, 7),
            (8, 15),
            (1023, 1023),
            (1024, 2047),
        ];
        for (value, le) in pairs {
            let mut h = Histogram::new();
            h.observe(value);
            assert_eq!(h.buckets().next(), Some((le, 1)), "value {value}");
        }
    }

    #[test]
    fn order_of_observation_is_irrelevant() {
        let values = [0u64, 5, 17, 17, 2, 900, 1, 0];
        let mut forward = Histogram::new();
        let mut backward = Histogram::new();
        for &v in &values {
            forward.observe(v);
        }
        for &v in values.iter().rev() {
            backward.observe(v);
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.fingerprint(), backward.fingerprint());
        assert_eq!(forward.count(), 8);
        assert_eq!(forward.sum(), values.iter().sum::<u64>());
    }

    #[test]
    fn merge_equals_joint_observation() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut joint = Histogram::new();
        for v in [1u64, 2, 3] {
            a.observe(v);
            joint.observe(v);
        }
        for v in [10u64, 20] {
            b.observe(v);
            joint.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, joint);
    }

    #[test]
    fn quantiles_round_up_to_bucket_boundaries() {
        assert_eq!(Histogram::new().quantile(0.5), None);

        // Values 1..=8 land in buckets le=1 (1), le=3 (2,3),
        // le=7 (4..=7), le=15 (8).
        let mut h = Histogram::new();
        for v in 1u64..=8 {
            h.observe(v);
        }
        // p50: rank ceil(0.5*8)=4 -> 4th value is 4 -> bucket le=7.
        assert_eq!(h.quantile(0.5), Some(7));
        // p90: rank ceil(0.9*8)=8 -> the 8 -> bucket le=15.
        assert_eq!(h.quantile(0.9), Some(15));
        assert_eq!(h.quantile(0.99), Some(15));
        // q=0 clamps to rank 1 -> smallest bucket.
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(1.0), Some(15));
        // Out-of-range q is clamped, not an error.
        assert_eq!(h.quantile(-3.0), Some(1));
        assert_eq!(h.quantile(42.0), Some(15));
    }

    #[test]
    fn quantile_rank_rounding_at_bucket_edges() {
        // Three observations: exactly at rank boundaries. Values 1, 2,
        // 3: p50 rank ceil(1.5)=2 -> 2 -> bucket le=3 (rounds up past
        // the true median's value to its bucket bound).
        let mut h = Histogram::new();
        for v in [1u64, 2, 3] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.5), Some(3));
        // A single observation answers every quantile with its bucket.
        let mut one = Histogram::new();
        one.observe(0);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(one.quantile(q), Some(0), "q={q}");
        }
    }

    #[test]
    fn renderings_are_stable() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 2, 5] {
            h.observe(v);
        }
        assert_eq!(h.fingerprint(), "[0:1 1:1 3:2 7:1]|5|10");
        let json = h.to_json();
        assert!(json.contains("\"count\": 5"));
        assert!(json.contains("\"sum\": 10"));
        assert!(json.contains("\"3\": 2"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
