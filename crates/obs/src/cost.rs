//! Deterministic cost accounting derived from the event stream.
//!
//! Wall clocks measure machines; the paper's landscape is stated in
//! *operations* — rounds of communication, probes answered, views
//! materialized. A [`CostModel`] folds the typed [`Event`] stream into
//! per-kind operation counts ([`CostKind`]) plus a per-node work tally,
//! and nothing else: no `std::time` import is allowed in this module
//! (enforced textually by `scripts/check.sh`), so a cost is a pure
//! function of what the simulation *did*.
//!
//! Because addition is commutative, the fold is order-independent: two
//! runs that emit the same multiset of events — e.g. the parallel RE
//! engine at 1, 2, and 8 threads — produce bit-identical cost models
//! even though their event interleavings differ. That makes
//! [`CostModel::fingerprint`] a determinism oracle where the raw event
//! sequence is not (see the event-log module docs), and makes counts
//! the right quantity to regress against theory curves
//! (`lcl_bench::curves`) instead of noisy milliseconds.
//!
//! Every [`EventLog`](crate::EventLog) accumulates a `CostModel`
//! *before* its sampling and capacity filters, so the totals are exact
//! even when the ring stores almost nothing — a zero-capacity log is a
//! cheap cost-only tally:
//!
//! ```
//! use lcl_obs::{CostKind, Event, EventLog};
//!
//! let log = EventLog::new(0); // stores nothing, counts everything
//! log.record(Event::Probe { query: 3, j: 0, port: 1 });
//! log.record(Event::Probe { query: 4, j: 1, port: 0 });
//! let cost = log.cost_model();
//! assert_eq!(cost.get(CostKind::Probe), 2);
//! assert_eq!(cost.node_averaged(), Some(1.0));
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::Event;

/// The typed operation classes a run is charged for.
///
/// Each kind is fed by one event variant: `Probe` by [`Event::Probe`],
/// `ViewMaterialized` by [`Event::ViewMaterialized`], `MemoLookup` by
/// [`Event::MemoLookup`], `Round` by [`Event::RoundStart`], and
/// `Message` by the `messages` total of [`Event::RoundEnd`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CostKind {
    /// Probes answered through a VOLUME/LCA probe session.
    Probe,
    /// Radius-`T` views (balls or grid windows) materialized.
    ViewMaterialized,
    /// Round-elimination memo-cache consultations.
    MemoLookup,
    /// Synchronous communication rounds executed.
    Round,
    /// Messages delivered across all rounds.
    Message,
}

impl CostKind {
    /// Every kind, in declaration order (the rendering order).
    pub const ALL: [CostKind; 5] = [
        CostKind::Probe,
        CostKind::ViewMaterialized,
        CostKind::MemoLookup,
        CostKind::Round,
        CostKind::Message,
    ];

    /// Stable kebab-case name.
    pub fn as_str(self) -> &'static str {
        match self {
            CostKind::Probe => "probe",
            CostKind::ViewMaterialized => "view-materialized",
            CostKind::MemoLookup => "memo-lookup",
            CostKind::Round => "round",
            CostKind::Message => "message",
        }
    }
}

/// Order-independent operation counts for one run, folded from
/// [`Event`]s.
///
/// Alongside the per-kind totals the model keeps a per-node work tally
/// (probes charged to their querying node, views charged their size at
/// the view's center), which is what node-averaged complexity — the
/// distinct axis of arXiv:2405.01366 — is computed from.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CostModel {
    counts: [u64; CostKind::ALL.len()],
    per_node: BTreeMap<u64, u64>,
}

impl CostModel {
    /// An empty model (all counts zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds every event of `events` into a fresh model.
    pub fn from_events(events: &[Event]) -> Self {
        let mut model = Self::new();
        for event in events {
            model.record(event);
        }
        model
    }

    /// Charges one event to the model. Events that carry no cost
    /// semantics (faults, retries, checkpoints, level completions,
    /// round ends beyond their message total) are ignored.
    pub fn record(&mut self, event: &Event) {
        match event {
            Event::Probe { query, .. } => {
                self.add(CostKind::Probe, 1);
                *self.per_node.entry(*query).or_insert(0) += 1;
            }
            Event::ViewMaterialized { node, size, .. } => {
                self.add(CostKind::ViewMaterialized, 1);
                *self.per_node.entry(*node).or_insert(0) += size;
            }
            Event::MemoLookup { .. } => self.add(CostKind::MemoLookup, 1),
            Event::RoundStart { .. } => self.add(CostKind::Round, 1),
            Event::RoundEnd { messages, .. } => self.add(CostKind::Message, *messages),
            Event::LevelComplete { .. }
            | Event::Fault { .. }
            | Event::Retry { .. }
            | Event::Checkpoint { .. }
            | Event::ShardStep { .. } => {}
        }
    }

    fn add(&mut self, kind: CostKind, amount: u64) {
        let slot = &mut self.counts[kind as usize];
        *slot = slot.saturating_add(amount);
    }

    /// Total for one operation class.
    pub fn get(&self, kind: CostKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Sum over all operation classes.
    pub fn total(&self) -> u64 {
        self.counts.iter().fold(0u64, |a, &v| a.saturating_add(v))
    }

    /// Whether nothing has been charged yet.
    pub fn is_empty(&self) -> bool {
        self.total() == 0 && self.per_node.is_empty()
    }

    /// Distinct nodes that were charged per-node work.
    pub fn node_count(&self) -> usize {
        self.per_node.len()
    }

    /// Total per-node work (probes issued plus view nodes touched).
    pub fn node_total(&self) -> u64 {
        self.per_node
            .values()
            .fold(0u64, |a, &v| a.saturating_add(v))
    }

    /// Mean per-node work across the charged nodes, or `None` when no
    /// event carried a node id. This is the run's node-averaged cost.
    pub fn node_averaged(&self) -> Option<f64> {
        if self.per_node.is_empty() {
            return None;
        }
        Some(self.node_total() as f64 / self.per_node.len() as f64)
    }

    /// Adds every count of `other` into `self` (per-node tallies merge
    /// by node id).
    pub fn merge(&mut self, other: &CostModel) {
        for kind in CostKind::ALL {
            self.add(kind, other.get(kind));
        }
        for (&node, &work) in &other.per_node {
            *self.per_node.entry(node).or_insert(0) += work;
        }
    }

    /// A deterministic one-line rendering of every count:
    /// `[probe:0 view-materialized:0 ...]|nodes:0|node-work:0`.
    /// Bit-identical across runs emitting the same event multiset.
    pub fn fingerprint(&self) -> String {
        let mut out = String::from("[");
        for (i, kind) in CostKind::ALL.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            let _ = write!(out, "{}:{}", kind.as_str(), self.get(*kind));
        }
        let _ = write!(
            out,
            "]|nodes:{}|node-work:{}",
            self.node_count(),
            self.node_total()
        );
        out
    }

    /// JSON rendering: per-kind counts plus the node-averaged summary
    /// (`null` when no node ids were seen).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for kind in CostKind::ALL {
            let _ = write!(
                out,
                "\"{}\": {}, ",
                kind.as_str().replace('-', "_"),
                self.get(kind)
            );
        }
        let _ = write!(out, "\"nodes\": {}, ", self.node_count());
        match self.node_averaged() {
            Some(avg) => {
                let _ = write!(out, "\"node_averaged\": {avg}");
            }
            None => out.push_str("\"node_averaged\": null"),
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::RoundStart { round: 0 },
            Event::RoundEnd {
                round: 0,
                messages: 6,
            },
            Event::RoundStart { round: 1 },
            Event::RoundEnd {
                round: 1,
                messages: 4,
            },
            Event::Probe {
                query: 7,
                j: 0,
                port: 0,
            },
            Event::Probe {
                query: 7,
                j: 1,
                port: 1,
            },
            Event::Probe {
                query: 9,
                j: 0,
                port: 0,
            },
            Event::ViewMaterialized {
                node: 3,
                radius: 2,
                size: 5,
            },
            Event::MemoLookup { hit: true },
            Event::MemoLookup { hit: false },
            // Cost-free events.
            Event::LevelComplete {
                level: 1,
                labels: 2,
                configs: 3,
            },
            Event::Retry {
                stage: "s".to_string(),
                attempt: 1,
                backoff_ms: 1,
            },
            Event::ShardStep {
                shard: 0,
                superstep: 0,
                halo_messages: 9,
                halo_bytes: 72,
            },
        ]
    }

    #[test]
    fn counts_map_events_to_kinds() {
        let cost = CostModel::from_events(&sample_events());
        assert_eq!(cost.get(CostKind::Round), 2);
        assert_eq!(cost.get(CostKind::Message), 10);
        assert_eq!(cost.get(CostKind::Probe), 3);
        assert_eq!(cost.get(CostKind::ViewMaterialized), 1);
        assert_eq!(cost.get(CostKind::MemoLookup), 2);
        assert_eq!(cost.total(), 18);
    }

    #[test]
    fn node_averaging_covers_probes_and_view_sizes() {
        let cost = CostModel::from_events(&sample_events());
        // Node 7: two probes; node 9: one probe; node 3: a 5-node view.
        assert_eq!(cost.node_count(), 3);
        assert_eq!(cost.node_total(), 8);
        assert_eq!(cost.node_averaged(), Some(8.0 / 3.0));
        assert_eq!(CostModel::new().node_averaged(), None);
    }

    #[test]
    fn fold_is_order_independent() {
        let events = sample_events();
        let forward = CostModel::from_events(&events);
        let mut reversed = events.clone();
        reversed.reverse();
        let backward = CostModel::from_events(&reversed);
        assert_eq!(forward, backward);
        assert_eq!(forward.fingerprint(), backward.fingerprint());
    }

    #[test]
    fn merge_adds_counts_and_tallies() {
        let mut a = CostModel::from_events(&sample_events());
        let b = CostModel::from_events(&sample_events());
        a.merge(&b);
        assert_eq!(a.get(CostKind::Probe), 6);
        assert_eq!(a.node_total(), 16);
        assert_eq!(a.node_count(), 3, "merging the same nodes adds work");
    }

    #[test]
    fn json_and_fingerprint_cover_every_kind() {
        let cost = CostModel::from_events(&sample_events());
        let json = cost.to_json();
        for kind in CostKind::ALL {
            assert!(
                json.contains(&kind.as_str().replace('-', "_")),
                "missing {} in {json}",
                kind.as_str()
            );
            assert!(cost.fingerprint().contains(kind.as_str()));
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(CostModel::new()
            .to_json()
            .contains("\"node_averaged\": null"));
    }
}
