//! The transition automaton of an LCL on oriented paths/cycles.
//!
//! Write a path solution as `x₁ y₁ | x₂ y₂ | ...` where `xᵢ, yᵢ` are the
//! labels on node `i`'s left and right half-edges. The constraints factor
//! into `{xᵢ, yᵢ} ∈ 𝒩²` (per node) and `{yᵢ, x_{i+1}} ∈ ℰ` (per edge), so
//! solutions are walks in the digraph with states `y` and transitions
//! `y → y'` iff `∃ x': {y, x'} ∈ ℰ ∧ {x', y'} ∈ 𝒩²`.

use lcl::{InLabel, LclProblem, OutLabel, Problem};

/// The state digraph of an LCL over its output labels.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Automaton {
    /// Number of states (= output labels).
    states: usize,
    /// Adjacency: `succ[y]` = all `y'` with `y → y'`.
    succ: Vec<Vec<usize>>,
    /// States allowed as the right half-edge of a degree-1 start node.
    starts: Vec<bool>,
    /// States `y` that can be followed by a final degree-1 node.
    accepts: Vec<bool>,
    /// Labels permitted by the (input-independent) `g` map.
    allowed: Vec<bool>,
}

/// Reasons the construction can be refused.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AutomatonError {
    /// The problem's `g` map differs between input labels: the procedure
    /// covers LCLs whose correctness ignores inputs (the decidability
    /// results for LCLs *with* inputs are PSPACE-hard, per Section 1.4).
    InputDependent,
    /// The problem is not defined for degree 2.
    WrongDegree,
}

impl std::fmt::Display for AutomatonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AutomatonError::InputDependent => {
                write!(f, "classification requires an input-independent LCL")
            }
            AutomatonError::WrongDegree => {
                write!(f, "paths and cycles need max degree at least 2")
            }
        }
    }
}

impl std::error::Error for AutomatonError {}

impl Automaton {
    /// Builds the automaton of a problem.
    ///
    /// # Errors
    ///
    /// See [`AutomatonError`].
    pub fn from_problem(p: &LclProblem) -> Result<Self, AutomatonError> {
        if p.max_degree() < 2 {
            return Err(AutomatonError::WrongDegree);
        }
        let states = p.output_alphabet().len();
        // Require g to be input-independent.
        let g0: Vec<bool> = (0..states)
            .map(|o| p.input_allows(InLabel(0), OutLabel(o as u32)))
            .collect();
        for i in 1..p.input_count() {
            for (o, &allowed) in g0.iter().enumerate() {
                if p.input_allows(InLabel(i as u32), OutLabel(o as u32)) != allowed {
                    return Err(AutomatonError::InputDependent);
                }
            }
        }

        let allowed = |o: usize| g0[o];
        let succ = (0..states)
            .map(|y| {
                (0..states)
                    .filter(|&yp| {
                        allowed(yp)
                            && (0..states).any(|xp| {
                                allowed(xp)
                                    && p.edge_allows(OutLabel(y as u32), OutLabel(xp as u32))
                                    && p.node_allows(&[OutLabel(xp as u32), OutLabel(yp as u32)])
                            })
                    })
                    .collect()
            })
            .collect();
        let starts = (0..states)
            .map(|y| allowed(y) && p.node_allows(&[OutLabel(y as u32)]))
            .collect();
        let accepts = (0..states)
            .map(|y| {
                allowed(y)
                    && (0..states).any(|xp| {
                        allowed(xp)
                            && p.edge_allows(OutLabel(y as u32), OutLabel(xp as u32))
                            && p.node_allows(&[OutLabel(xp as u32)])
                    })
            })
            .collect();
        Ok(Self {
            states,
            succ,
            starts,
            accepts,
            allowed: g0,
        })
    }

    /// Whether the (input-independent) `g` map permits this label at all.
    pub fn is_output_allowed(&self, o: usize) -> bool {
        self.allowed[o]
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states
    }

    /// Successors of a state.
    pub fn successors(&self, y: usize) -> &[usize] {
        &self.succ[y]
    }

    /// Whether `y` may label the right half-edge of a path's first node.
    pub fn is_start(&self, y: usize) -> bool {
        self.starts[y]
    }

    /// Whether `y` may immediately precede a path's last node.
    pub fn is_accept(&self, y: usize) -> bool {
        self.accepts[y]
    }

    /// Whether the state has a self-loop (`y → y`).
    pub fn has_self_loop(&self, y: usize) -> bool {
        self.succ[y].contains(&y)
    }

    /// States reachable from any state satisfying `from`.
    pub fn reachable_from(&self, from: impl Fn(usize) -> bool) -> Vec<bool> {
        let mut seen = vec![false; self.states];
        let mut stack: Vec<usize> = (0..self.states).filter(|&s| from(s)).collect();
        for &s in &stack {
            seen[s] = true;
        }
        while let Some(s) = stack.pop() {
            for &t in &self.succ[s] {
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        seen
    }

    /// States from which some state satisfying `to` is reachable.
    pub fn co_reachable_to(&self, to: impl Fn(usize) -> bool) -> Vec<bool> {
        // Reverse reachability.
        let mut pred = vec![Vec::new(); self.states];
        for (s, outs) in self.succ.iter().enumerate() {
            for &t in outs {
                pred[t].push(s);
            }
        }
        let mut seen = vec![false; self.states];
        let mut stack: Vec<usize> = (0..self.states).filter(|&s| to(s)).collect();
        for &s in &stack {
            seen[s] = true;
        }
        while let Some(s) = stack.pop() {
            for &t in &pred[s] {
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        seen
    }

    /// Strongly connected components (Tarjan); returns the component id of
    /// each state and the number of components.
    pub fn sccs(&self) -> (Vec<usize>, usize) {
        struct Frame {
            v: usize,
            edge: usize,
        }
        let n = self.states;
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack = Vec::new();
        let mut comp = vec![usize::MAX; n];
        let mut next_index = 0usize;
        let mut comp_count = 0usize;

        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            let mut call = vec![Frame { v: root, edge: 0 }];
            index[root] = next_index;
            low[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;
            while let Some(frame) = call.last_mut() {
                let v = frame.v;
                if frame.edge < self.succ[v].len() {
                    let w = self.succ[v][frame.edge];
                    frame.edge += 1;
                    if index[w] == usize::MAX {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call.push(Frame { v: w, edge: 0 });
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    if low[v] == index[v] {
                        loop {
                            let w = stack.pop().expect("tarjan stack nonempty");
                            on_stack[w] = false;
                            comp[w] = comp_count;
                            if w == v {
                                break;
                            }
                        }
                        comp_count += 1;
                    }
                    let finished = call.pop().expect("frame exists");
                    if let Some(parent) = call.last() {
                        low[parent.v] = low[parent.v].min(low[finished.v]);
                    }
                }
            }
        }
        (comp, comp_count)
    }

    /// The gcd of cycle lengths through each state (0 for states on no
    /// cycle). A state is *flexible* iff its value is 1: closed walks of
    /// every sufficiently large length exist.
    pub fn cycle_gcds(&self) -> Vec<u64> {
        let (comp, count) = self.sccs();
        let mut gcds = vec![0u64; count];
        // Per SCC: BFS layering; gcd over internal edges of
        // (level(u) + 1 - level(v)).
        #[allow(clippy::needless_range_loop)] // index drives several arrays
        for c in 0..count {
            let members: Vec<usize> = (0..self.states).filter(|&s| comp[s] == c).collect();
            let internal_edges: Vec<(usize, usize)> = members
                .iter()
                .flat_map(|&u| {
                    self.succ[u]
                        .iter()
                        .filter(|&&v| comp[v] == c)
                        .map(move |&v| (u, v))
                })
                .collect();
            if internal_edges.is_empty() {
                continue; // singleton without self-loop: no cycles
            }
            let mut level = vec![i64::MIN; self.states];
            let root = members[0];
            level[root] = 0;
            let mut queue = std::collections::VecDeque::from([root]);
            while let Some(u) = queue.pop_front() {
                for &v in &self.succ[u] {
                    if comp[v] == c && level[v] == i64::MIN {
                        level[v] = level[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
            let mut g = 0u64;
            for (u, v) in internal_edges {
                let diff = (level[u] + 1 - level[v]).unsigned_abs();
                g = gcd(g, diff);
            }
            gcds[c] = g;
        }
        (0..self.states).map(|s| gcds[comp[s]]).collect()
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coloring(k: usize) -> LclProblem {
        lcl_problems::k_coloring(k, 2)
    }

    #[test]
    fn three_coloring_automaton() {
        let a = Automaton::from_problem(&coloring(3)).unwrap();
        // y → y' iff y' ≠ y (pick x' = y').
        for y in 0..3 {
            let mut expected: Vec<usize> = (0..3).filter(|&z| z != y).collect();
            expected.sort_unstable();
            let mut got = a.successors(y).to_vec();
            got.sort_unstable();
            assert_eq!(got, expected);
            assert!(!a.has_self_loop(y));
        }
        let gcds = a.cycle_gcds();
        assert!(gcds.iter().all(|&g| g == 1), "{gcds:?}");
    }

    #[test]
    fn two_coloring_automaton_is_bipartite() {
        let a = Automaton::from_problem(&coloring(2)).unwrap();
        assert_eq!(a.successors(0), &[1]);
        assert_eq!(a.successors(1), &[0]);
        let gcds = a.cycle_gcds();
        assert_eq!(gcds, vec![2, 2]);
    }

    #[test]
    fn sinkless_on_cycles_has_a_self_loop() {
        let p = lcl_problems::sinkless_orientation(2);
        let a = Automaton::from_problem(&p).unwrap();
        assert!((0..a.state_count()).any(|s| a.has_self_loop(s)));
    }

    #[test]
    fn reachability_works() {
        let a = Automaton::from_problem(&coloring(2)).unwrap();
        let reach = a.reachable_from(|s| s == 0);
        assert_eq!(reach, vec![true, true]);
        let co = a.co_reachable_to(|s| s == 1);
        assert_eq!(co, vec![true, true]);
    }

    #[test]
    fn input_dependent_problems_are_refused() {
        let p = LclProblem::builder("dep", 2)
            .inputs(["a", "b"])
            .outputs(["X", "Y"])
            .node_pattern(&["X*", "Y*"])
            .edge(&["X", "Y"])
            .allow("a", &["X"])
            .allow("b", &["Y"])
            .build()
            .unwrap();
        assert_eq!(
            Automaton::from_problem(&p),
            Err(AutomatonError::InputDependent)
        );
    }

    #[test]
    fn sccs_of_bipartite_automaton() {
        let a = Automaton::from_problem(&coloring(2)).unwrap();
        let (comp, count) = a.sccs();
        assert_eq!(count, 1);
        assert_eq!(comp[0], comp[1]);
    }
}
