//! The classification procedure over the [`Automaton`].

use lcl::LclProblem;

use crate::automaton::{Automaton, AutomatonError};

/// The decidable complexity classes on oriented paths/cycles.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PathClass {
    /// `O(1)`: a constant tiling exists (self-loop state).
    Constant,
    /// `Θ(log* n)`: a flexible state exists but no constant tiling.
    LogStar,
    /// `Θ(n)`: solvable for infinitely many sizes, but only globally
    /// (cycle lengths are constrained, e.g. 2-coloring on even cycles).
    Global,
    /// Solvable for at most finitely many sizes.
    FinitelySolvable,
}

impl std::fmt::Display for PathClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathClass::Constant => write!(f, "O(1)"),
            PathClass::LogStar => write!(f, "Θ(log* n)"),
            PathClass::Global => write!(f, "Θ(n)"),
            PathClass::FinitelySolvable => write!(f, "finitely solvable"),
        }
    }
}

/// Error from the classification entry points.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ClassifyError(pub AutomatonError);

impl std::fmt::Display for ClassifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ClassifyError {}

/// The result of classifying a problem.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Classification {
    /// The complexity class.
    pub class: PathClass,
    /// States witnessing flexibility (gcd-1 closed walks), if any.
    pub flexible_states: Vec<usize>,
    /// States with self-loops, if any.
    pub loop_states: Vec<usize>,
    /// Whether the problem is solvable for all sufficiently large sizes.
    pub solvable_all_large: bool,
}

fn classify_restricted(automaton: &Automaton, usable: impl Fn(usize) -> bool) -> Classification {
    let gcds = automaton.cycle_gcds();
    let loop_states: Vec<usize> = (0..automaton.state_count())
        .filter(|&s| usable(s) && automaton.has_self_loop(s))
        .collect();
    let flexible_states: Vec<usize> = (0..automaton.state_count())
        .filter(|&s| usable(s) && gcds[s] == 1)
        .collect();
    let any_cycle = (0..automaton.state_count()).any(|s| {
        usable(s) && gcds[s] >= 1 && {
            // gcds are 0 for acyclic states.
            gcds[s] != 0
        }
    });

    let class = if !loop_states.is_empty() {
        PathClass::Constant
    } else if !flexible_states.is_empty() {
        PathClass::LogStar
    } else if any_cycle {
        PathClass::Global
    } else {
        PathClass::FinitelySolvable
    };
    let solvable_all_large = !flexible_states.is_empty() || !loop_states.is_empty();
    Classification {
        class,
        flexible_states,
        loop_states,
        solvable_all_large,
    }
}

/// Classifies an (input-independent) LCL on consistently oriented cycles.
///
/// # Errors
///
/// Returns [`ClassifyError`] for input-dependent problems or degree
/// bounds below 2.
pub fn classify_oriented_cycle(p: &LclProblem) -> Result<Classification, ClassifyError> {
    let automaton = Automaton::from_problem(p).map_err(ClassifyError)?;
    // On cycles every state on a cycle of the automaton is usable.
    Ok(classify_restricted(&automaton, |_| true))
}

/// Classifies an (input-independent) LCL on oriented paths: like cycles,
/// but states must be reachable from a valid path start and co-reachable
/// to a valid path end.
///
/// # Errors
///
/// As [`classify_oriented_cycle`].
pub fn classify_oriented_path(p: &LclProblem) -> Result<Classification, ClassifyError> {
    let automaton = Automaton::from_problem(p).map_err(ClassifyError)?;
    let reach = automaton.reachable_from(|s| automaton.is_start(s));
    let co = automaton.co_reachable_to(|s| automaton.is_accept(s));
    Ok(classify_restricted(&automaton, |s| reach[s] && co[s]))
}

/// For each `n` in `3..=max`, whether the problem is solvable on the
/// oriented cycle of length `n` (dynamic programming over the automaton).
pub fn solvable_cycle_lengths_up_to(
    p: &LclProblem,
    max: usize,
) -> Result<Vec<(usize, bool)>, ClassifyError> {
    let automaton = Automaton::from_problem(p).map_err(ClassifyError)?;
    let k = automaton.state_count();
    let mut result = Vec::new();
    // reachable[s][t] after exactly j steps, iterated per n (O(max * k^3)
    // overall, fine for catalog-sized alphabets).
    for n in 3..=max {
        // Does a closed walk of length n exist? Power the reachability.
        let mut current: Vec<Vec<bool>> = (0..k)
            .map(|s| {
                let mut row = vec![false; k];
                row[s] = true;
                row
            })
            .collect();
        for _ in 0..n {
            current = current
                .iter()
                .map(|row| {
                    let mut next = vec![false; k];
                    for (s, &ok) in row.iter().enumerate() {
                        if ok {
                            for &t in automaton.successors(s) {
                                next[t] = true;
                            }
                        }
                    }
                    next
                })
                .collect();
        }
        let solvable = (0..k).any(|s| current[s][s]);
        result.push((n, solvable));
    }
    Ok(result)
}

/// For each `n` in `1..=max`, whether the problem is solvable on the
/// oriented path of `n` nodes (walks of length `n - 2` from a start state
/// to an accepting state; `n = 1` is vacuously solvable for degree-0
/// nodes).
pub fn solvable_path_lengths_up_to(
    p: &LclProblem,
    max: usize,
) -> Result<Vec<(usize, bool)>, ClassifyError> {
    let automaton = Automaton::from_problem(p).map_err(ClassifyError)?;
    let k = automaton.state_count();
    let mut result = Vec::with_capacity(max);
    if max >= 1 {
        result.push((1, true)); // an isolated node has no constraints
    }
    // frontier[s] = reachable from a start state with walks of the current
    // length.
    let mut frontier: Vec<bool> = (0..k).map(|s| automaton.is_start(s)).collect();
    for n in 2..=max {
        // Path of n nodes = walk of length n - 2 (frontier currently holds
        // walks of length n - 2 once we are at iteration n).
        let solvable = (0..k).any(|s| frontier[s] && automaton.is_accept(s));
        result.push((n, solvable));
        let mut next = vec![false; k];
        for (s, &ok) in frontier.iter().enumerate() {
            if ok {
                for &t in automaton.successors(s) {
                    next[t] = true;
                }
            }
        }
        frontier = next;
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_problems::{free_problem, k_coloring, mis_problem, sinkless_orientation, two_coloring};

    #[test]
    fn three_coloring_is_log_star() {
        let c = classify_oriented_cycle(&k_coloring(3, 2)).unwrap();
        assert_eq!(c.class, PathClass::LogStar);
        assert!(c.solvable_all_large);
        let c = classify_oriented_path(&k_coloring(3, 2)).unwrap();
        assert_eq!(c.class, PathClass::LogStar);
    }

    #[test]
    fn two_coloring_is_global_on_cycles() {
        let c = classify_oriented_cycle(&two_coloring(2)).unwrap();
        assert_eq!(c.class, PathClass::Global);
        assert!(!c.solvable_all_large);
    }

    #[test]
    fn two_coloring_parity_table() {
        let table = solvable_cycle_lengths_up_to(&two_coloring(2), 10).unwrap();
        for (n, solvable) in table {
            assert_eq!(solvable, n % 2 == 0, "n = {n}");
        }
    }

    #[test]
    fn free_problem_is_constant() {
        let c = classify_oriented_cycle(&free_problem(2, 2)).unwrap();
        assert_eq!(c.class, PathClass::Constant);
    }

    #[test]
    fn sinkless_orientation_is_constant_on_oriented_cycles() {
        // The orientation is given, so "orient along the cycle" is a
        // 0-round solution.
        let c = classify_oriented_cycle(&sinkless_orientation(2)).unwrap();
        assert_eq!(c.class, PathClass::Constant);
    }

    #[test]
    fn mis_is_log_star_on_cycles() {
        let c = classify_oriented_cycle(&mis_problem(2)).unwrap();
        assert_eq!(c.class, PathClass::LogStar);
    }

    #[test]
    fn mis_cycle_lengths_all_solvable_from_three() {
        let table = solvable_cycle_lengths_up_to(&mis_problem(2), 9).unwrap();
        assert!(table.iter().all(|&(_, s)| s), "{table:?}");
    }

    #[test]
    fn node_edge_tension_gives_global() {
        // Edge wants equal labels, nodes want differing ones: the only
        // tilings alternate with period 2 — global, even cycles only.
        let p = LclProblem::builder("alternating", 2)
            .outputs(["X", "Y"])
            .node(&["X", "Y"])
            .node(&["X"])
            .node(&["Y"])
            .edge(&["X", "X"])
            .edge(&["Y", "Y"])
            .build()
            .unwrap();
        let c = classify_oriented_cycle(&p).unwrap();
        assert_eq!(c.class, PathClass::Global);
        let table = solvable_cycle_lengths_up_to(&p, 8).unwrap();
        for (n, solvable) in table {
            assert_eq!(solvable, n % 2 == 0, "n = {n}");
        }
    }

    #[test]
    fn degree_two_starved_problem_is_finitely_solvable() {
        // No degree-2 node configuration at all: only 2-node paths work;
        // cycles never do.
        let p = LclProblem::builder("tiny-only", 2)
            .outputs(["X"])
            .node(&["X"])
            .edge(&["X", "X"])
            .build()
            .unwrap();
        let c = classify_oriented_cycle(&p).unwrap();
        assert_eq!(c.class, PathClass::FinitelySolvable);
        assert!(!c.solvable_all_large);
        let table = solvable_cycle_lengths_up_to(&p, 6).unwrap();
        assert!(table.iter().all(|&(_, s)| !s));
    }

    #[test]
    fn path_lengths_for_two_coloring_are_all_solvable() {
        let table = solvable_path_lengths_up_to(&two_coloring(2), 8).unwrap();
        assert!(table.iter().all(|&(_, s)| s), "{table:?}");
    }

    #[test]
    fn path_lengths_for_strict_sinkless_are_singletons_only() {
        // Every node needs an out-edge: impossible on any path with an
        // edge (the last node would be a sink), fine for n = 1.
        let table = solvable_path_lengths_up_to(&sinkless_orientation(2), 6).unwrap();
        for (n, solvable) in table {
            assert_eq!(solvable, n == 1, "n = {n}");
        }
    }

    #[test]
    fn path_lengths_match_classification_flexibility() {
        // 3-coloring: solvable for every n, matching its LogStar class.
        let table = solvable_path_lengths_up_to(&k_coloring(3, 2), 10).unwrap();
        assert!(table.iter().all(|&(_, s)| s));
    }

    #[test]
    fn path_classification_uses_endpoints() {
        // Interior nodes are free over {X}, but no degree-1 configuration
        // exists: paths are unsolvable although cycles are constant.
        let p = LclProblem::builder("no-endpoints", 2)
            .outputs(["X"])
            .node(&["X", "X"])
            .edge(&["X", "X"])
            .build()
            .unwrap();
        let cycle = classify_oriented_cycle(&p).unwrap();
        assert_eq!(cycle.class, PathClass::Constant);
        let path = classify_oriented_path(&p).unwrap();
        assert_eq!(path.class, PathClass::FinitelySolvable);
    }
}
