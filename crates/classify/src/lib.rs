//! Decidable classification of LCL complexities on oriented paths and
//! cycles — the positive side of the paper's Section 1.4.
//!
//! For paths and cycles it is known ([41, 17, 21, 22] in the paper's
//! bibliography) that the only LOCAL complexities are `O(1)`, `Θ(log* n)`
//! and `Θ(n)`, and that the class of a given (input-free) LCL is decidable
//! in polynomial time. This crate implements the automata-theoretic
//! decision procedure:
//!
//! * [`Automaton`] — the transition structure over output labels: `y → y'`
//!   iff some label `x'` closes both the edge configuration `{y, x'}` and
//!   the node configuration `{x', y'}`;
//! * [`classify_oriented_cycle`] / [`classify_oriented_path`] — the
//!   classification: a *self-loop* yields `O(1)` (a constant tiling), a
//!   *flexible* state (one whose closed-walk lengths have gcd 1) yields
//!   `Θ(log* n)`, anything else is global (`Θ(n)`) or solvable for only
//!   finitely many sizes;
//! * [`solvable_cycle_lengths_up_to`] — the per-`n` solvability table.
//!
//! Combined with the main theorem of the paper (no complexities strictly
//! between `ω(1)` and `o(log* n)` on trees), these procedures settle the
//! full landscape for the path/cycle slice exactly.

pub mod automaton;
pub mod classify;
pub mod synthesize;
pub mod synthesize_path;

pub use automaton::Automaton;
pub use classify::{
    classify_oriented_cycle, classify_oriented_path, solvable_cycle_lengths_up_to,
    solvable_path_lengths_up_to, Classification, ClassifyError, PathClass,
};
pub use synthesize::{synthesize_cycle, synthesize_cycle_traced, CycleAlgorithm};
pub use synthesize_path::{synthesize_path, synthesize_path_traced, PathAlgorithm};
