//! Algorithm synthesis on oriented **paths**: like
//! [`synthesize`](crate::synthesize) for cycles, plus endpoint handling.
//!
//! Near the two path endpoints the anchor-and-fill strategy switches to
//! precomputed *prefix* walks (a start state to the flexible state `s`)
//! and *suffix* walks (`s` to an accepting state); the interior is filled
//! with closed walks exactly as on cycles. Anchors are suppressed within a
//! fixed margin `B` of the endpoints so the boundary segments are always
//! long enough for the prefix/suffix tables.
//!
//! Port convention: as produced by [`lcl_graph::gen::path`] — interior
//! nodes have port 0 toward the predecessor and port 1 toward the
//! successor; endpoints have their single port 0.

use lcl::{LclProblem, OutLabel};
use lcl_graph::PortView;
use lcl_local::{LocalAlgorithm, View};
use lcl_obs::{Counter, RunReport, Span, Trace};

use crate::automaton::Automaton;
use crate::classify::ClassifyError;
use crate::synthesize::{cv_iterations, cv_step};

/// The synthesized path algorithm (always the anchor-and-fill shape; for
/// `O(1)`-class problems it is correct but not radius-optimal — the
/// classifier reports the class separately).
#[derive(Clone, Debug)]
pub struct PathAlgorithm {
    plan: PathPlan,
}

#[derive(Clone, Debug)]
struct PathPlan {
    s: usize,
    t_star: usize,
    /// Closed walks `s → … → t* → s` by length.
    walks: Vec<Option<Vec<u32>>>,
    /// Prefix walks: a start state to `s` (ending `t* → s`), by length.
    prefix: Vec<Option<Vec<u32>>>,
    /// Suffix walks: `s` to an accepting state, by length.
    suffix: Vec<Option<Vec<u32>>>,
    /// Exact walks start → accept by length, for whole-path fills.
    exact: Vec<Option<Vec<u32>>>,
    /// All lengths `≥ k0` have closed walks (prefix/suffix thresholds are
    /// folded into `boundary`).
    k0: usize,
    /// Anchor suppression margin near endpoints.
    boundary: usize,
    levels: u32,
    gap_bound: usize,
    witness: Vec<Vec<Option<u32>>>,
    /// Final output of the last node: `accept_witness[y]` = the label on
    /// the path's last half-edge after state `y`.
    accept_witness: Vec<Option<u32>>,
}

impl PathAlgorithm {
    /// A short description of the synthesized strategy.
    pub fn describe(&self) -> String {
        format!(
            "path anchor-and-fill via state out{} (K₀ = {}, boundary margin {})",
            self.plan.s, self.plan.k0, self.plan.boundary
        )
    }

    fn window_need(&self, n: usize) -> usize {
        let id_bits = 3 * (usize::BITS - n.leading_zeros()).max(1);
        let k_iters = cv_iterations(id_bits) as usize;
        let g = self.plan.gap_bound + self.plan.boundary;
        (k_iters + 8) + (self.plan.levels as usize + 1) * (k_iters + 8) * (g + 4) + 2 * g
    }
}

/// Synthesizes an algorithm for an (input-independent) LCL on oriented
/// paths, or `Ok(None)` when the class does not admit one.
///
/// # Errors
///
/// As [`classify_oriented_path`](crate::classify_oriented_path).
pub fn synthesize_path(p: &LclProblem) -> Result<Option<PathAlgorithm>, ClassifyError> {
    synthesize_path_traced(p).map(|report| report.outcome)
}

/// Like [`synthesize_path`], additionally reporting the synthesis trace:
/// automaton states, sparsification levels of the plan, and wall time.
///
/// # Errors
///
/// As [`synthesize_path`].
pub fn synthesize_path_traced(
    p: &LclProblem,
) -> Result<RunReport<Option<PathAlgorithm>>, ClassifyError> {
    use lcl::Problem as _;
    let mut span = Span::start(format!("classify/synthesize-path/{}", p.name()));
    let outcome = synthesize_path_impl(p, &mut span)?;
    if let Some(alg) = &outcome {
        span.set(Counter::Steps, u64::from(alg.plan.levels));
    }
    Ok(RunReport::new(outcome, Trace::new(span.finish())))
}

fn synthesize_path_impl(
    p: &LclProblem,
    span: &mut Span,
) -> Result<Option<PathAlgorithm>, ClassifyError> {
    let automaton = Automaton::from_problem(p).map_err(ClassifyError)?;
    let k = automaton.state_count();
    span.set(Counter::States, k as u64);
    let reach = automaton.reachable_from(|s| automaton.is_start(s));
    let co = automaton.co_reachable_to(|s| automaton.is_accept(s));
    let gcds = automaton.cycle_gcds();
    let Some(s) = (0..k).find(|&t| reach[t] && co[t] && gcds[t] == 1) else {
        return Ok(None);
    };
    let Some(t_star) =
        (0..k).find(|&t| automaton.successors(t).contains(&s) && gcds[t] == 1 && reach[t] && co[t])
    else {
        return Ok(None);
    };

    let limit = 4 * k * k + 96;
    let from_s = forward_table(&automaton, &[s], limit);
    let from_starts = forward_table(
        &automaton,
        &(0..k)
            .filter(|&t| automaton.is_start(t))
            .collect::<Vec<_>>(),
        limit,
    );

    // Closed walks (end t* → s).
    let walks: Vec<Option<Vec<u32>>> = (0..=limit)
        .map(|l| extract_walk(&from_s, l, t_star, s))
        .collect();
    // Prefix walks (start → ... → t* → s).
    let prefix: Vec<Option<Vec<u32>>> = (0..=limit)
        .map(|l| extract_walk(&from_starts, l, t_star, s))
        .collect();
    // Suffix walks (s → accept); the final state is the canonical
    // accepting state reachable at each length.
    let suffix: Vec<Option<Vec<u32>>> = (0..=limit)
        .map(|l| {
            let target = (0..k).find(|&t| automaton.is_accept(t) && from_s[l][t] != usize::MAX)?;
            backtrack(&from_s, l, target)
        })
        .collect();
    // Exact walks start → accept, for whole-path (small n) fills.
    let exact: Vec<Option<Vec<u32>>> = (0..=limit)
        .map(|l| {
            let target =
                (0..k).find(|&t| automaton.is_accept(t) && from_starts[l][t] != usize::MAX)?;
            backtrack(&from_starts, l, target)
        })
        .collect();

    let (Some(k0), Some(k1), Some(k2)) = (
        threshold(&walks, limit),
        threshold(&prefix, limit),
        threshold(&suffix, limit),
    ) else {
        return Ok(None);
    };
    let boundary = k1.max(k2) + 2;

    let mut levels = 0u32;
    while (2usize << levels) < k0 {
        levels += 1;
    }
    let gap_bound = 4 * 4usize.pow(levels);
    if boundary + gap_bound + 8 >= limit {
        return Ok(None);
    }

    let witness = super::synthesize::witness_table(p, &automaton);
    if witness[t_star][s].is_none() {
        return Ok(None);
    }
    let accept_witness = accept_witness_table(p, &automaton);

    Ok(Some(PathAlgorithm {
        plan: PathPlan {
            s,
            t_star,
            walks,
            prefix,
            suffix,
            exact,
            k0,
            boundary,
            levels,
            gap_bound,
            witness,
            accept_witness,
        },
    }))
}

/// Smallest `t` with all lengths `t..=limit` present, requiring some
/// slack below the limit; `None` if the tail is not all-present.
fn threshold(table: &[Option<Vec<u32>>], limit: usize) -> Option<usize> {
    let mut t = None;
    for l in (2..limit).rev() {
        if table[l].is_none() {
            t = Some(l + 1);
            break;
        }
    }
    let t = t.unwrap_or(2);
    (t + 16 < limit).then_some(t)
}

/// `table[l][t]` = canonical predecessor of `t` on a length-`l` walk from
/// the given sources, or `usize::MAX`.
fn forward_table(automaton: &Automaton, sources: &[usize], limit: usize) -> Vec<Vec<usize>> {
    let k = automaton.state_count();
    let mut table = vec![vec![usize::MAX; k]; limit + 1];
    for &src in sources {
        table[0][src] = src;
    }
    for l in 0..limit {
        for t in 0..k {
            if table[l][t] == usize::MAX {
                continue;
            }
            for &u in automaton.successors(t) {
                if table[l + 1][u] == usize::MAX {
                    table[l + 1][u] = t;
                }
            }
        }
    }
    table
}

/// Extracts the canonical length-`l` walk ending `t* → s`.
fn extract_walk(table: &[Vec<usize>], l: usize, t_star: usize, s: usize) -> Option<Vec<u32>> {
    if l < 2 || table[l - 1][t_star] == usize::MAX {
        return None;
    }
    let mut states = backtrack(table, l - 1, t_star)?;
    states.push(s as u32);
    Some(states)
}

/// Backtracks the canonical walk of length `l` ending at `target`.
fn backtrack(table: &[Vec<usize>], l: usize, target: usize) -> Option<Vec<u32>> {
    if table[l][target] == usize::MAX {
        return None;
    }
    let mut states = vec![0u32; l + 1];
    let mut current = target;
    for back in (0..=l).rev() {
        states[back] = current as u32;
        if back > 0 {
            current = table[back][current];
        }
    }
    Some(states)
}

fn accept_witness_table(p: &LclProblem, automaton: &Automaton) -> Vec<Option<u32>> {
    use lcl::Problem as _;
    let k = automaton.state_count();
    (0..k)
        .map(|y| {
            (0..k as u32).find(|&x| {
                automaton.is_output_allowed(x as usize)
                    && p.edge_allows(OutLabel(y as u32), OutLabel(x))
                    && p.node_allows(&[OutLabel(x)])
            })
        })
        .collect()
}

/// The reconstructed window around a node.
struct Window {
    /// Identifiers left-to-right.
    ids: Vec<u64>,
    /// My index in `ids`.
    me: usize,
    /// Whether `ids[0]` is the path's first node.
    left_end: bool,
    /// Whether the last entry is the path's last node.
    right_end: bool,
}

fn reconstruct(view: &View<'_>, r: usize) -> Window {
    // Identify my predecessor/successor ports: interior nodes have
    // (pred, succ) = (0, 1); the left endpoint has only port 0 = succ,
    // the right endpoint only port 0 = pred. Walk with arrival tracking.
    let my_degree = view.ball.center().ports.len();
    let mut ids = vec![view.ids[0]];
    let mut me = 0usize;
    let mut left_end = my_degree <= 1 && is_left_endpoint(view);
    let mut right_end = my_degree <= 1 && !is_left_endpoint(view) && my_degree == 1;
    if my_degree == 0 {
        return Window {
            ids,
            me,
            left_end: true,
            right_end: true,
        };
    }

    // Walk in each available direction.
    for (port, forward) in walk_ports(view) {
        let mut current = 0usize;
        let mut via = port;
        let mut collected: Vec<u64> = Vec::new();
        let mut hit_end = false;
        for _ in 0..r {
            let node = &view.ball.nodes[current];
            let Some(PortView::Inside {
                node: next,
                rev_port,
            }) = node.ports.get(via as usize).copied()
            else {
                break;
            };
            let next = next as usize;
            collected.push(view.ids[next]);
            let next_degree = view.ball.nodes[next].ports.len();
            if next_degree == 1 {
                hit_end = true;
                break;
            }
            // Continue straight: leave through the other port.
            via = 1 - rev_port;
            current = next;
        }
        if forward {
            ids.extend(collected);
            right_end = hit_end;
        } else {
            for id in collected {
                ids.insert(0, id);
                me += 1;
            }
            left_end = hit_end;
        }
    }
    Window {
        ids,
        me,
        left_end,
        right_end,
    }
}

/// The ports to walk from the center: `(port, is_forward)`.
fn walk_ports(view: &View<'_>) -> Vec<(u8, bool)> {
    let degree = view.ball.center().ports.len();
    if degree >= 2 {
        vec![(1, true), (0, false)]
    } else if degree == 1 {
        if is_left_endpoint(view) {
            vec![(0, true)]
        } else {
            vec![(0, false)]
        }
    } else {
        Vec::new()
    }
}

/// A degree-1 node is the left endpoint iff its single edge arrives at
/// the neighbor's port 0 (the neighbor's predecessor side). On a 2-node
/// path both endpoints look structurally identical, so the smaller
/// identifier breaks the tie.
fn is_left_endpoint(view: &View<'_>) -> bool {
    match view.ball.center().ports.first() {
        Some(PortView::Inside { node, rev_port }) => {
            let neighbor = &view.ball.nodes[*node as usize];
            if neighbor.ports.len() == 1 {
                view.ids[0] < view.ids[*node as usize]
            } else {
                *rev_port == 0
            }
        }
        _ => true,
    }
}

impl LocalAlgorithm for PathAlgorithm {
    fn radius(&self, n: usize) -> u32 {
        self.window_need(n) as u32
    }

    fn label(&self, view: &View<'_>) -> Vec<OutLabel> {
        let plan = &self.plan;
        let degree = view.ball.center().ports.len();
        if degree == 0 {
            return Vec::new();
        }
        let r = self.window_need(view.n);
        let w = reconstruct(view, r);
        let n = w.ids.len();
        let id_bits = 3 * (usize::BITS - view.n.leading_zeros()).max(1);
        let k_iters = cv_iterations(id_bits) as usize;

        // Colors: linear CV; the right endpoint (if visible) is the root.
        let mut colors = w.ids.clone();
        for _ in 0..k_iters {
            let mut next = colors.clone();
            for v in 0..n {
                let parent = if v + 1 < n {
                    colors[v + 1]
                } else if w.right_end {
                    colors[v] ^ 1
                } else {
                    continue;
                };
                next[v] = cv_step(colors[v], parent);
            }
            colors = next;
        }
        for target in [5u64, 4, 3] {
            let mut next = colors.clone();
            for v in 0..n {
                if colors[v] != target {
                    continue;
                }
                let mut used = Vec::new();
                if v > 0 {
                    used.push(colors[v - 1]);
                }
                if v + 1 < n {
                    used.push(colors[v + 1]);
                }
                if let Some(c) = (0..3).find(|c| !used.contains(c)) {
                    next[v] = c;
                }
            }
            colors = next;
        }

        // Trusted color margin on sides not anchored by a real endpoint.
        let margin0 = k_iters + 4;
        let lo = if w.left_end { 1 } else { margin0 };
        let hi = if w.right_end {
            n.saturating_sub(1)
        } else {
            n.saturating_sub(margin0)
        };

        // Anchors: strict color minima, suppressed within `boundary` of a
        // visible endpoint.
        let mut anchors: Vec<usize> = (lo.max(1)..hi.min(n.saturating_sub(1)))
            .filter(|&v| {
                colors[v] < colors[v - 1]
                    && colors[v] < colors[v + 1]
                    && (!w.left_end || v >= plan.boundary)
                    && (!w.right_end || v + plan.boundary < n)
            })
            .collect();
        for _ in 0..plan.levels {
            if anchors.len() < 4 {
                break;
            }
            anchors = sparsify(&anchors, &w.ids, w.left_end, w.right_end);
        }

        // Whole-path case with no anchors: exact fill via prefix table of
        // exact length.
        if w.left_end && w.right_end && anchors.is_empty() {
            return exact_fill(plan, n, w.me, degree);
        }

        let a_before = anchors.iter().rposition(|&a| a <= w.me).map(|i| anchors[i]);
        let a_after = anchors.iter().find(|&&a| a > w.me).copied();

        match (a_before, a_after) {
            (Some(a), Some(b)) => segment_emit(plan, b - a, w.me - a, degree),
            (None, Some(b)) if w.left_end => {
                // Prefix segment [0, b].
                prefix_emit(plan, b, w.me, degree)
            }
            (Some(a), None) if w.right_end => {
                // Suffix segment [a, n-1].
                suffix_emit(plan, n - 1 - a, w.me - a, w.me == n - 1, degree)
            }
            _ => fallback(plan, degree),
        }
    }

    fn name(&self) -> &str {
        "synthesized-path"
    }
}

fn sparsify(anchors: &[usize], ids: &[u64], left_end: bool, right_end: bool) -> Vec<usize> {
    let m = anchors.len();
    let mut colors: Vec<u64> = anchors.iter().map(|&a| ids[a]).collect();
    let iters = cv_iterations(64) as usize;
    for _ in 0..iters {
        let mut next = colors.clone();
        for i in 0..m {
            let parent = if i + 1 < m {
                colors[i + 1]
            } else {
                colors[i] ^ 1 // rightmost visible anchor acts as root
            };
            next[i] = cv_step(colors[i], parent);
        }
        colors = next;
    }
    for target in [5u64, 4, 3] {
        let mut next = colors.clone();
        for i in 0..m {
            if colors[i] != target {
                continue;
            }
            let mut used = Vec::new();
            if i > 0 {
                used.push(colors[i - 1]);
            }
            if i + 1 < m {
                used.push(colors[i + 1]);
            }
            if let Some(c) = (0..3).find(|c| !used.contains(c)) {
                next[i] = c;
            }
        }
        colors = next;
    }
    let margin = iters + 4;
    let lo = if left_end { 1 } else { margin };
    let hi = if right_end {
        m.saturating_sub(1)
    } else {
        m.saturating_sub(margin)
    };
    let kept: Vec<usize> = (lo.max(1)..hi)
        .filter(|&i| colors[i] < colors[i - 1] && colors[i] < colors[i + 1])
        .map(|i| anchors[i])
        .collect();
    if kept.len() >= 2 {
        kept
    } else {
        anchors.to_vec()
    }
}

/// Whole path of `n` nodes, no anchors: emit from the exact
/// start-to-accept walk of length `n - 2` (a canonical, shared choice).
fn exact_fill(plan: &PathPlan, n: usize, me: usize, degree: usize) -> Vec<OutLabel> {
    if n == 1 {
        return Vec::new();
    }
    let Some(Some(states)) = plan.exact.get(n - 2) else {
        // No solution exists for this n (or it exceeds the table).
        return fallback(plan, degree);
    };
    let y_at = |i: usize| -> u32 { states[i] };
    emit_position(plan, n, me, degree, &y_at)
}

fn segment_emit(plan: &PathPlan, seg: usize, off: usize, degree: usize) -> Vec<OutLabel> {
    let Some(Some(walk)) = plan.walks.get(seg) else {
        return fallback(plan, degree);
    };
    let y = walk[off];
    let y_prev = if off == 0 {
        plan.t_star as u32
    } else {
        walk[off - 1]
    };
    let x = plan.witness[y_prev as usize][y as usize].expect("walk witness");
    vec![OutLabel(x), OutLabel(y)]
}

fn prefix_emit(plan: &PathPlan, first_anchor: usize, me: usize, degree: usize) -> Vec<OutLabel> {
    let Some(Some(pre)) = plan.prefix.get(first_anchor) else {
        return fallback(plan, degree);
    };
    let y = pre[me];
    if me == 0 {
        // The path's first node has only its successor half-edge.
        return vec![OutLabel(y)];
    }
    let x = plan.witness[pre[me - 1] as usize][y as usize].expect("prefix witness");
    vec![OutLabel(x), OutLabel(y)]
}

fn suffix_emit(
    plan: &PathPlan,
    seg: usize,
    off: usize,
    is_last: bool,
    degree: usize,
) -> Vec<OutLabel> {
    let Some(Some(suf)) = plan.suffix.get(seg.saturating_sub(1)) else {
        return fallback(plan, degree);
    };
    // Segment [a, n-1]: states y_a .. y_{n-2} = suf[0..=seg-1]; node n-1
    // outputs only the accept witness.
    if is_last {
        let y_prev = suf[seg - 1];
        let x = plan.accept_witness[y_prev as usize].expect("accept witness");
        return vec![OutLabel(x)];
    }
    let y = suf[off];
    let y_prev = if off == 0 {
        plan.t_star as u32
    } else {
        suf[off - 1]
    };
    let x = plan.witness[y_prev as usize][y as usize].expect("suffix witness");
    vec![OutLabel(x), OutLabel(y)]
}

fn emit_position(
    plan: &PathPlan,
    n: usize,
    me: usize,
    degree: usize,
    y_at: &dyn Fn(usize) -> u32,
) -> Vec<OutLabel> {
    if me == 0 {
        return vec![OutLabel(y_at(0))];
    }
    if me == n - 1 {
        let x = plan.accept_witness[y_at(n - 2) as usize].expect("accept witness");
        return vec![OutLabel(x)];
    }
    let y = y_at(me);
    let x = plan.witness[y_at(me - 1) as usize][y as usize].expect("witness");
    let _ = degree;
    vec![OutLabel(x), OutLabel(y)]
}

fn fallback(plan: &PathPlan, degree: usize) -> Vec<OutLabel> {
    let s = plan.s as u32;
    let x = plan.witness[plan.t_star][plan.s].unwrap_or(s);
    if degree == 1 {
        vec![OutLabel(s)]
    } else {
        vec![OutLabel(x), OutLabel(s)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::gen;
    use lcl_local::{run_deterministic, IdAssignment};

    fn check_on_paths(p: &LclProblem, alg: &PathAlgorithm, sizes: &[usize]) {
        for &n in sizes {
            let g = gen::path(n);
            let input = lcl::uniform_input(&g);
            let ids = IdAssignment::random_polynomial(n, 3, n as u64 + 3);
            let run = run_deterministic(alg, &g, &input, &ids, None);
            let violations = lcl::verify(p, &g, &input, &run.output);
            assert!(violations.is_empty(), "n = {n}: {violations:?}");
        }
    }

    #[test]
    fn three_coloring_synthesizes_on_paths() {
        let p = lcl_problems::k_coloring(3, 2);
        let alg = synthesize_path(&p).unwrap().expect("synthesizable");
        check_on_paths(&p, &alg, &[2, 3, 5, 9, 40, 200]);
    }

    #[test]
    fn mis_synthesizes_on_paths() {
        let p = lcl_problems::mis_problem(2);
        let alg = synthesize_path(&p).unwrap().expect("synthesizable");
        check_on_paths(&p, &alg, &[2, 3, 7, 31, 120]);
    }

    #[test]
    fn matching_synthesizes_on_paths() {
        let p = lcl_problems::maximal_matching_problem(2);
        let alg = synthesize_path(&p).unwrap().expect("synthesizable");
        check_on_paths(&p, &alg, &[2, 3, 8, 45, 150]);
    }

    #[test]
    fn strict_sinkless_does_not_synthesize_on_paths() {
        // Unsolvable on paths of ≥ 2 nodes: no flexible start/accept
        // structure survives.
        let p = lcl_problems::sinkless_orientation(2);
        assert!(synthesize_path(&p).unwrap().is_none());
    }

    #[test]
    fn two_coloring_does_not_synthesize() {
        let p = lcl_problems::two_coloring(2);
        assert!(synthesize_path(&p).unwrap().is_none());
    }

    #[test]
    fn radius_is_log_star_scale() {
        let p = lcl_problems::k_coloring(3, 2);
        let alg = synthesize_path(&p).unwrap().expect("synthesizable");
        assert!(alg.radius(1 << 60) <= 4 * alg.radius(1 << 8));
    }
}
