//! From certificates to algorithms: the constructive content of the
//! decidability results on oriented cycles.
//!
//! The classifier's certificates are *executable*:
//!
//! * a **self-loop state** yields a 0-round constant tiling
//!   ([`ConstantCycle`]);
//! * a **flexible state** `s` (closed walks of every sufficiently large
//!   length) yields a `Θ(log* n)` algorithm ([`LogStarCycle`]): compute a
//!   Cole–Vishkin 3-coloring offline from a gathered window, take the
//!   color minima as anchors, sparsify them (Cole–Vishkin again on the
//!   anchor "virtual cycle") until consecutive anchors are at least `K₀`
//!   apart, and fill each inter-anchor segment with a precomputed closed
//!   walk `s → s` of exactly the segment's length.
//!
//! Everything is a deterministic function of a bounded window of
//! identifiers, so all nodes agree wherever their windows overlap — the
//! same offline-window technique as `lcl_problems::shortcut`.
//!
//! Port convention: as produced by [`lcl_graph::gen::cycle`] — port 0 is
//! the predecessor, port 1 the successor.

use lcl::{LclProblem, OutLabel};
use lcl_graph::PortView;
use lcl_local::{LocalAlgorithm, View};
use lcl_obs::{Counter, RunReport, Span, Trace};

use crate::automaton::Automaton;
use crate::classify::ClassifyError;

/// One Cole–Vishkin step (duplicated from `lcl-problems` to keep the
/// dependency graph acyclic; three lines of arithmetic).
pub(crate) fn cv_step(mine: u64, parent: u64) -> u64 {
    let diff = mine ^ parent;
    let i = diff.trailing_zeros() as u64;
    2 * i + ((mine >> i) & 1)
}

pub(crate) fn cv_iterations(initial_bits: u32) -> u32 {
    let mut bits = initial_bits.max(3);
    let mut iterations = 0;
    while bits > 3 {
        bits = u32::BITS - (2 * bits - 1).leading_zeros();
        iterations += 1;
    }
    iterations + 1
}

/// The synthesized algorithm for an oriented cycle.
#[derive(Clone, Debug)]
pub enum CycleAlgorithm {
    /// A constant tiling: 0 rounds.
    Constant(ConstantCycle),
    /// The anchor-and-fill algorithm: `Θ(log* n)` rounds.
    LogStar(LogStarCycle),
}

impl CycleAlgorithm {
    /// A short description of the synthesized strategy.
    pub fn describe(&self) -> String {
        match self {
            CycleAlgorithm::Constant(c) => {
                format!("constant tiling (x = out{}, y = out{})", c.x, c.y)
            }
            CycleAlgorithm::LogStar(l) => format!(
                "anchor-and-fill via flexible state out{} (K₀ = {}, {} sparsification level(s))",
                l.plan.s, l.plan.k0, l.plan.levels
            ),
        }
    }
}

impl LocalAlgorithm for CycleAlgorithm {
    fn radius(&self, n: usize) -> u32 {
        match self {
            CycleAlgorithm::Constant(c) => c.radius(n),
            CycleAlgorithm::LogStar(l) => l.radius(n),
        }
    }

    fn label(&self, view: &View<'_>) -> Vec<OutLabel> {
        match self {
            CycleAlgorithm::Constant(c) => c.label(view),
            CycleAlgorithm::LogStar(l) => l.label(view),
        }
    }

    fn name(&self) -> &str {
        match self {
            CycleAlgorithm::Constant(_) => "synthesized-constant",
            CycleAlgorithm::LogStar(_) => "synthesized-logstar",
        }
    }
}

/// The constant tiling from a self-loop: every node outputs `x` on its
/// predecessor port and `y` on its successor port.
#[derive(Clone, Copy, Debug)]
pub struct ConstantCycle {
    /// Label on the predecessor-side half-edge.
    pub x: u32,
    /// Label on the successor-side half-edge.
    pub y: u32,
}

impl LocalAlgorithm for ConstantCycle {
    fn radius(&self, _n: usize) -> u32 {
        0
    }

    fn label(&self, _view: &View<'_>) -> Vec<OutLabel> {
        // Port 0 = predecessor, port 1 = successor.
        vec![OutLabel(self.x), OutLabel(self.y)]
    }

    fn name(&self) -> &str {
        "synthesized-constant"
    }
}

/// The precomputed data of the log* synthesis.
#[derive(Clone, Debug)]
pub struct LogStarPlan {
    /// The flexible state.
    s: usize,
    /// All segment lengths `≥ k0` admit closed walks `s → s`.
    k0: usize,
    /// Sparsification levels (doubling the anchor spacing each).
    levels: u32,
    /// Upper bound on the gap between consecutive final anchors.
    gap_bound: usize,
    /// `walks[l]` = the canonical state sequence of a length-`l` closed
    /// walk `s → s` (length `l + 1`, first = last = `s`), for `l` up to
    /// the largest length the fill can meet. Every walk ends with the
    /// same final transition `t* → s`, so the anchor's own left label is
    /// the same regardless of which segment precedes it.
    t_star: usize,
    walks: Vec<Option<Vec<u32>>>,
    /// `witness[y][y']` = the canonical `x'` with `{y, x'} ∈ ℰ` and
    /// `{x', y'} ∈ 𝒩²`.
    witness: Vec<Vec<Option<u32>>>,
}

/// The `Θ(log* n)` anchor-and-fill algorithm.
#[derive(Clone, Debug)]
pub struct LogStarCycle {
    plan: LogStarPlan,
}

/// Synthesizes an algorithm for an (input-independent) LCL on oriented
/// cycles, if its class admits one (`O(1)` or `Θ(log* n)`); returns
/// `Ok(None)` for global/finitely-solvable problems.
///
/// # Errors
///
/// As [`classify_oriented_cycle`](crate::classify_oriented_cycle).
pub fn synthesize_cycle(p: &LclProblem) -> Result<Option<CycleAlgorithm>, ClassifyError> {
    synthesize_cycle_traced(p).map(|report| report.outcome)
}

/// Like [`synthesize_cycle`], additionally reporting the synthesis trace:
/// automaton states, sparsification levels of a log* plan, and wall time.
///
/// # Errors
///
/// As [`synthesize_cycle`].
pub fn synthesize_cycle_traced(
    p: &LclProblem,
) -> Result<RunReport<Option<CycleAlgorithm>>, ClassifyError> {
    use lcl::Problem as _;
    let mut span = Span::start(format!("classify/synthesize-cycle/{}", p.name()));
    let outcome = synthesize_cycle_impl(p, &mut span)?;
    if let Some(alg) = &outcome {
        let steps = match alg {
            CycleAlgorithm::Constant(_) => 0,
            CycleAlgorithm::LogStar(l) => u64::from(l.plan.levels),
        };
        span.set(Counter::Steps, steps);
    }
    Ok(RunReport::new(outcome, Trace::new(span.finish())))
}

fn synthesize_cycle_impl(
    p: &LclProblem,
    span: &mut Span,
) -> Result<Option<CycleAlgorithm>, ClassifyError> {
    let automaton = Automaton::from_problem(p).map_err(ClassifyError)?;
    let k = automaton.state_count();
    span.set(Counter::States, k as u64);

    // Self-loop ⇒ constant tiling.
    for s in 0..k {
        if automaton.has_self_loop(s) {
            let witness = witness_table(p, &automaton);
            if let Some(x) = witness[s][s] {
                return Ok(Some(CycleAlgorithm::Constant(ConstantCycle {
                    x,
                    y: s as u32,
                })));
            }
        }
    }

    // Flexible state ⇒ log* anchor-and-fill.
    let gcds = automaton.cycle_gcds();
    let Some(s) = (0..k).find(|&s| gcds[s] == 1) else {
        return Ok(None);
    };

    // A canonical penultimate state t* (an in-neighbor of s on a cycle
    // through s): all walks end t* → s, so anchors see a fixed incoming
    // transition.
    let Some(t_star) = (0..k).find(|&t| automaton.successors(t).contains(&s) && gcds[t] == 1)
    else {
        return Ok(None);
    };
    // Closed-walk lengths achievable from s (ending t* → s), with
    // canonical predecessors.
    let limit = 4 * k * k + 64;
    let walks = closed_walks(&automaton, s, t_star, limit);
    // K₀: the smallest K with all lengths K..=limit achievable.
    let mut k0 = None;
    for start in (2..limit).rev() {
        if walks[start].is_none() {
            k0 = Some(start + 1);
            break;
        }
    }
    let k0 = k0.unwrap_or(2);
    if k0 + 8 >= limit {
        return Ok(None); // flexibility horizon beyond our table: bail out
    }

    // Levels: level-0 anchors (color minima) are ≥ 2 apart; each level
    // doubles the spacing. Need 2 · 2^levels ≥ k0.
    let mut levels = 0u32;
    while (2usize << levels) < k0 {
        levels += 1;
    }
    // Gap bound: level-0 gaps ≤ 4; each level multiplies by ≤ 4 (the
    // virtual-cycle minima are at most 4 anchors apart).
    let gap_bound = 4usize
        .checked_shl(2 * levels)
        .unwrap_or(usize::MAX)
        .min(4 * 4usize.pow(levels));
    if gap_bound >= limit {
        return Ok(None);
    }

    let witness = witness_table(p, &automaton);
    if witness[t_star][s].is_none() {
        return Ok(None);
    }
    Ok(Some(CycleAlgorithm::LogStar(LogStarCycle {
        plan: LogStarPlan {
            s,
            k0,
            levels,
            gap_bound,
            t_star,
            walks,
            witness,
        },
    })))
}

pub(crate) fn witness_table(p: &LclProblem, automaton: &Automaton) -> Vec<Vec<Option<u32>>> {
    use lcl::Problem as _;
    let k = automaton.state_count();
    (0..k)
        .map(|y| {
            (0..k)
                .map(|yp| {
                    (0..k as u32).find(|&x| {
                        automaton.is_output_allowed(x as usize)
                            && p.edge_allows(OutLabel(y as u32), OutLabel(x))
                            && p.node_allows(&[OutLabel(x), OutLabel(yp as u32)])
                    })
                })
                .collect()
        })
        .collect()
}

/// `walks[l]` = canonical closed walk `s → ... → t* → s` of length `l`
/// (state sequence of `l + 1` entries), or `None` if unachievable.
fn closed_walks(
    automaton: &Automaton,
    s: usize,
    t_star: usize,
    limit: usize,
) -> Vec<Option<Vec<u32>>> {
    let k = automaton.state_count();
    // reach[l][t] = predecessor state on the canonical length-l walk
    // s -> t, or usize::MAX.
    let mut reach: Vec<Vec<usize>> = vec![vec![usize::MAX; k]; limit + 1];
    reach[0][s] = s; // marker
    for l in 0..limit {
        for t in 0..k {
            if reach[l][t] == usize::MAX {
                continue;
            }
            for &u in automaton.successors(t) {
                if reach[l + 1][u] == usize::MAX {
                    reach[l + 1][u] = t;
                }
            }
        }
    }
    (0..=limit)
        .map(|l| {
            // A length-l closed walk ending t* -> s needs s -> t* in
            // l - 1 steps.
            if l < 2 || reach[l - 1][t_star] == usize::MAX {
                return None;
            }
            let mut states = vec![s as u32; l + 1];
            states[l] = s as u32;
            let mut current = t_star;
            for back in (1..=l - 1).rev() {
                states[back] = current as u32;
                current = reach[back][current];
            }
            states[0] = s as u32;
            (current == s).then_some(states)
        })
        .collect()
}

impl LogStarCycle {
    fn window_need(&self, n: usize) -> usize {
        let id_bits = 3 * (usize::BITS - n.leading_zeros()).max(1);
        let k_iters = cv_iterations(id_bits) as usize;
        let g = self.plan.gap_bound;
        // CV window + per-level horizons + final fill reach. Generous.
        (k_iters + 8) + (self.plan.levels as usize + 1) * (k_iters + 8) * (g + 4) + 2 * g
    }
}

impl LocalAlgorithm for LogStarCycle {
    fn radius(&self, n: usize) -> u32 {
        self.window_need(n) as u32
    }

    fn label(&self, view: &View<'_>) -> Vec<OutLabel> {
        let plan = &self.plan;
        // 1. Reconstruct the window by walking successor/predecessor
        //    ports inside the ball. Detect full-cycle wrap.
        let r = self.window_need(view.n);
        let mut right: Vec<usize> = Vec::new(); // ball-local indices
        let mut current = 0usize;
        let mut wrapped = false;
        for _ in 0..2 * r {
            match view.ball.nodes[current]
                .ports
                .get(1)
                .or_else(|| view.ball.nodes[current].ports.first())
            {
                Some(PortView::Inside { node, .. }) => {
                    // Successor port: index 1 on cycles (degree 2).
                    let succ = match view.ball.nodes[current].ports[1] {
                        PortView::Inside { node: m, .. } => m as usize,
                        PortView::Outside => break,
                    };
                    let _ = node;
                    if succ == 0 {
                        wrapped = true;
                        break;
                    }
                    right.push(succ);
                    current = succ;
                }
                _ => break,
            }
        }
        let ids_at = |local: usize| view.ids[local];

        if wrapped {
            // Whole cycle visible: length n = right.len() + 1.
            let seq: Vec<u64> = std::iter::once(ids_at(0))
                .chain(right.iter().map(|&i| ids_at(i)))
                .collect();
            return cyclic_fill(plan, &seq, 0, view.n);
        }

        // Linear window: also walk left.
        let mut left: Vec<usize> = Vec::new();
        current = 0;
        for _ in 0..r {
            match view.ball.nodes[current].ports.first() {
                Some(PortView::Inside { node, .. }) => {
                    left.push(*node as usize);
                    current = *node as usize;
                }
                _ => break,
            }
        }
        let mut seq: Vec<u64> = left.iter().rev().map(|&i| ids_at(i)).collect();
        let offset = seq.len();
        seq.push(ids_at(0));
        seq.extend(right.iter().map(|&i| ids_at(i)));
        linear_fill(plan, &seq, offset, view.n)
    }

    fn name(&self) -> &str {
        "synthesized-logstar"
    }
}

/// Offline pipeline on a fully visible cycle.
fn cyclic_fill(plan: &LogStarPlan, ids: &[u64], me: usize, n_announced: usize) -> Vec<OutLabel> {
    let n = ids.len();
    let id_bits = 3 * (usize::BITS - n_announced.leading_zeros()).max(1);
    let k_iters = cv_iterations(id_bits);
    // Cyclic CV to 3 colors.
    let mut colors = ids.to_vec();
    for _ in 0..k_iters {
        colors = (0..n)
            .map(|v| cv_step(colors[v], colors[(v + 1) % n]))
            .collect();
    }
    for target in [5u64, 4, 3] {
        colors = (0..n)
            .map(|v| {
                if colors[v] == target {
                    let l = colors[(v + n - 1) % n];
                    let r = colors[(v + 1) % n];
                    (0..3).find(|c| l != *c && r != *c).expect("free color")
                } else {
                    colors[v]
                }
            })
            .collect();
    }
    // Anchors level 0: strict color minima (cyclic).
    let mut anchors: Vec<usize> = (0..n)
        .filter(|&v| colors[v] < colors[(v + n - 1) % n] && colors[v] < colors[(v + 1) % n])
        .collect();
    // Sparsify.
    for _ in 0..plan.levels {
        if anchors.len() < 3 {
            break;
        }
        anchors = sparsify_cyclic(&anchors, ids, n);
    }
    if anchors.len() < 2 || anchors.windows(2).any(|w| w[1] - w[0] < plan.k0) || {
        let wrap = n - anchors[anchors.len() - 1] + anchors[0];
        anchors.len() >= 2 && wrap < plan.k0
    } {
        // Fall back to a single anchor at the global id minimum: the
        // whole cycle is one segment of length n.
        let a = (0..n).min_by_key(|&v| ids[v]).expect("nonempty");
        anchors = vec![a];
    }
    fill_from_anchors_cyclic(plan, &anchors, n, me)
}

/// One sparsification level on a fully visible cycle: Cole–Vishkin over
/// the anchor virtual cycle, keep color minima.
fn sparsify_cyclic(anchors: &[usize], ids: &[u64], _n: usize) -> Vec<usize> {
    let m = anchors.len();
    let mut colors: Vec<u64> = anchors.iter().map(|&a| ids[a]).collect();
    for _ in 0..cv_iterations(64) {
        colors = (0..m)
            .map(|i| cv_step(colors[i], colors[(i + 1) % m]))
            .collect();
    }
    for target in [5u64, 4, 3] {
        colors = (0..m)
            .map(|i| {
                if colors[i] == target {
                    let l = colors[(i + m - 1) % m];
                    let r = colors[(i + 1) % m];
                    (0..3).find(|c| l != *c && r != *c).expect("free color")
                } else {
                    colors[i]
                }
            })
            .collect();
    }
    let kept: Vec<usize> = (0..m)
        .filter(|&i| colors[i] < colors[(i + m - 1) % m] && colors[i] < colors[(i + 1) % m])
        .map(|i| anchors[i])
        .collect();
    if kept.len() >= 2 {
        kept
    } else {
        anchors.to_vec()
    }
}

fn fill_from_anchors_cyclic(
    plan: &LogStarPlan,
    anchors: &[usize],
    n: usize,
    me: usize,
) -> Vec<OutLabel> {
    // Segment containing `me`: [a, b) with a the last anchor ≤ me
    // (cyclically).
    let a_idx = anchors
        .iter()
        .rposition(|&a| a <= me)
        .unwrap_or(anchors.len() - 1);
    let a = anchors[a_idx];
    let b = anchors[(a_idx + 1) % anchors.len()];
    let seg_len = if anchors.len() == 1 {
        n
    } else {
        (b + n - a) % n
    };
    let offset = (me + n - a) % n;
    emit(plan, seg_len, offset)
}

/// Offline pipeline on a linear window; `offset` is my index in `ids`.
fn linear_fill(plan: &LogStarPlan, ids: &[u64], me: usize, n_announced: usize) -> Vec<OutLabel> {
    let n = ids.len();
    let id_bits = 3 * (usize::BITS - n_announced.leading_zeros()).max(1);
    let k_iters = cv_iterations(id_bits) as usize;
    // Linear CV: position v valid after j iterations if v + j < n.
    let mut colors = ids.to_vec();
    for _ in 0..k_iters {
        let mut next = colors.clone();
        for v in 0..n.saturating_sub(1) {
            next[v] = cv_step(colors[v], colors[v + 1]);
        }
        colors = next;
    }
    for target in [5u64, 4, 3] {
        let mut next = colors.clone();
        for v in 1..n.saturating_sub(1) {
            if colors[v] == target {
                next[v] = (0..3)
                    .find(|c| colors[v - 1] != *c && colors[v + 1] != *c)
                    .expect("free color");
            }
        }
        colors = next;
    }
    // Valid color margin: positions [margin0, n - margin0).
    let margin0 = k_iters + 4;
    // Anchors level 0 on the valid interior.
    let lo = margin0.max(1);
    let hi = n.saturating_sub(margin0.max(1));
    let mut anchors: Vec<usize> = (lo..hi)
        .filter(|&v| colors[v] < colors[v - 1] && colors[v] < colors[v + 1])
        .collect();
    for _ in 0..plan.levels {
        if anchors.len() < 4 {
            break;
        }
        anchors = sparsify_linear(&anchors, ids, k_iters);
    }
    // Find bracketing anchors around me.
    let a_idx = anchors.iter().rposition(|&a| a <= me);
    let b_idx = anchors.iter().position(|&a| a > me);
    match (a_idx, b_idx) {
        (Some(ai), Some(bi)) => {
            let a = anchors[ai];
            let b = anchors[bi];
            let seg = b - a;
            if seg >= plan.k0 && plan.walks.get(seg).is_some_and(Option::is_some) {
                emit(plan, seg, me - a)
            } else {
                // Segment length without a walk (sparsification edge
                // cases): emit the self-fallback.
                emit_fallback(plan)
            }
        }
        _ => emit_fallback(plan),
    }
}

/// One sparsification level on a linear anchor sequence: CV with margins.
fn sparsify_linear(anchors: &[usize], ids: &[u64], k_iters: usize) -> Vec<usize> {
    let m = anchors.len();
    let mut colors: Vec<u64> = anchors.iter().map(|&a| ids[a]).collect();
    for _ in 0..cv_iterations(64) {
        let mut next = colors.clone();
        for i in 0..m.saturating_sub(1) {
            next[i] = cv_step(colors[i], colors[i + 1]);
        }
        colors = next;
    }
    for target in [5u64, 4, 3] {
        let mut next = colors.clone();
        for i in 1..m.saturating_sub(1) {
            if colors[i] == target {
                next[i] = (0..3)
                    .find(|c| colors[i - 1] != *c && colors[i + 1] != *c)
                    .expect("free color");
            }
        }
        colors = next;
    }
    let margin = cv_iterations(64) as usize + 4 + k_iters / (k_iters.max(1));
    let lo = margin.max(1);
    let hi = m.saturating_sub(margin.max(1));
    let kept: Vec<usize> = (lo..hi)
        .filter(|&i| colors[i] < colors[i - 1] && colors[i] < colors[i + 1])
        .map(|i| anchors[i])
        .collect();
    if kept.len() >= 2 {
        kept
    } else {
        anchors.to_vec()
    }
}

/// Output labels (x on port 0, y on port 1) for offset `off` in a
/// segment of length `seg` starting at an anchor.
fn emit(plan: &LogStarPlan, seg: usize, off: usize) -> Vec<OutLabel> {
    let Some(Some(walk)) = plan.walks.get(seg) else {
        return emit_fallback(plan);
    };
    let y = walk[off];
    let y_prev = if off == 0 {
        // Every walk ends with the canonical transition t* → s, so the
        // previous node's state is t* regardless of the segment behind.
        plan.t_star as u32
    } else {
        walk[off - 1]
    };
    let x = plan.witness[y_prev as usize][y as usize].expect("walk transitions have witnesses");
    vec![OutLabel(x), OutLabel(y)]
}

fn emit_fallback(plan: &LogStarPlan) -> Vec<OutLabel> {
    let s = plan.s as u32;
    let x = plan.witness[plan.t_star][plan.s].unwrap_or(s);
    vec![OutLabel(x), OutLabel(s)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::gen;
    use lcl_local::{run_deterministic, IdAssignment};

    fn three_coloring() -> LclProblem {
        LclProblem::parse("max-degree: 2\nnodes:\nA*\nB*\nC*\nedges:\nA B\nA C\nB C\n").unwrap()
    }

    fn free() -> LclProblem {
        LclProblem::parse("max-degree: 2\nnodes:\nX* Y*\nedges:\nX X\nX Y\nY Y\n").unwrap()
    }

    /// "Distance-counter marking": a node's left/right half-edges carry
    /// phase labels `Ai`/`Bj` such that phases advance along the cycle
    /// and reset every 3 to 5 steps. The left-role (`A`) and right-role
    /// (`B`) alphabets are disjoint, making the automaton a genuinely
    /// directed chain: closed walks have lengths `{3,4,5}⁺` and `K₀ = 3`.
    fn spaced_marking() -> LclProblem {
        LclProblem::parse(
            "max-degree: 2\noutputs: A0 A1 A2 A3 A4 B0 B1 B2 B3 B4\n\
             nodes:\nA0 B1\nA1 B2\nA2 B3\nA2 B0\nA3 B4\nA3 B0\nA4 B0\n\
             edges:\nA0 B0\nA1 B1\nA2 B2\nA3 B3\nA4 B4\n",
        )
        .unwrap()
    }

    fn check_on_cycles(p: &LclProblem, alg: &CycleAlgorithm, sizes: &[usize]) {
        for &n in sizes {
            let g = gen::cycle(n);
            let input = lcl::uniform_input(&g);
            let ids = IdAssignment::random_polynomial(n, 3, n as u64 + 1);
            let run = run_deterministic(alg, &g, &input, &ids, None);
            let violations = lcl::verify(p, &g, &input, &run.output);
            assert!(violations.is_empty(), "n = {n}: {violations:?}");
        }
    }

    #[test]
    fn free_problem_synthesizes_constant() {
        let p = free();
        let alg = synthesize_cycle(&p).unwrap().expect("synthesizable");
        assert!(matches!(alg, CycleAlgorithm::Constant(_)));
        check_on_cycles(&p, &alg, &[3, 7, 64]);
    }

    #[test]
    fn three_coloring_synthesizes_logstar() {
        let p = three_coloring();
        let alg = synthesize_cycle(&p).unwrap().expect("synthesizable");
        assert!(matches!(alg, CycleAlgorithm::LogStar(_)));
        check_on_cycles(&p, &alg, &[16, 45, 99, 256]);
    }

    #[test]
    fn spaced_marking_synthesizes_with_sparsification() {
        let p = spaced_marking();
        let alg = synthesize_cycle(&p).unwrap().expect("synthesizable");
        let CycleAlgorithm::LogStar(ref l) = alg else {
            panic!("expected log*: {}", alg.describe());
        };
        assert!(l.plan.k0 >= 3, "K₀ = {}", l.plan.k0);
        assert!(l.plan.levels >= 1);
        check_on_cycles(&p, &alg, &[24, 50, 121]);
    }

    #[test]
    fn traced_synthesis_records_states_and_levels() {
        let p = three_coloring();
        let report = synthesize_cycle_traced(&p).unwrap();
        assert!(report.outcome.is_some());
        assert_eq!(report.trace.total(Counter::States), 3);
        assert!(report
            .trace
            .root()
            .name()
            .starts_with("classify/synthesize-cycle/"));
    }

    #[test]
    fn global_problems_do_not_synthesize() {
        let two_col = LclProblem::parse("max-degree: 2\nnodes:\nA*\nB*\nedges:\nA B\n").unwrap();
        assert!(synthesize_cycle(&two_col).unwrap().is_none());
    }

    #[test]
    fn synthesized_radius_is_log_star_scale() {
        let p = three_coloring();
        let alg = synthesize_cycle(&p).unwrap().expect("synthesizable");
        let small = alg.radius(1 << 8);
        let large = alg.radius(1 << 60);
        assert!(large >= small);
        assert!(large <= 4 * small, "small={small} large={large}");
    }
}
