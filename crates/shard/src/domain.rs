//! Per-shard fault domains.
//!
//! A [`ShardDomain`] is the blast-radius unit of the sharded executor:
//! each shard carries its *own* [`FaultPlan`] (the global plan filtered
//! to the nodes it owns plus its whole-shard losses), its own
//! [`Budget`] and [`CancelToken`], and its own [`EventLog`]. Worker
//! threads only ever touch the domain of the shard they are stepping,
//! so a fault — a node panic, a budget breach, or the loss of the whole
//! shard — is contained by construction: no other shard's plan, token,
//! or event stream is even reachable from the failing step.
//!
//! Event streams stay attributable after the fact because every
//! shard-level event ([`Event::ShardStep`], `Checkpoint`, `Retry`)
//! carries the shard id; the coordinator folds the per-shard logs into
//! the caller's log in shard order, which keeps the merged sequence —
//! and therefore the merged `CostModel` — independent of how many
//! runner threads executed the shards.
//!
//! [`Event::ShardStep`]: lcl_obs::Event::ShardStep

use std::ops::Range;

use lcl_faults::{Budget, CancelToken, Fault, FaultPlan};
use lcl_graph::ShardMap;
use lcl_obs::EventLog;

/// How many events each shard's private log retains. Shard logs hold
/// one `ShardStep` per superstep plus faults, checkpoints, and retries;
/// the ring is generous for every realistic run and degrades by
/// deterministic drop-counting beyond it.
pub const SHARD_EVENT_CAPACITY: usize = 4096;

/// One shard's private fault domain: plan, budget, cancel token, and
/// event stream, all scoped to the contiguous node range the shard owns.
#[derive(Debug)]
pub struct ShardDomain {
    id: usize,
    range: Range<usize>,
    plan: FaultPlan,
    budget: Budget,
    token: CancelToken,
    events: EventLog,
    crash_supersteps: Vec<u32>,
}

impl ShardDomain {
    /// Carves shard `id`'s domain out of a run-wide plan and budget.
    ///
    /// The domain plan keeps exactly the node-level faults whose node
    /// (or query) index falls in the shard's range, plus the
    /// whole-shard losses scheduled for this shard; faults owned by
    /// other shards are unreachable from this domain. The global ID
    /// permutation is *not* copied — identifiers are a run-wide axis
    /// the coordinator resolves before any domain is carved.
    pub fn carve(id: usize, map: &ShardMap, plan: &FaultPlan, budget: &Budget) -> Self {
        let range = map.range(id);
        let mut own = FaultPlan::new(plan.seed());
        for &fault in plan.faults() {
            let keep = match fault {
                Fault::Crash { node, .. }
                | Fault::CorruptView { node, .. }
                | Fault::PanicNode { node } => range.contains(&node),
                Fault::ProbeLie { query, .. } => range.contains(&query),
                Fault::ShardCrash { shard, .. } => shard == id,
                // Process kills are the supervisor's concern: a worker
                // must never see (and so never react to) its own
                // scheduled death, and the in-process substrate has no
                // process to kill.
                Fault::ShardKill { .. } => false,
            };
            if keep {
                own = own.with(fault);
            }
        }
        let crash_supersteps = own.shard_crashes(id);
        let budget = *budget;
        let token = budget.token();
        Self {
            id,
            range,
            plan: own,
            budget,
            token,
            events: EventLog::new(SHARD_EVENT_CAPACITY),
            crash_supersteps,
        }
    }

    /// The shard id within the run's partition.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The contiguous structural-index range this shard owns.
    pub fn range(&self) -> Range<usize> {
        self.range.clone()
    }

    /// The shard-scoped fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The shard's budget.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The shard's cancel token (checkpointed once per superstep).
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// The shard's private event stream.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Supersteps at which this shard is scheduled to be lost whole,
    /// ascending and deduplicated.
    pub fn crash_supersteps(&self) -> &[u32] {
        &self.crash_supersteps
    }

    /// Whether a whole-shard loss is scheduled at `superstep`.
    pub fn crashes_at(&self, superstep: u32) -> bool {
        self.crash_supersteps.binary_search(&superstep).is_ok()
    }

    /// Whether any whole-shard loss is scheduled — iff so, the executor
    /// snapshots this shard at the start of every superstep.
    pub fn has_planned_crashes(&self) -> bool {
        !self.crash_supersteps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carve_filters_faults_to_the_owned_range() {
        let map = ShardMap::new(10, 2); // [0..5) and [5..10)
        let plan = FaultPlan::new(7)
            .with(Fault::Crash { node: 1, round: 0 })
            .with(Fault::Crash { node: 6, round: 1 })
            .with(Fault::PanicNode { node: 9 })
            .with(Fault::ProbeLie { query: 2, nth: 0 })
            .with(Fault::ShardCrash {
                shard: 1,
                superstep: 3,
            });
        let d0 = ShardDomain::carve(0, &map, &plan, &Budget::unlimited());
        let d1 = ShardDomain::carve(1, &map, &plan, &Budget::unlimited());
        assert_eq!(d0.range(), 0..5);
        assert_eq!(d0.plan().faults().len(), 2, "crash@1 and probe-lie@2");
        assert_eq!(d0.plan().crash_round(1), Some(0));
        assert!(!d0.has_planned_crashes());
        assert_eq!(d1.plan().crash_round(6), Some(1));
        assert!(d1.plan().panics(9));
        assert_eq!(d1.crash_supersteps(), &[3]);
        assert!(d1.crashes_at(3) && !d1.crashes_at(2));
        assert_eq!(d0.plan().seed(), plan.seed(), "seed is shared");
    }

    #[test]
    fn domains_have_independent_tokens() {
        let map = ShardMap::new(4, 2);
        let plan = FaultPlan::new(0);
        let d0 = ShardDomain::carve(0, &map, &plan, &Budget::unlimited());
        let d1 = ShardDomain::carve(1, &map, &plan, &Budget::unlimited());
        d0.token().cancel();
        assert!(d0.token().checkpoint("shard/0", 0).is_err());
        assert!(
            d1.token().checkpoint("shard/1", 0).is_ok(),
            "cancelling one shard's token must not trip its neighbor's"
        );
    }
}
