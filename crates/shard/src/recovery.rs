//! Frontier repair after whole-shard loss — without a global reference
//! run.
//!
//! `lcl_recover::repair` mends damage against a fault-free reference
//! labeling. For the sharded executor, re-running the whole graph
//! cleanly just to mend a few frontier nodes would defeat the point of
//! sharding, and the containment argument says it is unnecessary: a
//! whole-shard loss damages only the crashed shard (rebuilt, so usually
//! nothing) and the healthy frontier nodes that skipped a round on
//! `"halo-loss"`. [`repair_sharded`] therefore synthesizes the
//! reference *locally*, by replaying a clean execution on a **cone**
//! around the violations.
//!
//! # The cone argument
//!
//! Let `T` be the clean run's round count and `r0 = max_rounds - 1`
//! the largest patch radius bounded repair may use. The nodes repair
//! can ever rewrite all lie in the *region* `B(seeds, r0)` around the
//! violating nodes. A node's state after `t` clean rounds is a
//! function of its radius-`t` ball, so replaying `T` rounds on the
//! cone `B(region, T)` — delivering round `t`'s messages only to nodes
//! within distance `T - t - 1` of the region — computes the exact
//! clean final state of every region node by induction: a node at
//! distance `d` from the region holds its correct round-`t` state as
//! long as `t ≤ T - d`, which is precisely as long as its sends are
//! still consumed. The synthesized reference agrees with the (never
//! executed) global clean run on every node repair may touch, at cost
//! `O(|B(seeds, r0 + T)|)` instead of `O(n)`.
//!
//! The replay assumes the cone itself executes fault-free — true for
//! whole-shard loss plans, whose node-level legs are empty. Plans that
//! also crash or panic individual nodes need the global-reference
//! `lcl_recover::repair` instead.

use std::collections::{HashMap, VecDeque};

use lcl::{verify, violating_nodes, HalfEdgeLabeling, InLabel, OutLabel, Problem};
use lcl_graph::{Graph, NodeId};
use lcl_local::{NodeInit, SyncAlgorithm};
use lcl_recover::{
    certify, repair_tracked, RepairFailed, RepairOptions, RepairReport, TrackedRepair,
};

/// Mends a degraded sharded output by replaying a clean execution on a
/// cone around the violations and patching against it.
///
/// `clean_rounds` must be the round count of the clean run of `alg` on
/// this graph (for a synthesized `ConstantRound { steps }` algorithm
/// that is `steps`; for a `k`-round flood it is `k`), and `ids` the
/// same effective identifier assignment the degraded run observed.
/// The returned patched-node list (ascending) is the containment
/// witness the shard chaos soak asserts on.
///
/// # Errors
///
/// [`RepairFailed`] when `opts.max_rounds` patch rounds were not
/// enough — in particular when node-level faults corrupted the cone,
/// violating the replay's fault-free precondition.
#[allow(clippy::too_many_arguments)]
pub fn repair_sharded<P, A>(
    p: &P,
    alg: &A,
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &[u64],
    n_announced: Option<usize>,
    clean_rounds: u32,
    output: HalfEdgeLabeling<OutLabel>,
    opts: RepairOptions,
) -> Result<TrackedRepair, RepairFailed>
where
    P: Problem + ?Sized,
    A: SyncAlgorithm,
{
    assert_eq!(ids.len(), graph.node_count(), "ids cover the graph");
    let violations = verify(p, graph, input, &output);
    if violations.is_empty() {
        return certify(p, graph, input, output).map(|c| (c, RepairReport::default(), Vec::new()));
    }
    let seeds = violating_nodes(graph, &violations);
    let r0 = opts.max_rounds.saturating_sub(1);
    let t_total = clean_rounds;

    // One multi-source BFS from the violation seeds out to depth
    // r0 + T. Its visited set is the cone; distance-to-region is the
    // seed distance minus r0 (clamped at zero), because the region is
    // exactly the first r0 BFS layers.
    let depth_cap = r0 + t_total;
    let mut seed_dist: HashMap<u32, u32> = HashMap::new();
    let mut cone: Vec<NodeId> = Vec::new();
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    for &s in &seeds {
        seed_dist.entry(s.0).or_insert_with(|| {
            cone.push(s);
            queue.push_back(s);
            0
        });
    }
    while let Some(v) = queue.pop_front() {
        let d = seed_dist[&v.0];
        if d == depth_cap {
            continue;
        }
        for h in graph.half_edges_of(v) {
            let u = graph.node_of(graph.twin(h));
            seed_dist.entry(u.0).or_insert_with(|| {
                cone.push(u);
                queue.push_back(u);
                d + 1
            });
        }
    }
    cone.sort_unstable();
    let idx_of: HashMap<u32, usize> = cone.iter().enumerate().map(|(i, v)| (v.0, i)).collect();
    let gate: Vec<u32> = cone
        .iter()
        .map(|v| seed_dist[&v.0].saturating_sub(r0))
        .collect();

    // Clean replay on the cone. Plain (un-isolated) algorithm calls:
    // the cone is fault-free by precondition, so a panic here is a
    // genuine algorithm bug and should surface as one.
    let n = n_announced.unwrap_or_else(|| graph.node_count());
    let mut states: Vec<A::State> = cone
        .iter()
        .map(|&v| {
            alg.init(&NodeInit {
                node: v,
                n,
                id: ids[v.index()],
                degree: graph.degree(v),
                inputs: graph.half_edges_of(v).map(|h| input.get(h)).collect(),
            })
        })
        .collect();
    for t in 0..t_total {
        let send_gate = t_total - t;
        let mut outboxes: Vec<Option<Vec<A::Msg>>> = vec![None; cone.len()];
        for (i, &v) in cone.iter().enumerate() {
            if gate[i] <= send_gate {
                let out = alg.send(&states[i], t);
                assert_eq!(
                    out.len(),
                    graph.degree(v) as usize,
                    "clean replay sends one message per port"
                );
                outboxes[i] = Some(out);
            }
        }
        for (i, &v) in cone.iter().enumerate() {
            if gate[i] + 1 > send_gate {
                continue;
            }
            let inbox: Vec<A::Msg> = graph
                .half_edges_of(v)
                .map(|h| {
                    let twin = graph.twin(h);
                    let u = graph.node_of(twin);
                    let q = graph.port_of(twin) as usize;
                    outboxes[idx_of[&u.0]]
                        .as_ref()
                        .expect("why: a gated receiver's neighbors are all gated senders")[q]
                        .clone()
                })
                .collect();
            alg.receive(&mut states[i], &inbox, t);
        }
    }

    // The synthesized reference: the degraded output everywhere, with
    // the exact clean labels on the region — the only nodes bounded
    // repair may rewrite.
    let mut reference = output.clone();
    for (i, &v) in cone.iter().enumerate() {
        if gate[i] == 0 {
            let labels = alg.output(&states[i]);
            assert_eq!(
                labels.len(),
                graph.degree(v) as usize,
                "clean replay labels every port"
            );
            for (h, label) in graph.half_edges_of(v).zip(labels) {
                reference.set(h, label);
            }
        }
    }
    repair_tracked(p, graph, input, output, &reference, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl::LclProblem;
    use lcl_graph::gen;

    /// Two-coloring by parity of a 1-round "learn your neighbors'
    /// parities" exchange: each node outputs its own parity, which is a
    /// proper 2-coloring of a path; the exchanged messages make the
    /// replay's gating observable.
    struct ParityColor;

    #[derive(Clone)]
    struct ParityState {
        parity: u32,
        degree: usize,
        seen: u32,
    }

    impl SyncAlgorithm for ParityColor {
        type State = ParityState;
        type Msg = u32;

        fn init(&self, init: &NodeInit) -> ParityState {
            ParityState {
                parity: init.node.0 % 2,
                degree: init.degree as usize,
                seen: 0,
            }
        }

        fn send(&self, state: &ParityState, _round: u32) -> Vec<u32> {
            vec![state.parity; state.degree]
        }

        fn receive(&self, state: &mut ParityState, inbox: &[u32], _round: u32) {
            if state.seen == 0 {
                state.seen = 1 + inbox.iter().sum::<u32>();
            }
        }

        fn is_done(&self, state: &ParityState) -> bool {
            state.seen > 0
        }

        fn output(&self, state: &ParityState) -> Vec<OutLabel> {
            vec![OutLabel(state.parity); state.degree]
        }

        fn name(&self) -> &str {
            "parity-color"
        }
    }

    fn two_coloring() -> LclProblem {
        LclProblem::builder("2col", 2)
            .outputs(["A", "B"])
            .node_pattern(&["A*"])
            .node_pattern(&["B*"])
            .edge(&["A", "B"])
            .build()
            .expect("why: the fixed two-coloring spec is well-formed")
    }

    #[test]
    fn frontier_damage_mends_without_a_global_reference() {
        let g = gen::path(40);
        let p = two_coloring();
        let input = lcl::uniform_input(&g);
        let ids: Vec<u64> = (0..40).collect();
        let clean =
            HalfEdgeLabeling::from_node_fn(&g, |v| vec![OutLabel(v.0 % 2); g.degree(v) as usize]);
        // Damage two "frontier" nodes far apart.
        let mut damaged = clean.clone();
        for node in [10u32, 30] {
            for h in g.half_edges_of(NodeId(node)) {
                damaged.set(h, OutLabel(1 - damaged.get(h).0));
            }
        }
        let (certified, report, patched) = repair_sharded(
            &p,
            &ParityColor,
            &g,
            &input,
            &ids,
            None,
            1,
            damaged,
            RepairOptions { max_rounds: 3 },
        )
        .expect("why: two flipped nodes mend within three radius rounds");
        assert_eq!(certified.get().as_slice(), clean.as_slice());
        assert!(report.rounds >= 1);
        // Patching stayed local: within radius 2 of the damage.
        assert!(
            patched
                .iter()
                .all(|v| (8..=12).contains(&v.index()) || (28..=32).contains(&v.index())),
            "{patched:?}"
        );
    }

    #[test]
    fn valid_outputs_certify_without_replay() {
        let g = gen::path(6);
        let p = two_coloring();
        let input = lcl::uniform_input(&g);
        let ids: Vec<u64> = (0..6).collect();
        let clean =
            HalfEdgeLabeling::from_node_fn(&g, |v| vec![OutLabel(v.0 % 2); g.degree(v) as usize]);
        let (certified, report, patched) = repair_sharded(
            &p,
            &ParityColor,
            &g,
            &input,
            &ids,
            None,
            1,
            clean.clone(),
            RepairOptions::default(),
        )
        .expect("why: a proper coloring verifies as-is");
        assert_eq!(certified.get().as_slice(), clean.as_slice());
        assert_eq!(report, RepairReport::default());
        assert!(patched.is_empty());
    }

    /// An algorithm whose clean run does *not* solve 2-coloring: the
    /// synthesized reference is itself invalid, so repair must fail
    /// with a typed error instead of certifying garbage.
    struct AllZero;

    impl SyncAlgorithm for AllZero {
        type State = usize;
        type Msg = ();

        fn init(&self, init: &NodeInit) -> usize {
            init.degree as usize
        }

        fn send(&self, state: &usize, _round: u32) -> Vec<()> {
            vec![(); *state]
        }

        fn receive(&self, _state: &mut usize, _inbox: &[()], _round: u32) {}

        fn is_done(&self, _state: &usize) -> bool {
            true
        }

        fn output(&self, state: &usize) -> Vec<OutLabel> {
            vec![OutLabel(0); *state]
        }

        fn name(&self) -> &str {
            "all-zero"
        }
    }

    #[test]
    fn unmendable_damage_returns_a_typed_failure() {
        let g = gen::path(8);
        let p = two_coloring();
        let input = lcl::uniform_input(&g);
        let ids: Vec<u64> = (0..8).collect();
        let damaged = HalfEdgeLabeling::uniform(&g, OutLabel(1));
        let err = repair_sharded(
            &p,
            &AllZero,
            &g,
            &input,
            &ids,
            None,
            0,
            damaged,
            RepairOptions { max_rounds: 2 },
        )
        .expect_err("an invalid synthesized reference can never certify");
        assert_eq!(err.rounds_tried, 2);
        assert!(!err.violations.is_empty());
    }
}
