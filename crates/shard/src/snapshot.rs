//! Versioned shard checkpoints.
//!
//! A [`ShardSnapshot`] is the serialized face of a shard checkpoint,
//! following the `lcl_core::TowerSnapshot` conventions exactly: a
//! plain-data struct, a leading version field readers reject when it
//! is not [`SHARD_SNAPSHOT_VERSION`], and a typed error enum instead
//! of stringly failures. The executor takes one at the start of every
//! superstep of a crash-planned shard and round-trips it through JSON
//! (that is what the `Checkpoint` event attests); the whole-shard
//! rebuild then restores the in-memory image the snapshot describes
//! and replays the lost superstep.
//!
//! The algorithm states themselves are deliberately *not* serialized:
//! `SyncAlgorithm::State` is an opaque type parameter with no wire
//! format, so the JSON carries the structural metadata (who, where,
//! when, and how much halo traffic had flowed) while the state image
//! lives beside it in memory. A future cross-process shard runner
//! would add a state codec on top of this envelope; see `ROADMAP.md`.

use std::fmt;

/// Serialization version; bump whenever [`ShardSnapshot::to_json`]
/// changes shape. Readers reject every other version with
/// [`ShardSnapshotError::Version`].
pub const SHARD_SNAPSHOT_VERSION: u64 = 1;

/// Checkpoint metadata for one shard at the start of one superstep.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShardSnapshot {
    /// Format version ([`SHARD_SNAPSHOT_VERSION`] when written by this
    /// build).
    pub version: u64,
    /// The shard id within the run's partition.
    pub shard: u64,
    /// First structural node index the shard owns.
    pub range_start: u64,
    /// One past the last structural node index the shard owns.
    pub range_end: u64,
    /// The superstep whose start this snapshot captures.
    pub superstep: u64,
    /// Nodes of the shard still live (not died) at capture time.
    pub live_nodes: u64,
    /// Cumulative boundary messages the shard had sent.
    pub halo_messages: u64,
    /// Cumulative boundary bytes (count-derived) the shard had sent.
    pub halo_bytes: u64,
}

/// Why a serialized shard snapshot could not be read back.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ShardSnapshotError {
    /// Malformed JSON at byte `pos`.
    Json {
        /// Byte offset of the failure.
        pos: usize,
        /// What the parser expected.
        what: &'static str,
    },
    /// Structurally valid JSON that violates a snapshot invariant.
    Invalid(&'static str),
    /// A version this build does not understand.
    Version {
        /// The version the document declared.
        found: u64,
        /// The single version this build supports.
        supported: u64,
    },
}

impl fmt::Display for ShardSnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardSnapshotError::Json { pos, what } => {
                write!(f, "malformed snapshot JSON at byte {pos}: expected {what}")
            }
            ShardSnapshotError::Invalid(what) => write!(f, "invalid snapshot: {what}"),
            ShardSnapshotError::Version { found, supported } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (supported: {supported})"
                )
            }
        }
    }
}

impl std::error::Error for ShardSnapshotError {}

impl ShardSnapshot {
    /// Serializes the snapshot to a single-line JSON object, version
    /// field first.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"version\": {}, \"shard\": {}, \"range_start\": {}, \"range_end\": {}, ",
                "\"superstep\": {}, \"live_nodes\": {}, \"halo_messages\": {}, ",
                "\"halo_bytes\": {}}}"
            ),
            self.version,
            self.shard,
            self.range_start,
            self.range_end,
            self.superstep,
            self.live_nodes,
            self.halo_messages,
            self.halo_bytes,
        )
    }

    /// Parses a snapshot previously written by [`ShardSnapshot::to_json`].
    ///
    /// Key order is not significant, but every field must be present
    /// exactly once and the version must be supported.
    ///
    /// # Errors
    ///
    /// [`ShardSnapshotError`] describing the first malformation, missing
    /// or duplicate field, or version mismatch.
    pub fn parse(text: &str) -> Result<Self, ShardSnapshotError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        p.expect(b'{', "'{'")?;
        let mut fields: [Option<u64>; 8] = [None; 8];
        const KEYS: [&str; 8] = [
            "version",
            "shard",
            "range_start",
            "range_end",
            "superstep",
            "live_nodes",
            "halo_messages",
            "halo_bytes",
        ];
        loop {
            p.skip_ws();
            let key = p.string()?;
            let slot = KEYS
                .iter()
                .position(|k| *k == key)
                .ok_or(ShardSnapshotError::Invalid("unknown snapshot field"))?;
            if fields[slot].is_some() {
                return Err(ShardSnapshotError::Invalid("duplicate snapshot field"));
            }
            p.skip_ws();
            p.expect(b':', "':'")?;
            p.skip_ws();
            fields[slot] = Some(p.number()?);
            p.skip_ws();
            if p.eat(b',') {
                continue;
            }
            p.expect(b'}', "',' or '}'")?;
            break;
        }
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(ShardSnapshotError::Json {
                pos: p.pos,
                what: "end of document",
            });
        }
        if let Some(found) = fields[0].filter(|&v| v != SHARD_SNAPSHOT_VERSION) {
            return Err(ShardSnapshotError::Version {
                found,
                supported: SHARD_SNAPSHOT_VERSION,
            });
        }
        let get = |slot: usize| fields[slot].ok_or(ShardSnapshotError::Invalid("missing field"));
        let snapshot = ShardSnapshot {
            version: get(0)?,
            shard: get(1)?,
            range_start: get(2)?,
            range_end: get(3)?,
            superstep: get(4)?,
            live_nodes: get(5)?,
            halo_messages: get(6)?,
            halo_bytes: get(7)?,
        };
        if snapshot.range_end < snapshot.range_start {
            return Err(ShardSnapshotError::Invalid("range_end < range_start"));
        }
        if snapshot.live_nodes > snapshot.range_end - snapshot.range_start {
            return Err(ShardSnapshotError::Invalid("more live nodes than owned"));
        }
        Ok(snapshot)
    }
}

/// Minimal scanner for the flat all-integer object [`ShardSnapshot`]
/// serializes to; byte positions feed [`ShardSnapshotError::Json`].
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8, what: &'static str) -> Result<(), ShardSnapshotError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(ShardSnapshotError::Json {
                pos: self.pos,
                what,
            })
        }
    }

    fn string(&mut self) -> Result<String, ShardSnapshotError> {
        self.expect(b'"', "'\"'")?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| ShardSnapshotError::Json {
                        pos: start,
                        what: "UTF-8 key",
                    })?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err(ShardSnapshotError::Json {
            pos: self.pos,
            what: "closing '\"'",
        })
    }

    fn number(&mut self) -> Result<u64, ShardSnapshotError> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(ShardSnapshotError::Json {
                pos: self.pos,
                what: "unsigned integer",
            });
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or(ShardSnapshotError::Json {
                pos: start,
                what: "u64 in range",
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ShardSnapshot {
        ShardSnapshot {
            version: SHARD_SNAPSHOT_VERSION,
            shard: 3,
            range_start: 12,
            range_end: 20,
            superstep: 5,
            live_nodes: 7,
            halo_messages: 44,
            halo_bytes: 352,
        }
    }

    #[test]
    fn json_round_trips_bit_identically() {
        let snap = sample();
        let json = snap.to_json();
        assert!(json.starts_with("{\"version\": 1"), "version field first");
        assert_eq!(ShardSnapshot::parse(&json).unwrap(), snap);
        // Key order is accepted permuted, too.
        let reordered = "{\"shard\": 3, \"version\": 1, \"range_start\": 12, \
             \"range_end\": 20, \"superstep\": 5, \"live_nodes\": 7, \
             \"halo_messages\": 44, \"halo_bytes\": 352}";
        assert_eq!(ShardSnapshot::parse(reordered).unwrap(), snap);
    }

    #[test]
    fn unsupported_versions_are_rejected() {
        let json = sample()
            .to_json()
            .replacen("\"version\": 1", "\"version\": 9", 1);
        assert_eq!(
            ShardSnapshot::parse(&json),
            Err(ShardSnapshotError::Version {
                found: 9,
                supported: SHARD_SNAPSHOT_VERSION,
            })
        );
    }

    #[test]
    fn malformed_documents_carry_the_byte_position() {
        let err = ShardSnapshot::parse("{\"version\": x}").unwrap_err();
        match err {
            ShardSnapshotError::Json { pos, what } => {
                assert_eq!(pos, 12);
                assert_eq!(what, "unsigned integer");
            }
            other => panic!("expected Json error, got {other:?}"),
        }
        assert!(ShardSnapshot::parse("").is_err());
        assert!(
            ShardSnapshot::parse("{\"version\": 1}").is_err(),
            "missing fields"
        );
    }

    #[test]
    fn invariant_violations_are_typed() {
        let bad_range = sample()
            .to_json()
            .replacen("\"range_end\": 20", "\"range_end\": 2", 1);
        assert_eq!(
            ShardSnapshot::parse(&bad_range),
            Err(ShardSnapshotError::Invalid("range_end < range_start"))
        );
        let dup = "{\"version\": 1, \"version\": 1}";
        assert_eq!(
            ShardSnapshot::parse(dup),
            Err(ShardSnapshotError::Invalid("duplicate snapshot field"))
        );
        let unknown = "{\"version\": 1, \"bogus\": 2}";
        assert_eq!(
            ShardSnapshot::parse(unknown),
            Err(ShardSnapshotError::Invalid("unknown snapshot field"))
        );
        let err = ShardSnapshot::parse("{\"version\": 9}").unwrap_err();
        assert!(err.to_string().contains("unsupported snapshot version 9"));
    }
}
