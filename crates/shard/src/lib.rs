//! Sharded graph substrate with per-shard fault domains.
//!
//! This crate runs the synchronous LOCAL model over a partitioned
//! graph: a [`ShardMap`](lcl_graph::ShardMap) splits the node range
//! into contiguous shards, each shard is stepped as its own fault
//! domain ([`ShardDomain`]: private fault plan, budget, cancel token,
//! and event stream), and LOCAL rounds execute as boundary-exchange
//! supersteps over `std::sync::mpsc` channels. The executor
//! ([`simulate_sharded_with`]) is bit-identical to the single-image
//! faulted executor for every plan without whole-shard losses —
//! outcome, fault list, and event-log cost model all agree across
//! every shard count and runner thread count.
//!
//! On top of the substrate, whole-shard loss is a first-class fault:
//! `Fault::ShardCrash` kills a shard mid-superstep, the shard is
//! rebuilt from its superstep-start [`ShardSnapshot`] checkpoint, and
//! the damage — confined by construction to the healthy neighbors'
//! frontier nodes — is mended by [`repair_sharded`], which synthesizes
//! its repair reference by replaying a clean execution on a cone
//! around the violations instead of re-running the whole graph.
//!
//! The crate follows the repo's recovery lattice end to end: *retry*
//! (the rebuild replays the lost superstep), *resume* (healthy shards
//! never roll back), *repair* (cone-local mending), *degrade* (an
//! unplanned shard loss condemns only that shard's nodes).

pub mod domain;
pub mod recovery;
pub mod run;
pub mod snapshot;

pub use domain::{ShardDomain, SHARD_EVENT_CAPACITY};
pub use recovery::repair_sharded;
pub use run::simulate_sharded_with;
pub use snapshot::{ShardSnapshot, ShardSnapshotError, SHARD_SNAPSHOT_VERSION};
