//! The sharded synchronous executor.
//!
//! LOCAL rounds run as bulk-synchronous supersteps over a [`ShardMap`]
//! partition: every shard computes its nodes' sends, exchanges boundary
//! ("halo") message batches with its neighbor shards over
//! `std::sync::mpsc` channels, and delivers inboxes — with a barrier
//! (a `std::thread::scope` join) between the phases, so a superstep's
//! halos are always fully enqueued before any shard starts delivering.
//!
//! # Bit-identity with the single-image executor
//!
//! The per-node semantics are an exact mirror of
//! `lcl_local`'s degrading executor (crash-stops before sends, beacons
//! from dead nodes, skip-on-incomplete-inbox, panic isolation per node
//! invocation), and all per-shard fault records are buffered per phase
//! and merged in shard order — which, because shards own contiguous
//! ascending ranges, reconstructs exactly the global node order the
//! unsharded executor would have produced. A sharded run of a plan
//! without whole-shard losses is therefore *equal* — outcome, fault
//! list, round/message counts, and event-log cost model — to the
//! unsharded run, for every shard count and every runner thread count.
//!
//! # Whole-shard loss
//!
//! [`Fault::ShardCrash`] kills a shard at the start of a superstep: the
//! work of that superstep is lost, including the halo batches it would
//! have sent. Crash-planned shards checkpoint at the start of every
//! superstep ([`ShardSnapshot`] round-trip plus an in-memory image), so
//! the rebuild restores the superstep-start state, replays the lost
//! compute, and re-exchanges halos with shards that crashed alongside
//! it. Healthy shards have already consumed their retained copies of
//! nothing — they never received the dead shard's batch — so their
//! frontier nodes record a `"halo-loss"` fault and skip the round,
//! exactly like a node whose neighbor died mute. Everything else in a
//! healthy shard, and everything in the rebuilt shard, proceeds
//! bit-identically to a crash-free run; containment of the damage to
//! healthy-shard frontiers is what `crate::recovery` exploits.
//!
//! [`Fault::ShardCrash`]: lcl_faults::Fault::ShardCrash

use std::collections::{BTreeMap, HashMap};
use std::sync::mpsc::{self, Receiver, Sender};

use lcl::{HalfEdgeLabeling, InLabel, OutLabel};
use lcl_faults::{inject_panic, isolate, Degraded, FaultPlan, NodeFault, RunOptions};
use lcl_graph::{Graph, NodeId, ShardMap};
use lcl_local::{IdAssignment, NodeInit, SyncAlgorithm, SyncRun};
use lcl_obs::{Counter, Event, EventLog, RunReport, Span, Trace};

use crate::domain::ShardDomain;
use crate::snapshot::{ShardSnapshot, SHARD_SNAPSHOT_VERSION};

/// One shard's boundary messages to one neighbor shard for one
/// superstep, in the receiver's `(node, port)` scan order. `None`
/// entries are ports whose source node was mute (dead without a
/// beacon), mirroring the unsharded executor's missing-message
/// semantics.
struct HaloBatch<M> {
    from: usize,
    superstep: u32,
    payload: Vec<Option<M>>,
}

/// Appends a fault record to a phase buffer and mirrors it into the
/// shard's private event stream (the coordinator folds those streams
/// into the caller's log at the end of the run).
fn buffer_fault(
    buf: &mut Vec<NodeFault>,
    events: &EventLog,
    node: u64,
    round: u32,
    tag: &'static str,
    payload: String,
) {
    events.record(Event::Fault {
        node,
        round: u64::from(round),
        fault: tag,
    });
    buf.push(NodeFault {
        node,
        round: u64::from(round),
        payload,
    });
}

/// The mutable execution state of one shard, stepped by at most one
/// runner thread per phase.
struct Runner<A: SyncAlgorithm> {
    domain: ShardDomain,
    stage: String,
    start: usize,
    len: usize,
    states: Vec<Option<A::State>>,
    died: Vec<Option<u32>>,
    last_outbox: Vec<Option<Vec<A::Msg>>>,
    outboxes: Vec<Option<Vec<A::Msg>>>,
    outputs: Vec<Vec<OutLabel>>,
    snapshot: Option<SnapshotImage<A>>,
    rx: Receiver<HaloBatch<A::Msg>>,
    txs: BTreeMap<usize, Sender<HaloBatch<A::Msg>>>,
    /// Destination shard → `(source node, source port)` entries in the
    /// receiver's scan order.
    out_routes: BTreeMap<usize, Vec<(u32, u8)>>,
    /// `(source node, source port)` → (source shard, batch position).
    halo_pos: HashMap<(u32, u8), (usize, u32)>,
    /// Batches received for the current superstep, keyed by sender.
    inbox: BTreeMap<usize, Vec<Option<A::Msg>>>,
    f_init: Vec<NodeFault>,
    f_crash: Vec<NodeFault>,
    f_send: Vec<NodeFault>,
    f_recv: Vec<NodeFault>,
    f_out: Vec<NodeFault>,
    all_done: bool,
    /// Permanently gone: an unplanned panic escaped a shard step (or
    /// the shard's budget breached) and no rebuild is possible.
    lost: bool,
    round_messages: u64,
    round_halo_messages: u64,
    round_halo_bytes: u64,
    supersteps: u64,
    halo_messages: u64,
    halo_bytes: u64,
    crashes: u64,
    rebuilds: u64,
    checkpoints: u64,
}

/// The in-memory image a whole-shard rebuild restores: states, death
/// rounds, and beacon outboxes as of the start of a superstep.
type SnapshotImage<A> = (
    Vec<Option<<A as SyncAlgorithm>::State>>,
    Vec<Option<u32>>,
    Vec<Option<Vec<<A as SyncAlgorithm>::Msg>>>,
);

impl<A: SyncAlgorithm> Runner<A> {
    fn id(&self) -> usize {
        self.domain.id()
    }

    /// Marks every live node dead at `round` with one fault each — the
    /// degrade leg for unplanned whole-shard trouble (an escaped panic
    /// or a budget breach) with no snapshot to rebuild from.
    fn condemn(&mut self, round: u32, tag: &'static str, payload: &str) {
        for local in 0..self.len {
            if self.died[local].is_none() {
                self.died[local] = Some(round);
                buffer_fault(
                    &mut self.f_recv,
                    self.domain.events(),
                    (self.start + local) as u64,
                    round,
                    tag,
                    payload.to_string(),
                );
            }
        }
        self.all_done = true;
    }

    /// Superstep prologue: checkpoint the shard's cancel token, then
    /// report whether every owned node is finished (mirroring the
    /// unsharded all-done scan, panic-isolated `is_done` included).
    fn begin_round(&mut self, alg: &A, round: u32) {
        if let Err(breach) = self
            .domain
            .token()
            .checkpoint(&self.stage, u64::from(round))
        {
            let payload = breach.to_string();
            self.lost = true;
            self.condemn(round, "budget", &payload);
            return;
        }
        self.all_done = (0..self.len).all(|local| {
            self.died[local].is_some()
                || self.states[local]
                    .as_ref()
                    .is_some_and(|s| isolate(|| alg.is_done(s)).unwrap_or(true))
        });
    }

    /// Records one `"no-halt"` fault per live unfinished node, in node
    /// order, when the round cap is exhausted.
    fn no_halt(&mut self, alg: &A, effective: u32, round: u32) {
        for local in 0..self.len {
            let live = self.died[local].is_none();
            let not_done = self.states[local]
                .as_ref()
                .is_some_and(|s| !isolate(|| alg.is_done(s)).unwrap_or(true));
            if live && not_done {
                buffer_fault(
                    &mut self.f_recv,
                    self.domain.events(),
                    (self.start + local) as u64,
                    round,
                    "no-halt",
                    format!("did not halt within {effective} rounds"),
                );
            }
        }
    }

    /// Initializes the shard's nodes (panic-isolated per node).
    fn init_nodes(
        &mut self,
        alg: &A,
        graph: &Graph,
        input: &HalfEdgeLabeling<InLabel>,
        ids: &[u64],
        n: usize,
    ) {
        self.states = Vec::with_capacity(self.len);
        self.died = Vec::with_capacity(self.len);
        for local in 0..self.len {
            let i = self.start + local;
            let v = NodeId(i as u32);
            let init = NodeInit {
                node: v,
                n,
                id: ids[i],
                degree: graph.degree(v),
                inputs: graph.half_edges_of(v).map(|h| input.get(h)).collect(),
            };
            match isolate(|| alg.init(&init)) {
                Ok(state) => {
                    self.states.push(Some(state));
                    self.died.push(None);
                }
                Err(payload) => {
                    buffer_fault(
                        &mut self.f_init,
                        self.domain.events(),
                        i as u64,
                        0,
                        "panic",
                        payload,
                    );
                    self.states.push(None);
                    self.died.push(Some(0));
                }
            }
        }
        self.last_outbox = vec![None; self.len];
    }

    /// Takes the superstep-start checkpoint: serializes and re-parses
    /// the [`ShardSnapshot`] envelope (that round trip is what the
    /// `Checkpoint` event attests) and clones the in-memory image the
    /// rebuild would restore.
    fn checkpoint(&mut self, round: u32) {
        let meta = ShardSnapshot {
            version: SHARD_SNAPSHOT_VERSION,
            shard: self.id() as u64,
            range_start: self.start as u64,
            range_end: (self.start + self.len) as u64,
            superstep: u64::from(round),
            live_nodes: self.died.iter().filter(|d| d.is_none()).count() as u64,
            halo_messages: self.halo_messages,
            halo_bytes: self.halo_bytes,
        };
        let round_tripped = ShardSnapshot::parse(&meta.to_json())
            .expect("why: a just-serialized shard snapshot always parses back");
        assert_eq!(round_tripped, meta, "snapshot round trip is lossless");
        self.snapshot = Some((
            self.states.clone(),
            self.died.clone(),
            self.last_outbox.clone(),
        ));
        self.checkpoints += 1;
        self.domain.events().record(Event::Checkpoint {
            stage: self.stage.clone(),
            completed: u64::from(round),
        });
    }

    /// Applies the shard plan's crash-stops scheduled for `round`, in
    /// node order (mirroring the unsharded pre-send scan).
    fn apply_crash_stops(&mut self, round: u32) {
        for local in 0..self.len {
            let i = self.start + local;
            if self.died[local].is_none() && self.domain.plan().crash_round(i) == Some(round) {
                buffer_fault(
                    &mut self.f_crash,
                    self.domain.events(),
                    i as u64,
                    round,
                    "crash-stop",
                    "crash-stop".into(),
                );
                self.died[local] = Some(round);
            }
        }
    }

    /// Computes the shard's outboxes for `round` with the full
    /// per-node fault treatment of the unsharded send phase: beacons
    /// from dead nodes, injected first-send panics, wrong-arity and
    /// panic degradation.
    fn compute_outboxes(&mut self, alg: &A, graph: &Graph, round: u32) {
        let mut outboxes: Vec<Option<Vec<A::Msg>>> = Vec::with_capacity(self.len);
        for local in 0..self.len {
            let i = self.start + local;
            let v = NodeId(i as u32);
            if self.died[local].is_some() {
                outboxes.push(self.last_outbox[local].clone());
                continue;
            }
            let state = self.states[local]
                .as_ref()
                .expect("why: died is None, and every live node holds a state");
            let sent = if self.domain.plan().panics(i) && round == 0 {
                isolate(|| inject_panic(i as u64))
            } else {
                isolate(|| alg.send(state, round))
            };
            match sent {
                Ok(out) if out.len() == graph.degree(v) as usize => outboxes.push(Some(out)),
                Ok(out) => {
                    buffer_fault(
                        &mut self.f_send,
                        self.domain.events(),
                        i as u64,
                        round,
                        "wrong-arity",
                        format!(
                            "sent {} messages from a degree-{} node",
                            out.len(),
                            graph.degree(v)
                        ),
                    );
                    self.died[local] = Some(round);
                    outboxes.push(self.last_outbox[local].clone());
                }
                Err(payload) => {
                    buffer_fault(
                        &mut self.f_send,
                        self.domain.events(),
                        i as u64,
                        round,
                        "panic",
                        payload,
                    );
                    self.died[local] = Some(round);
                    outboxes.push(self.last_outbox[local].clone());
                }
            }
        }
        self.round_messages = outboxes
            .iter()
            .map(|o| o.as_ref().map_or(0, |m| m.len() as u64))
            .sum();
        self.outboxes = outboxes;
    }

    /// Sends this superstep's halo batches. `only_crashed` restricts
    /// the fan-out to fellow-crashed destinations — the rebuild path's
    /// re-exchange, since healthy shards never lost their copies.
    fn send_halos(&mut self, superstep: u32, only_crashed: Option<&[bool]>) {
        for (dst, route) in &self.out_routes {
            if let Some(crashed) = only_crashed {
                if !crashed[*dst] {
                    continue;
                }
            }
            let payload: Vec<Option<A::Msg>> = route
                .iter()
                .map(|&(u, q)| {
                    self.outboxes[u as usize - self.start]
                        .as_ref()
                        .map(|o| o[q as usize].clone())
                })
                .collect();
            let sent = payload.iter().filter(|m| m.is_some()).count() as u64;
            self.round_halo_messages += sent;
            self.round_halo_bytes += sent * std::mem::size_of::<A::Msg>() as u64;
            let batch = HaloBatch {
                from: self.id(),
                superstep,
                payload,
            };
            if self.txs[dst].send(batch).is_err() {
                // A receiver can only be gone if its runner was dropped,
                // which never happens mid-run; treat as mute.
            }
        }
    }

    /// The healthy-shard superstep: checkpoint if crash-planned, apply
    /// crash-stops, compute sends, and fan halos out to every neighbor
    /// shard. Crash-scheduled shards stop after the checkpoint — their
    /// superstep is lost and [`Runner::crash_and_rebuild`] replays it.
    fn phase_compute(&mut self, alg: &A, graph: &Graph, round: u32, crashed_now: &[bool]) {
        self.round_messages = 0;
        self.round_halo_messages = 0;
        self.round_halo_bytes = 0;
        if self.domain.has_planned_crashes() {
            self.checkpoint(round);
        }
        if crashed_now[self.id()] {
            // The shard dies at the start of the superstep: it computes
            // nothing and its outgoing halos are lost.
            self.outboxes = Vec::new();
            return;
        }
        self.apply_crash_stops(round);
        self.compute_outboxes(alg, graph, round);
        self.send_halos(round, None);
    }

    /// Whole-shard loss and recovery: record the crash, restore the
    /// superstep-start snapshot, and replay the lost superstep —
    /// re-exchanging halos only with shards that crashed alongside
    /// (healthy neighbors retained their inbound copies in their
    /// channel queues).
    fn crash_and_rebuild(&mut self, alg: &A, graph: &Graph, round: u32, crashed_now: &[bool]) {
        self.crashes += 1;
        let payload = format!("shard {} lost whole at superstep {round}", self.id());
        buffer_fault(
            &mut self.f_crash,
            self.domain.events(),
            self.start as u64,
            round,
            "shard-crash",
            payload,
        );
        let (states, died, last_outbox) = self
            .snapshot
            .clone()
            .expect("why: crash-planned shards checkpoint at the start of every superstep");
        self.states = states;
        self.died = died;
        self.last_outbox = last_outbox;
        self.rebuilds += 1;
        self.domain.events().record(Event::Retry {
            stage: self.stage.clone(),
            attempt: self.crashes,
            backoff_ms: 10 << (self.crashes.min(4) - 1),
        });
        self.apply_crash_stops(round);
        self.compute_outboxes(alg, graph, round);
        self.send_halos(round, Some(crashed_now));
    }

    /// Delivery: drain this superstep's halo batches, assemble each
    /// live node's inbox (local ports from the shard's own outboxes,
    /// boundary ports from the batches), and receive. A port whose
    /// source shard crashed this superstep records a `"halo-loss"`
    /// fault and skips the round; a `None` entry (mute dead source) or
    /// a batch missing from a permanently lost shard skips silently,
    /// exactly like the unsharded missing-message rule.
    fn deliver(&mut self, alg: &A, graph: &Graph, round: u32, crashed_now: &[bool]) {
        self.inbox.clear();
        while let Ok(batch) = self.rx.try_recv() {
            if batch.superstep == round {
                self.inbox.insert(batch.from, batch.payload);
            }
        }
        for local in 0..self.len {
            if self.died[local].is_some() {
                continue;
            }
            let i = self.start + local;
            let v = NodeId(i as u32);
            let mut halo_lost: Option<usize> = None;
            let inbox: Option<Vec<A::Msg>> = graph
                .half_edges_of(v)
                .map(|h| {
                    let twin = graph.twin(h);
                    let u = graph.node_of(twin);
                    let q = graph.port_of(twin);
                    if (self.start..self.start + self.len).contains(&u.index()) {
                        self.outboxes[u.index() - self.start]
                            .as_ref()
                            .map(|o| o[q as usize].clone())
                    } else {
                        let &(d, idx) = self
                            .halo_pos
                            .get(&(u.0, q))
                            .expect("why: every cross half-edge was routed at setup");
                        match self.inbox.get(&d) {
                            Some(batch) => batch[idx as usize].clone(),
                            None => {
                                if crashed_now[d] {
                                    halo_lost.get_or_insert(d);
                                }
                                None
                            }
                        }
                    }
                })
                .collect();
            if let Some(d) = halo_lost {
                buffer_fault(
                    &mut self.f_recv,
                    self.domain.events(),
                    i as u64,
                    round,
                    "halo-loss",
                    format!("halo from crashed shard {d} lost at superstep {round}"),
                );
                continue;
            }
            if let Some(inbox) = inbox {
                let state = self.states[local]
                    .as_mut()
                    .expect("why: died is None, and every live node holds a state");
                if let Err(payload) = isolate(|| alg.receive(state, &inbox, round)) {
                    buffer_fault(
                        &mut self.f_recv,
                        self.domain.events(),
                        i as u64,
                        round,
                        "panic",
                        payload,
                    );
                    self.died[local] = Some(round);
                }
            }
        }
        for (slot, sent) in self.last_outbox.iter_mut().zip(&self.outboxes) {
            if sent.is_some() {
                *slot = sent.clone();
            }
        }
        self.halo_messages += self.round_halo_messages;
        self.halo_bytes += self.round_halo_bytes;
        self.supersteps += 1;
        self.domain.events().record(Event::ShardStep {
            shard: self.id() as u64,
            superstep: u64::from(round),
            halo_messages: self.round_halo_messages,
            halo_bytes: self.round_halo_bytes,
        });
    }

    /// Computes the shard's output labels with the unsharded output
    /// phase's fault treatment (late injected panics, wrong arity,
    /// placeholder labels for stateless nodes).
    fn output_nodes(&mut self, alg: &A, graph: &Graph, rounds: u32) {
        self.outputs = vec![Vec::new(); self.len];
        for local in 0..self.len {
            let i = self.start + local;
            let v = NodeId(i as u32);
            let degree = graph.degree(v) as usize;
            let Some(state) = self.states[local].as_ref() else {
                self.outputs[local] = vec![OutLabel(0); degree];
                continue;
            };
            let labels =
                if self.domain.plan().panics(i) && self.died[local].is_none() && rounds == 0 {
                    isolate(|| inject_panic(i as u64))
                } else {
                    isolate(|| alg.output(state))
                };
            self.outputs[local] = match labels {
                Ok(out) if out.len() == degree => out,
                Ok(out) => {
                    buffer_fault(
                        &mut self.f_out,
                        self.domain.events(),
                        i as u64,
                        rounds,
                        "wrong-arity",
                        format!("labeled {} ports of a degree-{degree} node", out.len()),
                    );
                    vec![OutLabel(0); degree]
                }
                Err(payload) => {
                    if self.died[local].is_none() {
                        buffer_fault(
                            &mut self.f_out,
                            self.domain.events(),
                            i as u64,
                            rounds,
                            "panic",
                            payload,
                        );
                    }
                    vec![OutLabel(0); degree]
                }
            };
        }
    }

    /// Discards any queued batches of a permanently lost shard so its
    /// channel does not grow for the rest of the run.
    fn drain_discard(&mut self) {
        while self.rx.try_recv().is_ok() {}
    }
}

/// Steps one shard through one phase with whole-shard panic isolation:
/// an escaped panic (impossible from algorithm code, which is isolated
/// per node — this guards the executor machinery itself) marks the
/// shard permanently lost instead of poisoning the run.
fn step_one<A, F>(r: &mut Runner<A>, round: u32, f: &F)
where
    A: SyncAlgorithm,
    F: Fn(&mut Runner<A>),
{
    if r.lost {
        r.drain_discard();
        return;
    }
    if let Err(payload) = isolate(|| f(r)) {
        r.lost = true;
        r.condemn(round, "shard-loss", &payload);
    }
}

/// Runs `f` over every shard on up to `threads` runner threads, with
/// shards partitioned into contiguous blocks. The call is a barrier:
/// every shard has finished the phase when it returns, which is what
/// makes the mpsc halo exchange superstep-atomic.
fn for_each_shard<A, F>(runners: &mut [Runner<A>], threads: usize, round: u32, f: F)
where
    A: SyncAlgorithm + Sync,
    A::State: Send,
    A::Msg: Send,
    F: Fn(&mut Runner<A>) + Sync,
{
    let m = runners.len();
    let t = threads.clamp(1, m.max(1));
    if t <= 1 {
        for r in runners.iter_mut() {
            step_one(r, round, &f);
        }
        return;
    }
    let chunk = m.div_ceil(t);
    let f = &f;
    std::thread::scope(|scope| {
        for slice in runners.chunks_mut(chunk) {
            scope.spawn(move || {
                for r in slice {
                    step_one(r, round, f);
                }
            });
        }
    });
}

/// Runs a [`SyncAlgorithm`] under [`RunOptions`] on a sharded
/// substrate with `threads` runner threads.
///
/// When `opts` requests no sharding ([`RunOptions::shard_count`] is
/// `None`) the call delegates to `lcl_local::simulate_sync_with`
/// unchanged. Otherwise the graph is partitioned by a [`ShardMap`]
/// into the requested number of shards (clamped to the node count) and
/// executed as boundary-exchange supersteps; see the module docs for
/// the fault model. The outcome for plans without whole-shard losses
/// is equal to the unsharded executor's for every shard and thread
/// count; the trace additionally carries the shard counters
/// (`shards`, `supersteps`, `halo-messages`, `halo-bytes`,
/// `shard-crashes`, `shard-rebuilds`, `checkpoints`, `retries`).
#[allow(clippy::too_many_arguments)]
pub fn simulate_sharded_with<A>(
    alg: &A,
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &[u64],
    n_announced: Option<usize>,
    max_rounds: u32,
    threads: usize,
    opts: RunOptions<'_>,
) -> RunReport<Degraded<SyncRun>>
where
    A: SyncAlgorithm + Sync,
    A::State: Send,
    A::Msg: Send,
{
    let Some(requested_shards) = opts.shard_count() else {
        return lcl_local::simulate_sync_with(
            alg,
            graph,
            input,
            ids,
            n_announced,
            max_rounds,
            opts,
        );
    };
    assert_eq!(ids.len(), graph.node_count(), "ids cover the graph");
    let empty_plan;
    let plan: &FaultPlan = match opts.fault_plan() {
        Some(plan) => plan,
        None => {
            empty_plan = FaultPlan::new(0);
            &empty_plan
        }
    };
    let log = opts.event_log();
    let budget = opts.run_budget();
    let effective = budget.max_rounds.map_or(max_rounds, |cap| {
        max_rounds.min(u32::try_from(cap).unwrap_or(u32::MAX))
    });
    let owned;
    let ids: &[u64] = match plan.permutation(graph.node_count()) {
        Some(perm) => {
            owned = IdAssignment::from_vec(ids.to_vec())
                .permuted(&perm)
                .iter()
                .collect::<Vec<u64>>();
            &owned
        }
        None => ids,
    };
    let n = n_announced.unwrap_or_else(|| graph.node_count());
    let map = ShardMap::new(graph.node_count(), requested_shards);
    let m = map.num_shards();
    let mut span = Span::start(format!("shard/sync/{}", alg.name()));

    // Halo routing: for every ordered shard pair (sender, receiver),
    // the sender's entry list in the receiver's (node, port) scan
    // order, plus the receiver's reverse index for inbox assembly.
    let mut out_routes: Vec<BTreeMap<usize, Vec<(u32, u8)>>> =
        (0..m).map(|_| BTreeMap::new()).collect();
    let mut halo_pos: Vec<HashMap<(u32, u8), (usize, u32)>> =
        (0..m).map(|_| HashMap::new()).collect();
    for (s, pos) in halo_pos.iter_mut().enumerate() {
        for i in map.range(s) {
            let v = NodeId(i as u32);
            for h in graph.half_edges_of(v) {
                let twin = graph.twin(h);
                let u = graph.node_of(twin);
                let d = map.shard_of(u);
                if d == s {
                    continue;
                }
                let q = graph.port_of(twin);
                let route = out_routes[d].entry(s).or_default();
                pos.insert((u.0, q), (d, route.len() as u32));
                route.push((u.0, q));
            }
        }
    }

    let (txs_all, rxs): (Vec<_>, Vec<_>) = (0..m).map(|_| mpsc::channel()).unzip();
    let mut halo_pos = halo_pos.into_iter();
    let mut runners: Vec<Runner<A>> = out_routes
        .into_iter()
        .zip(rxs)
        .enumerate()
        .map(|(s, (routes, rx))| {
            let txs = routes
                .keys()
                .map(|&d| (d, txs_all[d].clone()))
                .collect::<BTreeMap<_, _>>();
            let range = map.range(s);
            Runner {
                domain: ShardDomain::carve(s, &map, plan, &budget),
                stage: format!("shard/{s}"),
                start: range.start,
                len: range.len(),
                states: Vec::new(),
                died: Vec::new(),
                last_outbox: Vec::new(),
                outboxes: Vec::new(),
                outputs: Vec::new(),
                snapshot: None,
                rx,
                txs,
                out_routes: routes,
                halo_pos: halo_pos
                    .next()
                    .expect("why: one reverse halo index exists per shard"),
                inbox: BTreeMap::new(),
                f_init: Vec::new(),
                f_crash: Vec::new(),
                f_send: Vec::new(),
                f_recv: Vec::new(),
                f_out: Vec::new(),
                all_done: false,
                lost: false,
                round_messages: 0,
                round_halo_messages: 0,
                round_halo_bytes: 0,
                supersteps: 0,
                halo_messages: 0,
                halo_bytes: 0,
                crashes: 0,
                rebuilds: 0,
                checkpoints: 0,
            }
        })
        .collect();
    drop(txs_all);

    let mut faults: Vec<NodeFault> = Vec::new();
    let mut messages = 0u64;
    let mut rounds = 0u32;

    for_each_shard(&mut runners, threads, 0, |r| {
        r.init_nodes(alg, graph, input, ids, n);
    });
    for r in &mut runners {
        faults.append(&mut r.f_init);
    }
    for r in &mut runners {
        faults.append(&mut r.f_recv);
    }

    loop {
        for_each_shard(&mut runners, threads, rounds, |r| {
            r.begin_round(alg, rounds)
        });
        if runners.iter().all(|r| r.lost || r.all_done) {
            break;
        }
        if rounds >= effective {
            for_each_shard(&mut runners, threads, rounds, |r| {
                r.no_halt(alg, effective, rounds);
            });
            break;
        }
        if let Some(log) = log {
            log.record(Event::RoundStart {
                round: u64::from(rounds),
            });
        }
        let crashed_now: Vec<bool> = runners
            .iter()
            .map(|r| !r.lost && r.domain.crashes_at(rounds))
            .collect();
        let crashed = crashed_now.as_slice();
        for_each_shard(&mut runners, threads, rounds, |r| {
            r.phase_compute(alg, graph, rounds, crashed);
        });
        if crashed.iter().any(|&c| c) {
            for_each_shard(&mut runners, threads, rounds, |r| {
                if crashed[r.id()] {
                    r.crash_and_rebuild(alg, graph, rounds, crashed);
                }
            });
        }
        let round_messages: u64 = runners
            .iter()
            .map(|r| if r.lost { 0 } else { r.round_messages })
            .sum();
        messages += round_messages;
        for r in &mut runners {
            faults.append(&mut r.f_crash);
        }
        for r in &mut runners {
            faults.append(&mut r.f_send);
        }
        for_each_shard(&mut runners, threads, rounds, |r| {
            r.deliver(alg, graph, rounds, crashed);
        });
        for r in &mut runners {
            faults.append(&mut r.f_recv);
        }
        if let Some(log) = log {
            log.record(Event::RoundEnd {
                round: u64::from(rounds),
                messages: round_messages,
            });
        }
        rounds += 1;
    }
    // Residual buffers: no-halt faults, and condemnations recorded by a
    // phase that broke out of the loop.
    for r in &mut runners {
        faults.append(&mut r.f_crash);
    }
    for r in &mut runners {
        faults.append(&mut r.f_send);
    }
    for r in &mut runners {
        faults.append(&mut r.f_recv);
    }

    for_each_shard(&mut runners, threads, rounds, |r| {
        r.output_nodes(alg, graph, rounds);
    });
    for r in &mut runners {
        faults.append(&mut r.f_out);
    }
    for r in &mut runners {
        faults.append(&mut r.f_recv);
    }

    let mut outputs: Vec<Vec<Vec<OutLabel>>> = runners
        .iter_mut()
        .map(|r| std::mem::take(&mut r.outputs))
        .collect();
    let output = HalfEdgeLabeling::from_node_fn(graph, |v| {
        let s = map.shard_of(v);
        let local = v.index() - map.range(s).start;
        let degree = graph.degree(v) as usize;
        let labels = std::mem::take(&mut outputs[s][local]);
        if labels.len() == degree {
            labels
        } else {
            // A shard lost during the output phase never filled its
            // labels; placeholder like any other dead node.
            vec![OutLabel(0); degree]
        }
    });

    if let Some(log) = log {
        for r in &runners {
            for event in r.domain.events().events() {
                log.record(event);
            }
        }
    }

    let lost_shards = runners.iter().filter(|r| r.lost).count() as u64;
    span.set(Counter::Nodes, graph.node_count() as u64);
    span.set(Counter::Edges, graph.edge_count() as u64);
    span.set(Counter::Rounds, u64::from(rounds));
    span.set(Counter::Messages, messages);
    span.set(Counter::Faults, faults.len() as u64);
    span.set(Counter::Shards, m as u64);
    span.set(
        Counter::Supersteps,
        runners.iter().map(|r| r.supersteps).sum(),
    );
    span.set(
        Counter::HaloMessages,
        runners.iter().map(|r| r.halo_messages).sum(),
    );
    span.set(
        Counter::HaloBytes,
        runners.iter().map(|r| r.halo_bytes).sum(),
    );
    span.set(
        Counter::ShardCrashes,
        runners.iter().map(|r| r.crashes).sum::<u64>() + lost_shards,
    );
    span.set(
        Counter::ShardRebuilds,
        runners.iter().map(|r| r.rebuilds).sum(),
    );
    span.set(
        Counter::Checkpoints,
        runners.iter().map(|r| r.checkpoints).sum(),
    );
    span.set(Counter::Retries, runners.iter().map(|r| r.rebuilds).sum());
    let degraded = Degraded {
        outcome: SyncRun { output, rounds },
        faults,
    };
    RunReport::new(degraded, Trace::new(span.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_faults::Fault;
    use lcl_graph::gen;

    /// Flood-max with a halt guard: a node floods the maximum id it has
    /// seen for `k` rounds and ignores every message after its own
    /// round counter reaches `k` — so late supersteps (a lagging
    /// frontier node extending the run) cannot corrupt finished nodes.
    pub(crate) struct GuardedFlood {
        pub k: u32,
    }

    #[derive(Clone)]
    pub(crate) struct FloodState {
        best: u64,
        mine: u64,
        degree: usize,
        round: u32,
        k: u32,
    }

    impl SyncAlgorithm for GuardedFlood {
        type State = FloodState;
        type Msg = u64;

        fn init(&self, init: &NodeInit) -> FloodState {
            FloodState {
                best: init.id,
                mine: init.id,
                degree: init.degree as usize,
                round: 0,
                k: self.k,
            }
        }

        fn send(&self, state: &FloodState, _round: u32) -> Vec<u64> {
            vec![state.best; state.degree]
        }

        fn receive(&self, state: &mut FloodState, inbox: &[u64], _round: u32) {
            if state.round >= state.k {
                return;
            }
            for &msg in inbox {
                state.best = state.best.max(msg);
            }
            state.round += 1;
        }

        fn is_done(&self, state: &FloodState) -> bool {
            state.round >= state.k
        }

        fn output(&self, state: &FloodState) -> Vec<OutLabel> {
            vec![OutLabel(u32::from(state.best == state.mine)); state.degree]
        }

        fn name(&self) -> &str {
            "guarded-flood"
        }
    }

    fn ids(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| i * 31 % 97 + 1).collect()
    }

    #[test]
    fn clean_sharded_runs_match_the_unsharded_executor() {
        let g = gen::random_tree(40, 3, 11);
        let ids = ids(40);
        let input = lcl::uniform_input(&g);
        let alg = GuardedFlood { k: 3 };
        let baseline =
            lcl_local::simulate_sync_with(&alg, &g, &input, &ids, None, 10, RunOptions::new());
        for shards in [1usize, 4, 16] {
            for threads in [1usize, 2, 8] {
                let run = simulate_sharded_with(
                    &alg,
                    &g,
                    &input,
                    &ids,
                    None,
                    10,
                    threads,
                    RunOptions::new().sharded(shards),
                );
                assert_eq!(
                    run.outcome, baseline.outcome,
                    "shards={shards} threads={threads}"
                );
                assert_eq!(run.trace.total(Counter::Shards), shards.min(40) as u64);
                assert_eq!(run.trace.total(Counter::ShardCrashes), 0);
            }
        }
    }

    #[test]
    fn node_fault_plans_degrade_identically_to_the_unsharded_executor() {
        let g = gen::path(20);
        let ids = ids(20);
        let input = lcl::uniform_input(&g);
        let alg = GuardedFlood { k: 2 };
        let plan = FaultPlan::new(5)
            .with(Fault::Crash { node: 3, round: 1 })
            .with(Fault::PanicNode { node: 11 })
            .with(Fault::Crash { node: 17, round: 0 });
        let baseline = lcl_local::simulate_sync_with(
            &alg,
            &g,
            &input,
            &ids,
            None,
            10,
            RunOptions::new().faults(&plan),
        );
        assert!(baseline.outcome.is_degraded());
        for shards in [1usize, 3, 7] {
            let run = simulate_sharded_with(
                &alg,
                &g,
                &input,
                &ids,
                None,
                10,
                2,
                RunOptions::new().faults(&plan).sharded(shards),
            );
            assert_eq!(run.outcome, baseline.outcome, "shards={shards}");
        }
    }

    #[test]
    fn whole_shard_loss_is_rebuilt_and_contained_to_the_frontier() {
        let g = gen::path(12);
        let ids = ids(12);
        let input = lcl::uniform_input(&g);
        let alg = GuardedFlood { k: 1 };
        let clean = simulate_sharded_with(
            &alg,
            &g,
            &input,
            &ids,
            None,
            10,
            1,
            RunOptions::new().sharded(3),
        );
        assert!(clean.outcome.faults.is_empty());
        // Shard 1 owns 4..8; it dies at superstep 0 and is rebuilt.
        let plan = FaultPlan::new(0).with(Fault::ShardCrash {
            shard: 1,
            superstep: 0,
        });
        let log = EventLog::new(256);
        let run = simulate_sharded_with(
            &alg,
            &g,
            &input,
            &ids,
            None,
            10,
            2,
            RunOptions::new().faults(&plan).sharded(3).events(&log),
        );
        assert_eq!(run.trace.total(Counter::ShardCrashes), 1);
        assert_eq!(run.trace.total(Counter::ShardRebuilds), 1);
        assert!(run.trace.total(Counter::Checkpoints) >= 1);
        let faults = &run.outcome.faults;
        assert!(
            faults
                .iter()
                .any(|f| f.payload.contains("shard 1 lost whole")),
            "{faults:?}"
        );
        // Halo loss hits exactly the healthy frontier nodes 3 and 8.
        let halo_nodes: Vec<u64> = faults
            .iter()
            .filter(|f| f.payload.contains("halo from crashed shard 1"))
            .map(|f| f.node)
            .collect();
        assert_eq!(halo_nodes, vec![3, 8]);
        // The rebuilt shard's own labels match the clean run exactly;
        // damage is confined to the healthy frontier.
        let clean_out = &clean.outcome.outcome.output;
        let crashed_out = &run.outcome.outcome.output;
        for i in 0..12u32 {
            let v = NodeId(i);
            let same = g
                .half_edges_of(v)
                .all(|h| clean_out.get(h) == crashed_out.get(h));
            if (4..8).contains(&i) {
                assert!(same, "rebuilt shard node {i} must match the clean run");
            } else if i != 3 && i != 8 {
                assert!(same, "healthy interior node {i} must match the clean run");
            }
        }
        // The per-shard streams carry checkpoint + retry + shard-step
        // events, folded into the caller's log.
        let kinds: Vec<&'static str> = log.events().iter().map(|e| e.kind()).collect();
        assert!(kinds.contains(&"checkpoint"));
        assert!(kinds.contains(&"retry"));
        assert!(kinds.contains(&"shard-step"));
    }

    #[test]
    fn single_shard_crash_rebuild_is_lossless() {
        let g = gen::path(9);
        let ids = ids(9);
        let input = lcl::uniform_input(&g);
        let alg = GuardedFlood { k: 2 };
        let clean = simulate_sharded_with(
            &alg,
            &g,
            &input,
            &ids,
            None,
            10,
            1,
            RunOptions::new().sharded(1),
        );
        let plan = FaultPlan::new(0).with(Fault::ShardCrash {
            shard: 0,
            superstep: 1,
        });
        let run = simulate_sharded_with(
            &alg,
            &g,
            &input,
            &ids,
            None,
            10,
            1,
            RunOptions::new().faults(&plan).sharded(1),
        );
        // With no other shard to lose halos toward, the rebuild makes
        // the crash output-transparent; only the fault record remains.
        assert_eq!(run.outcome.outcome, clean.outcome.outcome);
        assert_eq!(run.outcome.faults.len(), 1);
        assert_eq!(
            run.outcome.faults[0].payload,
            "shard 0 lost whole at superstep 1"
        );
        assert_eq!(run.trace.total(Counter::ShardRebuilds), 1);
    }

    #[test]
    fn unsharded_options_delegate_to_the_local_executor() {
        let g = gen::path(6);
        let ids = ids(6);
        let input = lcl::uniform_input(&g);
        let alg = GuardedFlood { k: 1 };
        let run = simulate_sharded_with(&alg, &g, &input, &ids, None, 10, 4, RunOptions::new());
        let direct =
            lcl_local::simulate_sync_with(&alg, &g, &input, &ids, None, 10, RunOptions::new());
        assert_eq!(run.outcome, direct.outcome);
        assert_eq!(run.trace.fingerprint(), direct.trace.fingerprint());
    }
}
