//! A single error type for the whole suite.
//!
//! Every fallible pipeline in the workspace reports failures through its
//! own typed error ([`ReError`] for round elimination, [`ProblemBuildError`]
//! for the problem builder, and so on). [`LandscapeError`] unifies them so
//! that examples and downstream callers can thread everything through one
//! `Result` with `?`.

use std::error::Error;
use std::fmt;

use lcl::{ParseError, ProblemBuildError};
use lcl_classify::automaton::AutomatonError;
use lcl_classify::ClassifyError;
use lcl_core::ReError;
use lcl_core::SnapshotError;
use lcl_faults::{BudgetExceeded, InvalidConfig, NodeFault};
use lcl_graph::builder::BuildError;
use lcl_graph::gen::RegularGenError;
use lcl_recover::RepairFailed;
use lcl_volume::ProbeError;

/// Any error the landscape suite can produce, by source subsystem.
///
/// Each variant wraps the typed error of one crate; [`Error::source`]
/// returns the wrapped error, so standard error-reporting chains work.
///
/// # Examples
///
/// ```
/// use lcl_landscape::LandscapeError;
///
/// fn pipeline() -> Result<(), LandscapeError> {
///     let p = lcl_landscape::lcl::LclProblem::builder("two-coloring", 2)
///         .outputs(["A", "B"])
///         .edge(&["A", "B"])
///         .node_pattern(&["A*"])
///         .node_pattern(&["B*"])
///         .build()?; // ProblemBuildError -> LandscapeError
///     assert_eq!(p.output_alphabet().len(), 2);
///     Ok(())
/// }
/// pipeline().unwrap();
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum LandscapeError {
    /// Round elimination failed (universe overflow, empty restriction, …).
    Re(ReError),
    /// The LCL problem builder rejected its description.
    Build(ProblemBuildError),
    /// The LCL text format failed to parse.
    Parse(ParseError),
    /// The port-numbered graph builder rejected an edge list.
    Graph(BuildError),
    /// Random regular graph generation failed.
    RegularGen(RegularGenError),
    /// The path/cycle classifier rejected its input problem.
    Classify(ClassifyError),
    /// A VOLUME/LCA probe left its contract (budget, target, or port).
    Probe(ProbeError),
    /// A resource budget was breached or a cancel token tripped; the
    /// payload records the stage and how much progress completed.
    Budget(BudgetExceeded),
    /// An entrypoint rejected its configuration (zero trials, zero
    /// threads, …).
    InvalidConfig(InvalidConfig),
    /// A panic-isolated node invocation faulted.
    NodeFault(NodeFault),
    /// Bounded local mending could not restore a valid labeling; the
    /// payload lists the surviving violations.
    Repair(RepairFailed),
    /// A serialized tower snapshot was malformed or inconsistent.
    Snapshot(SnapshotError),
}

impl fmt::Display for LandscapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Re(e) => write!(f, "round elimination: {e}"),
            Self::Build(e) => write!(f, "problem builder: {e}"),
            Self::Parse(e) => write!(f, "problem parser: {e}"),
            Self::Graph(e) => write!(f, "graph builder: {e}"),
            Self::RegularGen(e) => write!(f, "regular graph generator: {e}"),
            Self::Classify(e) => write!(f, "classifier: {e}"),
            Self::Probe(e) => write!(f, "probe session: {e}"),
            Self::Budget(e) => write!(f, "resource budget: {e}"),
            Self::InvalidConfig(e) => write!(f, "entrypoint config: {e}"),
            Self::NodeFault(e) => write!(f, "node fault: {e}"),
            Self::Repair(e) => write!(f, "repair: {e}"),
            Self::Snapshot(e) => write!(f, "tower snapshot: {e}"),
        }
    }
}

impl Error for LandscapeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Re(e) => Some(e),
            Self::Build(e) => Some(e),
            Self::Parse(e) => Some(e),
            Self::Graph(e) => Some(e),
            Self::RegularGen(e) => Some(e),
            Self::Classify(e) => Some(e),
            Self::Probe(e) => Some(e),
            Self::Budget(e) => Some(e),
            Self::InvalidConfig(e) => Some(e),
            Self::NodeFault(e) => Some(e),
            Self::Repair(e) => Some(e),
            Self::Snapshot(e) => Some(e),
        }
    }
}

impl From<ReError> for LandscapeError {
    fn from(e: ReError) -> Self {
        Self::Re(e)
    }
}

impl From<ProblemBuildError> for LandscapeError {
    fn from(e: ProblemBuildError) -> Self {
        Self::Build(e)
    }
}

impl From<ParseError> for LandscapeError {
    fn from(e: ParseError) -> Self {
        Self::Parse(e)
    }
}

impl From<BuildError> for LandscapeError {
    fn from(e: BuildError) -> Self {
        Self::Graph(e)
    }
}

impl From<RegularGenError> for LandscapeError {
    fn from(e: RegularGenError) -> Self {
        Self::RegularGen(e)
    }
}

impl From<ClassifyError> for LandscapeError {
    fn from(e: ClassifyError) -> Self {
        Self::Classify(e)
    }
}

impl From<AutomatonError> for LandscapeError {
    fn from(e: AutomatonError) -> Self {
        Self::Classify(ClassifyError(e))
    }
}

impl From<ProbeError> for LandscapeError {
    fn from(e: ProbeError) -> Self {
        Self::Probe(e)
    }
}

impl From<BudgetExceeded> for LandscapeError {
    fn from(e: BudgetExceeded) -> Self {
        Self::Budget(e)
    }
}

impl From<InvalidConfig> for LandscapeError {
    fn from(e: InvalidConfig) -> Self {
        Self::InvalidConfig(e)
    }
}

impl From<NodeFault> for LandscapeError {
    fn from(e: NodeFault) -> Self {
        Self::NodeFault(e)
    }
}

impl From<RepairFailed> for LandscapeError {
    fn from(e: RepairFailed) -> Self {
        Self::Repair(e)
    }
}

impl From<SnapshotError> for LandscapeError {
    fn from(e: SnapshotError) -> Self {
        Self::Snapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_builder_errors_via_question_mark() {
        fn build_bad() -> Result<lcl::LclProblem, LandscapeError> {
            Ok(lcl::LclProblem::builder("bad", 2).build()?)
        }
        let err = build_bad().unwrap_err();
        assert!(matches!(
            err,
            LandscapeError::Build(ProblemBuildError::EmptyOutputAlphabet)
        ));
        assert!(err.to_string().contains("problem builder"));
        assert!(err.source().is_some());
    }

    #[test]
    fn wraps_probe_errors() {
        let err: LandscapeError = ProbeError::BudgetExhausted { budget: 3 }.into();
        assert!(matches!(
            err,
            LandscapeError::Probe(ProbeError::BudgetExhausted { budget: 3 })
        ));
        assert!(err.to_string().contains("probe session"));
        assert!(err.source().is_some());
    }

    #[test]
    fn wraps_faults_errors() {
        let budget = lcl_faults::Budget::unlimited().with_max_labels(1);
        let breach = budget.check_labels("stage", 5, 0).unwrap_err();
        let err: LandscapeError = breach.into();
        assert!(matches!(err, LandscapeError::Budget(_)));
        assert!(err.to_string().contains("resource budget"));
        assert!(err.source().is_some());

        let err: LandscapeError = InvalidConfig {
            param: "trials",
            requirement: "must be positive",
            got: 0,
        }
        .into();
        assert!(matches!(err, LandscapeError::InvalidConfig(_)));

        let err: LandscapeError = NodeFault {
            node: 3,
            round: 1,
            payload: "boom".into(),
        }
        .into();
        assert!(matches!(err, LandscapeError::NodeFault(_)));
        assert!(err.to_string().contains("node fault"));
    }

    #[test]
    fn wraps_repair_and_snapshot_errors() {
        let err: LandscapeError = RepairFailed {
            violations: vec![],
            rounds_tried: 4,
        }
        .into();
        assert!(matches!(err, LandscapeError::Repair(_)));
        assert!(err.to_string().contains("repair failed after 4 rounds"));
        assert!(err.source().is_some());

        let err: LandscapeError = lcl_core::TowerSnapshot::parse("{").unwrap_err().into();
        assert!(matches!(err, LandscapeError::Snapshot(_)));
        assert!(err.to_string().contains("tower snapshot"));
        assert!(err.source().is_some());
    }

    #[test]
    fn wraps_parse_and_graph_errors() {
        let parse: LandscapeError = lcl::LclProblem::parse("nonsense").unwrap_err().into();
        assert!(matches!(parse, LandscapeError::Parse(_)));

        let mut b = lcl_graph::GraphBuilder::new(1);
        let graph: LandscapeError = b.add_edge(0, 0).unwrap_err().into();
        assert!(matches!(
            graph,
            LandscapeError::Graph(BuildError::SelfLoop { node: 0 })
        ));
    }
}
