//! Facade crate for the LCL landscape suite — a Rust reproduction of
//! *The Landscape of Distributed Complexities on Trees and Beyond*
//! (Grunau, Rozhoň, Brandt; PODC 2022).
//!
//! Re-exports every member crate under one roof so that examples,
//! integration tests, and downstream users can write `use lcl_landscape::…`.
//!
//! # Crate map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`graph`] | `lcl-graph` | port-numbered graphs, balls, generators |
//! | [`lcl`] | `lcl` | LCL problems, constraints, verifiers |
//! | [`local`] | `lcl-local` | LOCAL model simulator |
//! | [`volume`] | `lcl-volume` | VOLUME/LCA model simulator |
//! | [`grid`] | `lcl-grid` | oriented grids, PROD-LOCAL model |
//! | [`core`] | `lcl-core` | round elimination + speedup pipelines |
//! | [`problems`] | `lcl-problems` | concrete problems and algorithms |
//! | [`classify`] | `lcl-classify` | path/cycle complexity classifier |
//!
//! # Quickstart
//!
//! ```
//! use lcl_landscape::graph::gen;
//! use lcl_landscape::lcl::LclProblem;
//!
//! let g = gen::cycle(12);
//! let coloring = LclProblem::parse(
//!     "name: 3-coloring\nmax-degree: 2\nnodes:\nA*\nB*\nC*\nedges:\nA B\nA C\nB C\n",
//! )?;
//! assert_eq!(coloring.output_alphabet().len(), 3);
//! assert_eq!(g.node_count(), 12);
//! # Ok::<(), lcl_landscape::lcl::ParseError>(())
//! ```

pub use lcl_classify as classify;
pub use lcl_core as core;
pub use lcl_graph as graph;
pub use lcl_grid as grid;
pub use lcl_local as local;
pub use lcl_problems as problems;
pub use lcl_volume as volume;

pub use lcl;
