//! Facade crate for the LCL landscape suite — a Rust reproduction of
//! *The Landscape of Distributed Complexities on Trees and Beyond*
//! (Grunau, Rozhoň, Brandt; PODC 2022).
//!
//! Re-exports every member crate under one roof so that examples,
//! integration tests, and downstream users can write `use lcl_landscape::…`.
//!
//! # Crate map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`graph`] | `lcl-graph` | port-numbered graphs, balls, generators |
//! | [`lcl`] | `lcl` | LCL problems, constraints, verifiers |
//! | [`local`] | `lcl-local` | LOCAL model simulator |
//! | [`volume`] | `lcl-volume` | VOLUME/LCA model simulator |
//! | [`grid`] | `lcl-grid` | oriented grids, PROD-LOCAL model |
//! | [`core`] | `lcl-core` | round elimination + speedup pipelines |
//! | [`problems`] | `lcl-problems` | concrete problems and algorithms |
//! | [`classify`] | `lcl-classify` | path/cycle complexity classifier |
//! | [`obs`] | `lcl-obs` | tracing/metrics: spans, counters, reports |
//! | [`faults`] | `lcl-faults` | fault plans, budgets, panic isolation |
//! | [`recover`] | `lcl-recover` | certified repair, checkpoint/resume, retry supervisor |
//! | [`shard`] | `lcl-shard` | sharded LOCAL substrate, per-shard fault domains, shard crash recovery |
//! | [`procshard`] | `lcl-procshard` | process-per-shard substrate: shard supervisor, SIGKILL survival, replay rehydration |
//!
//! On top of the re-exports the facade adds two pieces of glue:
//!
//! * [`simulation::Simulation`] — one trait over the LOCAL, VOLUME, LCA,
//!   and PROD-LOCAL simulators, each returning an [`obs::RunReport`]
//!   (outcome plus execution trace);
//! * [`LandscapeError`] — one error type with `From` impls for every
//!   subsystem's typed error, so examples and tools can use `?`.
//!
//! # Quickstart
//!
//! ```
//! use lcl_landscape::graph::gen;
//! use lcl_landscape::lcl::LclProblem;
//! use lcl_landscape::local::IdAssignment;
//! use lcl_landscape::simulation::{GraphInstance, LocalSim, Simulation};
//!
//! let g = gen::cycle(12);
//! let coloring = LclProblem::parse(
//!     "name: 3-coloring\nmax-degree: 2\nnodes:\nA*\nB*\nC*\nedges:\nA B\nA C\nB C\n",
//! )?;
//! assert_eq!(coloring.output_alphabet().len(), 3);
//!
//! // Run any model through the unified `Simulation` trait; every run
//! // returns an `obs::RunReport` carrying the outcome and a trace.
//! let ids = IdAssignment::sequential(12);
//! let input = lcl_landscape::lcl::uniform_input(&g);
//! let report = LocalSim::simulate(
//!     &lcl_landscape::problems::trivial::ConstantZero,
//!     GraphInstance::new(&g, &input, &ids),
//! )?;
//! assert_eq!(report.outcome.radius, 0);
//! assert!(report.trace.fingerprint().starts_with("local/"));
//! # Ok::<(), lcl_landscape::LandscapeError>(())
//! ```

pub mod error;
pub mod simulation;

pub use lcl_classify as classify;
pub use lcl_core as core;
pub use lcl_faults as faults;
pub use lcl_graph as graph;
pub use lcl_grid as grid;
pub use lcl_local as local;
pub use lcl_obs as obs;
pub use lcl_problems as problems;
pub use lcl_procshard as procshard;
pub use lcl_recover as recover;
pub use lcl_shard as shard;
pub use lcl_volume as volume;

pub use lcl;

pub use error::LandscapeError;
pub use simulation::{
    simulate_sync_routed, GraphInstance, GridInstance, LcaSim, LocalSim, ProdLocalSim, Simulation,
    VolumeSim,
};
