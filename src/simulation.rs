//! One trait over every model simulator in the suite.
//!
//! The paper compares four query-driven models on the same instances:
//! LOCAL (Definition 2.1), VOLUME (Definition 2.9), its LCA variant, and
//! PROD-LOCAL on oriented grids (Section 6). Each member crate exposes an
//! instrumented `simulate*` entrypoint returning an
//! [`obs::RunReport`](lcl_obs::RunReport); [`Simulation`] abstracts over
//! them so harnesses can drive any model generically — same instance
//! plumbing, same trace handling, different cost semantics.
//!
//! # Examples
//!
//! Driving a radius-2 LOCAL algorithm through the trait:
//!
//! ```
//! use lcl_landscape::simulation::{GraphInstance, LocalSim, Simulation};
//! use lcl_landscape::{graph::gen, local, problems};
//!
//! let g = gen::path(6);
//! let ids = local::IdAssignment::sequential(6);
//! let input = lcl_landscape::lcl::uniform_input(&g);
//! let report = LocalSim::simulate(
//!     &problems::trivial::MaxDegree2Hop,
//!     GraphInstance::new(&g, &input, &ids),
//! )?;
//! assert_eq!(LocalSim::model(), "local");
//! assert!(!report.trace.is_empty());
//! assert_eq!(report.outcome.radius, 2);
//! # Ok::<(), lcl_landscape::LandscapeError>(())
//! ```

use lcl::{HalfEdgeLabeling, InLabel};
use lcl_faults::{Degraded, RunOptions};
use lcl_graph::Graph;
use lcl_grid::{OrientedGrid, ProdIds, ProdLocalAlgorithm, ProdRun};
use lcl_local::{IdAssignment, LocalAlgorithm, LocalRun, SyncAlgorithm, SyncRun};
use lcl_obs::RunReport;
use lcl_volume::{LcaAlgorithm, VolumeAlgorithm, VolumeRun};

use crate::error::LandscapeError;

/// A port-numbered graph instance: the topology, the half-edge input
/// labeling, the identifier assignment, and (optionally) an announced
/// node count that may differ from the true one (the paper's footnote 7).
///
/// Borrowed by [`LocalSim`], [`VolumeSim`], and [`LcaSim`].
#[derive(Clone, Copy)]
pub struct GraphInstance<'a> {
    /// The port-numbered graph.
    pub graph: &'a Graph,
    /// Input labels on half-edges.
    pub input: &'a HalfEdgeLabeling<InLabel>,
    /// Unique identifiers per node.
    pub ids: &'a IdAssignment,
    /// The `n` announced to the algorithm; `None` announces the truth.
    pub n_announced: Option<usize>,
}

impl<'a> GraphInstance<'a> {
    /// An instance that announces the true node count.
    pub fn new(
        graph: &'a Graph,
        input: &'a HalfEdgeLabeling<InLabel>,
        ids: &'a IdAssignment,
    ) -> Self {
        Self {
            graph,
            input,
            ids,
            n_announced: None,
        }
    }

    /// Overrides the announced node count (footnote 7 lying).
    pub fn announcing(mut self, n: usize) -> Self {
        self.n_announced = Some(n);
        self
    }
}

/// An oriented-grid instance for [`ProdLocalSim`]: the grid, the input
/// labeling, and per-dimension coordinate identifiers.
#[derive(Clone, Copy)]
pub struct GridInstance<'a> {
    /// The oriented grid.
    pub grid: &'a OrientedGrid,
    /// Input labels on half-edges.
    pub input: &'a HalfEdgeLabeling<InLabel>,
    /// Per-dimension identifier coordinates.
    pub ids: &'a ProdIds,
    /// The `n` announced to the algorithm; `None` announces the truth.
    pub n_announced: Option<usize>,
}

impl<'a> GridInstance<'a> {
    /// An instance that announces the true node count.
    pub fn new(
        grid: &'a OrientedGrid,
        input: &'a HalfEdgeLabeling<InLabel>,
        ids: &'a ProdIds,
    ) -> Self {
        Self {
            grid,
            input,
            ids,
            n_announced: None,
        }
    }

    /// Overrides the announced node count.
    pub fn announcing(mut self, n: usize) -> Self {
        self.n_announced = Some(n);
        self
    }
}

/// A computational model with an instrumented simulator.
///
/// Implementors are zero-sized model markers ([`LocalSim`], [`VolumeSim`],
/// [`LcaSim`], [`ProdLocalSim`]); the associated types pin down what an
/// algorithm, an instance, and a run outcome look like in that model. All
/// simulators return an [`lcl_obs::RunReport`] whose trace obeys the obs
/// determinism contract: everything except wall-clock time is a pure
/// function of the instance and the algorithm.
pub trait Simulation {
    /// The algorithm interface of the model (a dyn-compatible trait).
    type Algorithm: ?Sized;
    /// What the model runs on (borrows graph/input/identifiers).
    type Instance<'a>;
    /// The model-specific run outcome (labeling plus cost summary).
    type Outcome;

    /// The model's short name — also the first segment of the trace's
    /// root span name.
    fn model() -> &'static str;

    /// Runs `alg` on `instance` under [`RunOptions`]: optional event
    /// capture, optional fault plan, optional budget. The outcome is
    /// always [`Degraded`]-wrapped; a run without a fault plan is clean
    /// (`faults` empty) and bit-identical to the plain simulator.
    ///
    /// # Errors
    ///
    /// LOCAL and PROD-LOCAL simulations are infallible; VOLUME and LCA
    /// runs surface an out-of-contract probe as
    /// [`LandscapeError::Probe`].
    fn simulate_with(
        alg: &Self::Algorithm,
        instance: Self::Instance<'_>,
        opts: RunOptions<'_>,
    ) -> Result<RunReport<Degraded<Self::Outcome>>, LandscapeError>;

    /// Runs `alg` on `instance` with default options, unwrapping the
    /// clean (fault-free) outcome.
    ///
    /// # Errors
    ///
    /// Same contract as [`Simulation::simulate_with`].
    fn simulate(
        alg: &Self::Algorithm,
        instance: Self::Instance<'_>,
    ) -> Result<RunReport<Self::Outcome>, LandscapeError> {
        Ok(Self::simulate_with(alg, instance, RunOptions::new())?.map(|d| d.outcome))
    }
}

/// Routes a synchronous LOCAL run by substrate: sharded execution when
/// the options request it ([`RunOptions::sharded`]), the single-image
/// executor otherwise.
///
/// This is the facade's front door to `lcl_shard` — the same
/// [`GraphInstance`] plumbing the model markers use, with the substrate
/// chosen by the [`RunOptions`] instead of by the call site. The two
/// substrates are bit-identical for every plan without whole-shard
/// losses, so flipping `opts.sharded(m)` on changes *where* the run
/// executes, never *what* it computes.
///
/// ```
/// use lcl_landscape::faults::RunOptions;
/// use lcl_landscape::local::IdAssignment;
/// use lcl_landscape::simulation::{simulate_sync_routed, GraphInstance};
/// use lcl_landscape::{graph::gen, problems};
///
/// let g = gen::path(32);
/// let ids = IdAssignment::sequential(32);
/// let input = problems::cv::orientation_inputs(&g, problems::cv::Orientation::Path);
/// let alg = problems::cv::ColeVishkin;
/// let instance = GraphInstance::new(&g, &input, &ids);
/// let plain = simulate_sync_routed(&alg, instance, 32, 1, RunOptions::new());
/// let sharded = simulate_sync_routed(&alg, instance, 32, 4, RunOptions::new().sharded(4));
/// assert_eq!(plain.outcome, sharded.outcome);
/// ```
pub fn simulate_sync_routed<A>(
    alg: &A,
    instance: GraphInstance<'_>,
    max_rounds: u32,
    threads: usize,
    opts: RunOptions<'_>,
) -> RunReport<Degraded<SyncRun>>
where
    A: SyncAlgorithm + Sync,
    A::State: Send,
    A::Msg: Send,
{
    let ids: Vec<u64> = instance.ids.iter().collect();
    lcl_shard::simulate_sharded_with(
        alg,
        instance.graph,
        instance.input,
        &ids,
        instance.n_announced,
        max_rounds,
        threads,
        opts,
    )
}

/// The LOCAL model (Definition 2.1): radius-`T(n)` views, measured in
/// rounds. Drives [`lcl_local::simulate`].
pub struct LocalSim;

impl Simulation for LocalSim {
    type Algorithm = dyn LocalAlgorithm;
    type Instance<'a> = GraphInstance<'a>;
    type Outcome = LocalRun;

    fn model() -> &'static str {
        "local"
    }

    fn simulate_with(
        alg: &Self::Algorithm,
        instance: Self::Instance<'_>,
        opts: RunOptions<'_>,
    ) -> Result<RunReport<Degraded<Self::Outcome>>, LandscapeError> {
        Ok(lcl_local::simulate_with(
            alg,
            instance.graph,
            instance.input,
            instance.ids,
            instance.n_announced,
            opts,
        ))
    }
}

/// The VOLUME model (Definition 2.9): adaptive probes against a budget.
/// Drives [`lcl_volume::simulate`].
pub struct VolumeSim;

impl Simulation for VolumeSim {
    type Algorithm = dyn VolumeAlgorithm;
    type Instance<'a> = GraphInstance<'a>;
    type Outcome = VolumeRun;

    fn model() -> &'static str {
        "volume"
    }

    fn simulate_with(
        alg: &Self::Algorithm,
        instance: Self::Instance<'_>,
        opts: RunOptions<'_>,
    ) -> Result<RunReport<Degraded<Self::Outcome>>, LandscapeError> {
        Ok(lcl_volume::simulate_with(
            alg,
            instance.graph,
            instance.input,
            instance.ids,
            instance.n_announced,
            opts,
        )?)
    }
}

/// The LCA variant of VOLUME: identifiers are promised to be `1..=n` and
/// far (non-adjacent) probes are available and counted separately. Drives
/// [`lcl_volume::simulate_lca`]. The announced node count is ignored —
/// the LCA promise fixes `n`.
pub struct LcaSim;

impl Simulation for LcaSim {
    type Algorithm = dyn LcaAlgorithm;
    type Instance<'a> = GraphInstance<'a>;
    type Outcome = VolumeRun;

    fn model() -> &'static str {
        "lca"
    }

    fn simulate_with(
        alg: &Self::Algorithm,
        instance: Self::Instance<'_>,
        opts: RunOptions<'_>,
    ) -> Result<RunReport<Degraded<Self::Outcome>>, LandscapeError> {
        Ok(lcl_volume::simulate_lca_with(
            alg,
            instance.graph,
            instance.input,
            instance.ids,
            opts,
        )?)
    }
}

/// The PROD-LOCAL model on oriented grids (Section 6): box views with
/// per-dimension coordinate identifiers. Drives [`lcl_grid::simulate`].
pub struct ProdLocalSim;

impl Simulation for ProdLocalSim {
    type Algorithm = dyn ProdLocalAlgorithm;
    type Instance<'a> = GridInstance<'a>;
    type Outcome = ProdRun;

    fn model() -> &'static str {
        "prod-local"
    }

    fn simulate_with(
        alg: &Self::Algorithm,
        instance: Self::Instance<'_>,
        opts: RunOptions<'_>,
    ) -> Result<RunReport<Degraded<Self::Outcome>>, LandscapeError> {
        Ok(lcl_grid::simulate_with(
            alg,
            instance.grid,
            instance.input,
            instance.ids,
            instance.n_announced,
            opts,
        ))
    }
}
